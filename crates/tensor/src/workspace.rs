//! [`Workspace`]: a scratch arena that recycles tensor buffers across
//! kernel and layer invocations.
//!
//! Streaming inference runs the same network shape frame after frame; every
//! intermediate buffer needed for frame `t + 1` has an identically-sized
//! twin freed at frame `t`. A `Workspace` holds those freed tensors —
//! data buffer *and* shape vector — and hands them back on request, so a
//! warmed-up forward pass performs **zero heap allocations**: im2col
//! matrices, GEMM outputs, and activations all cycle through the arena.
//!
//! The arena is deliberately dumb — a capacity-sorted free list — because
//! the working set is small (a handful of distinct shapes per network) and
//! lookups must be cheap. Tensors are matched best-fit by data capacity, so
//! a request can be satisfied by any buffer at least as large; mixed
//! networks converge on a stable set after one frame.
//!
//! # Contents of recycled buffers
//!
//! [`Workspace::take`] returns tensors with **unspecified contents** (the
//! stale values of whatever last used them) sized to the requested shape.
//! Kernels that overwrite every element (GEMM, im2col, element-wise maps)
//! use it directly; accumulating kernels ask for [`Workspace::take_zeroed`].

use crate::Tensor;

/// A recycling arena for tensors.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Free tensors, sorted ascending by data capacity.
    free: Vec<Tensor>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Number of tensors currently parked in the arena.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Total `f32` capacity parked in the arena.
    pub fn pooled_elems(&self) -> usize {
        self.free.iter().map(|t| t.capacity()).sum()
    }

    /// Takes a tensor of the given shape with unspecified contents.
    ///
    /// Reuses the smallest pooled tensor whose capacity suffices; allocates
    /// only when none fits (and then grows the largest pooled buffer rather
    /// than stranding it).
    pub fn take(&mut self, dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        let idx = self.free.partition_point(|t| t.capacity() < n);
        let mut t = if idx < self.free.len() {
            self.free.remove(idx)
        } else if let Some(t) = self.free.pop() {
            t
        } else {
            Tensor::with_capacity(n)
        };
        t.reinit(dims);
        t
    }

    /// Takes a zero-filled tensor of the given shape.
    pub fn take_zeroed(&mut self, dims: &[usize]) -> Tensor {
        let mut t = self.take(dims);
        t.data_mut().fill(0.0);
        t
    }

    /// Returns a tensor (buffer and shape vector) to the arena for reuse.
    pub fn recycle(&mut self, t: Tensor) {
        if t.capacity() == 0 && t.dims_capacity() == 0 {
            return;
        }
        let idx = self.free.partition_point(|p| p.capacity() < t.capacity());
        self.free.insert(idx, t);
    }

    /// Drops every pooled tensor.
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_take_reuses_the_buffer() {
        let mut ws = Workspace::new();
        let t = ws.take(&[4, 8]);
        let ptr = t.data().as_ptr();
        ws.recycle(t);
        assert_eq!(ws.pooled(), 1);
        let t2 = ws.take(&[8, 4]);
        assert_eq!(t2.data().as_ptr(), ptr, "buffer must be reused");
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        ws.recycle(Tensor::zeros(vec![100]));
        ws.recycle(Tensor::zeros(vec![10]));
        let t = ws.take(&[8]);
        assert!(t.data().len() == 8);
        // The 10-capacity buffer should have been chosen; 100 remains.
        assert_eq!(ws.pooled(), 1);
        assert!(ws.pooled_elems() >= 100);
    }

    #[test]
    fn grows_largest_when_nothing_fits() {
        let mut ws = Workspace::new();
        ws.recycle(Tensor::zeros(vec![4]));
        let t = ws.take(&[64]);
        assert_eq!(t.len(), 64);
        assert_eq!(ws.pooled(), 0, "undersized buffer was grown, not stranded");
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut ws = Workspace::new();
        ws.recycle(Tensor::filled(vec![6], 7.0));
        let t = ws.take_zeroed(&[6]);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shapes_are_correct_after_reuse() {
        let mut ws = Workspace::new();
        ws.recycle(Tensor::zeros(vec![2, 3, 4]));
        let t = ws.take(&[6, 2]);
        assert_eq!(t.dims(), &[6, 2]);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        // After one warm-up cycle over a shape set, take() must always be
        // served from the pool (observable as pointer reuse).
        let mut ws = Workspace::new();
        let shapes: [&[usize]; 3] = [&[3, 5], &[16], &[2, 2, 4]];
        let mut ptrs = Vec::new();
        for s in shapes {
            let t = ws.take(s);
            ptrs.push(t.data().as_ptr() as usize);
            ws.recycle(t);
        }
        for _ in 0..10 {
            for s in shapes {
                let t = ws.take(s);
                assert!(
                    ptrs.contains(&(t.data().as_ptr() as usize)),
                    "steady-state take allocated a fresh buffer"
                );
                ws.recycle(t);
            }
        }
    }
}
