//! im2col/col2im lowering for 2-D convolutions on HWC tensors.
//!
//! A convolution with kernel `kh×kw` over an `H×W×C` input becomes a single
//! GEMM: `im2col(x) [out_h·out_w, kh·kw·C] · W [kh·kw·C, F]`. The backward
//! pass uses [`col2im`] to scatter column gradients back into image space.

use crate::parallel::parallel_rows_mut;
use crate::Tensor;

/// Padding policy for convolution-like ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Padding {
    /// No padding; output shrinks by `k - 1`.
    Valid,
    /// TensorFlow-style "SAME": output is `ceil(in / stride)`, zero padding
    /// split evenly with the extra cell at the bottom/right.
    Same,
}

/// Resolved geometry of one conv application: output size and pad offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input height/width/channels.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Input channels.
    pub in_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both axes, as in the paper's architectures).
    pub stride: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
    /// Zero rows added above.
    pub pad_top: usize,
    /// Zero columns added left.
    pub pad_left: usize,
}

impl Conv2dGeometry {
    /// Resolves output size and padding for the given input and kernel.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`, the kernel is empty, or a `Valid` conv does
    /// not fit the input.
    pub fn resolve(
        (in_h, in_w, in_c): (usize, usize, usize),
        (kh, kw): (usize, usize),
        stride: usize,
        padding: Padding,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(kh > 0 && kw > 0, "kernel must be non-empty");
        let (out_h, out_w, pad_top, pad_left) = match padding {
            Padding::Valid => {
                assert!(
                    in_h >= kh && in_w >= kw,
                    "valid conv {kh}x{kw} does not fit {in_h}x{in_w}"
                );
                ((in_h - kh) / stride + 1, (in_w - kw) / stride + 1, 0, 0)
            }
            Padding::Same => {
                let out_h = in_h.div_ceil(stride);
                let out_w = in_w.div_ceil(stride);
                let pad_h = ((out_h - 1) * stride + kh).saturating_sub(in_h);
                let pad_w = ((out_w - 1) * stride + kw).saturating_sub(in_w);
                (out_h, out_w, pad_h / 2, pad_w / 2)
            }
        };
        Conv2dGeometry {
            in_h,
            in_w,
            in_c,
            kh,
            kw,
            stride,
            out_h,
            out_w,
            pad_top,
            pad_left,
        }
    }

    /// Number of output spatial positions.
    pub fn positions(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Fan-in of each output position (`kh·kw·in_c`).
    pub fn fan_in(&self) -> usize {
        self.kh * self.kw * self.in_c
    }
}

/// Lowers an HWC image to the im2col matrix `[positions, fan_in]`.
///
/// Out-of-bounds taps (from padding) are zero.
///
/// # Panics
///
/// Panics if `x` is not rank-3 or does not match `geo`'s input shape.
pub fn im2col(x: &Tensor, geo: &Conv2dGeometry) -> Tensor {
    let mut out = Tensor::zeros(vec![geo.positions(), geo.fan_in()]);
    im2col_into(x, geo, &mut out);
    out
}

/// [`im2col`] into a pre-allocated `[positions, fan_in]` output (e.g. a
/// [`crate::Workspace`] buffer). Every element is overwritten.
///
/// # Panics
///
/// Panics if `x` or `out` do not match `geo`.
pub fn im2col_into(x: &Tensor, geo: &Conv2dGeometry, out: &mut Tensor) {
    assert_eq!(
        x.dims(),
        &[geo.in_h, geo.in_w, geo.in_c],
        "im2col input shape"
    );
    let fan_in = geo.fan_in();
    assert_eq!(
        out.dims(),
        &[geo.positions(), fan_in],
        "im2col output shape"
    );
    let xd = x.data();
    parallel_rows_mut(out.data_mut(), fan_in, |pos, row| {
        fill_patch_row(xd, geo, pos, row);
    });
}

/// Batched [`im2col_into`]: lowers `batch` stacked HWC frames
/// (`x: [batch, in_h, in_w, in_c]`, frames contiguous) into one row-wise
/// stacked patch matrix `out: [batch·positions, fan_in]`, so a convolution
/// over the whole batch becomes a **single** GEMM per layer. Row
/// `b·positions + p` of the output is bit-identical to row `p` of
/// [`im2col_into`] applied to frame `b` alone — each row is a pure function
/// of its frame — so batched and per-frame lowering are interchangeable.
///
/// # Panics
///
/// Panics if `x` is not `[batch, in_h, in_w, in_c]` or `out` is not
/// `[batch·positions, fan_in]`.
pub fn im2col_batch_into(x: &Tensor, batch: usize, geo: &Conv2dGeometry, out: &mut Tensor) {
    assert_eq!(
        x.dims(),
        &[batch, geo.in_h, geo.in_w, geo.in_c],
        "im2col batch input shape"
    );
    let positions = geo.positions();
    let fan_in = geo.fan_in();
    assert_eq!(
        out.dims(),
        &[batch * positions, fan_in],
        "im2col batch output shape"
    );
    let xd = x.data();
    let frame_len = geo.in_h * geo.in_w * geo.in_c;
    parallel_rows_mut(out.data_mut(), fan_in, |row_idx, row| {
        let b = row_idx / positions;
        let pos = row_idx % positions;
        fill_patch_row(&xd[b * frame_len..(b + 1) * frame_len], geo, pos, row);
    });
}

/// Fills one im2col row (`fan_in` taps of output position `pos`) from one
/// frame's HWC data. Shared by the single-frame and batched lowerings so the
/// two can never diverge.
///
/// The `kw` taps of one kernel row are adjacent input columns, which in HWC
/// layout are **contiguous** memory — so each kernel row is written as one
/// span memcpy (plus zeroed fringes where SAME padding clips), not `kw`
/// cell-sized copies. For the 3-channel stem conv that turns nine 3-float
/// copies per row into one 27-float copy, removing most of the lowering's
/// bound-check and call overhead.
#[inline]
fn fill_patch_row(xd: &[f32], geo: &Conv2dGeometry, pos: usize, row: &mut [f32]) {
    let (w, c) = (geo.in_w, geo.in_c);
    let row_c = geo.kw * c; // one kernel row of taps
    let oy = pos / geo.out_w;
    let ox = pos % geo.out_w;
    let y0 = (oy * geo.stride) as isize - geo.pad_top as isize;
    let x0 = (ox * geo.stride) as isize - geo.pad_left as isize;
    // Horizontal clip is shared by every kernel row of the position.
    let kx_lo = (-x0).clamp(0, geo.kw as isize) as usize;
    let kx_hi = ((w as isize - x0).clamp(0, geo.kw as isize)) as usize;
    for ky in 0..geo.kh {
        let y = y0 + ky as isize;
        let dst = &mut row[ky * row_c..(ky + 1) * row_c];
        if y < 0 || y >= geo.in_h as isize || kx_lo >= kx_hi {
            dst.fill(0.0);
            continue;
        }
        let y = y as usize;
        dst[..kx_lo * c].fill(0.0);
        // `x0 + kx_lo ≥ 0` by construction, so the sums below are in range.
        let base = (y * w) as isize + x0;
        let (lo, hi) = (
            (base + kx_lo as isize) as usize,
            (base + kx_hi as isize) as usize,
        );
        dst[kx_lo * c..kx_hi * c].copy_from_slice(&xd[lo * c..hi * c]);
        dst[kx_hi * c..].fill(0.0);
    }
}

/// Lowers a **quantized** u8 HWC map into quad-padded im2col rows for the
/// whole-int8 GEMM ([`crate::gemm_prepacked_i8i8`]): `out` holds
/// `positions` rows of [`crate::i8i8_padded_k`]`(fan_in)` bytes each.
/// SAME-padding taps write the map's zero point `zp` — the exact u8
/// encoding of 0.0 under the asymmetric scheme — and the quad pad at the
/// end of each row writes code 0, which the zero-coded padded weight rows
/// annihilate. The quantized activations go straight from the per-frame
/// map to the GEMM's byte layout with no f32 round-trip.
///
/// Row `p` is a pure function of the map, so batched lowering (one call
/// per frame into consecutive row ranges) is bit-identical to the serial
/// path by construction, mirroring [`im2col_batch_into`].
///
/// # Panics
///
/// Panics if `qmap` or `out` do not match `geo`.
pub fn im2col_u8_into(qmap: &[u8], zp: u8, geo: &Conv2dGeometry, out: &mut [u8]) {
    assert_eq!(
        qmap.len(),
        geo.in_h * geo.in_w * geo.in_c,
        "im2col u8 input shape"
    );
    let fan_in = geo.fan_in();
    let kp = crate::i8i8_padded_k(fan_in);
    assert_eq!(out.len(), geo.positions() * kp, "im2col u8 output shape");
    for pos in 0..geo.positions() {
        let row = &mut out[pos * kp..(pos + 1) * kp];
        fill_patch_row_u8(qmap, geo, pos, zp, &mut row[..fan_in]);
        row[fan_in..].fill(0);
    }
}

/// u8 twin of [`fill_patch_row`]: same span-copy structure, but padding
/// taps write the zero point instead of 0.0.
#[inline]
fn fill_patch_row_u8(xd: &[u8], geo: &Conv2dGeometry, pos: usize, zp: u8, row: &mut [u8]) {
    let (w, c) = (geo.in_w, geo.in_c);
    let row_c = geo.kw * c;
    let oy = pos / geo.out_w;
    let ox = pos % geo.out_w;
    let y0 = (oy * geo.stride) as isize - geo.pad_top as isize;
    let x0 = (ox * geo.stride) as isize - geo.pad_left as isize;
    let kx_lo = (-x0).clamp(0, geo.kw as isize) as usize;
    let kx_hi = ((w as isize - x0).clamp(0, geo.kw as isize)) as usize;
    for ky in 0..geo.kh {
        let y = y0 + ky as isize;
        let dst = &mut row[ky * row_c..(ky + 1) * row_c];
        if y < 0 || y >= geo.in_h as isize || kx_lo >= kx_hi {
            dst.fill(zp);
            continue;
        }
        let y = y as usize;
        dst[..kx_lo * c].fill(zp);
        let base = (y * w) as isize + x0;
        let (lo, hi) = (
            (base + kx_lo as isize) as usize,
            (base + kx_hi as isize) as usize,
        );
        dst[kx_lo * c..kx_hi * c].copy_from_slice(&xd[lo * c..hi * c]);
        dst[kx_hi * c..].fill(zp);
    }
}

/// Scatters an im2col-shaped gradient back into image space (the adjoint of
/// [`im2col`]): overlapping taps accumulate.
///
/// # Panics
///
/// Panics if `cols` does not have shape `[positions, fan_in]`.
pub fn col2im(cols: &Tensor, geo: &Conv2dGeometry) -> Tensor {
    assert_eq!(
        cols.dims(),
        &[geo.positions(), geo.fan_in()],
        "col2im input shape"
    );
    let mut img = Tensor::zeros(vec![geo.in_h, geo.in_w, geo.in_c]);
    let cd = cols.data();
    let (w, c) = (geo.in_w, geo.in_c);
    let fan_in = geo.fan_in();
    let imgd = img.data_mut();
    for pos in 0..geo.positions() {
        let oy = pos / geo.out_w;
        let ox = pos % geo.out_w;
        let y0 = (oy * geo.stride) as isize - geo.pad_top as isize;
        let x0 = (ox * geo.stride) as isize - geo.pad_left as isize;
        let row = &cd[pos * fan_in..(pos + 1) * fan_in];
        for ky in 0..geo.kh {
            let y = y0 + ky as isize;
            if y < 0 || y >= geo.in_h as isize {
                continue;
            }
            let y = y as usize;
            for kx in 0..geo.kw {
                let xx = x0 + kx as isize;
                if xx < 0 || xx >= w as isize {
                    continue;
                }
                let src = &row[(ky * geo.kw + kx) * c..(ky * geo.kw + kx + 1) * c];
                let dst = (y * w + xx as usize) * c;
                for (d, &s) in imgd[dst..dst + c].iter_mut().zip(src) {
                    *d += s;
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_geometry_matches_tf() {
        // 5x5 input, 3x3 kernel, stride 2 → ceil(5/2)=3, pad_total = (3-1)*2+3-5 = 2.
        let g = Conv2dGeometry::resolve((5, 5, 1), (3, 3), 2, Padding::Same);
        assert_eq!((g.out_h, g.out_w), (3, 3));
        assert_eq!((g.pad_top, g.pad_left), (1, 1));
        // Even input: 4x4, stride 2, 3x3 → out 2, pad_total = (2-1)*2+3-4 = 1, top gets 0.
        let g = Conv2dGeometry::resolve((4, 4, 1), (3, 3), 2, Padding::Same);
        assert_eq!((g.out_h, g.out_w), (2, 2));
        assert_eq!((g.pad_top, g.pad_left), (0, 0));
    }

    #[test]
    fn valid_geometry() {
        let g = Conv2dGeometry::resolve((5, 7, 3), (3, 3), 1, Padding::Valid);
        assert_eq!((g.out_h, g.out_w), (3, 5));
        assert_eq!(g.fan_in(), 27);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn valid_rejects_oversized_kernel() {
        let _ = Conv2dGeometry::resolve((2, 2, 1), (3, 3), 1, Padding::Valid);
    }

    #[test]
    fn im2col_1x1_is_reshape() {
        let x = Tensor::from_vec(vec![2, 2, 2], (0..8).map(|i| i as f32).collect());
        let g = Conv2dGeometry::resolve((2, 2, 2), (1, 1), 1, Padding::Same);
        let m = im2col(&x, &g);
        assert_eq!(m.dims(), &[4, 2]);
        assert_eq!(m.data(), x.data());
    }

    #[test]
    fn im2col_center_tap() {
        // 3x3 single-channel image, 3x3 SAME conv, stride 1: the center
        // output position sees the whole image.
        let x = Tensor::from_vec(vec![3, 3, 1], (1..=9).map(|i| i as f32).collect());
        let g = Conv2dGeometry::resolve((3, 3, 1), (3, 3), 1, Padding::Same);
        let m = im2col(&x, &g);
        assert_eq!(m.dims(), &[9, 9]);
        let center: Vec<f32> = m.data()[4 * 9..5 * 9].to_vec();
        assert_eq!(center, (1..=9).map(|i| i as f32).collect::<Vec<_>>());
        // Top-left position: padded corner → first row and column of taps are 0.
        let tl: Vec<f32> = m.data()[0..9].to_vec();
        assert_eq!(tl, vec![0., 0., 0., 0., 1., 2., 0., 4., 5.]);
    }

    #[test]
    fn batched_im2col_stacks_per_frame_matrices_bit_for_bit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for &(h, w, c, k, stride, batch) in &[
            (5usize, 4usize, 3usize, 3usize, 1usize, 1usize),
            (5, 4, 3, 3, 2, 3),
            (4, 4, 2, 1, 1, 4),
            (6, 7, 5, 3, 1, 2),
        ] {
            let geo = Conv2dGeometry::resolve((h, w, c), (k, k), stride, Padding::Same);
            let frames: Vec<Tensor> = (0..batch)
                .map(|_| {
                    Tensor::from_vec(
                        vec![h, w, c],
                        (0..h * w * c).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                    )
                })
                .collect();
            let mut stacked_data = Vec::new();
            for f in &frames {
                stacked_data.extend_from_slice(f.data());
            }
            let stacked = Tensor::from_vec(vec![batch, h, w, c], stacked_data);
            let mut got = Tensor::zeros(vec![batch * geo.positions(), geo.fan_in()]);
            im2col_batch_into(&stacked, batch, &geo, &mut got);
            for (b, f) in frames.iter().enumerate() {
                let want = im2col(f, &geo);
                let rows = geo.positions() * geo.fan_in();
                assert_eq!(
                    &got.data()[b * rows..(b + 1) * rows],
                    want.data(),
                    "frame {b} of {batch} (k{k} s{stride})"
                );
            }
        }
    }

    #[test]
    fn u8_im2col_matches_f32_im2col_on_codes() {
        // Lowering the quantized map must place exactly the map's codes at
        // in-bounds taps and the zero point at padding taps — verified
        // against the f32 lowering run on the zp-shifted codes (whose
        // padding value 0.0 is the shift of zp).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for &(h, w, c, k, stride) in &[
            (5usize, 4usize, 3usize, 3usize, 1usize),
            (5, 4, 3, 3, 2),
            (4, 4, 2, 1, 1),
            (6, 7, 5, 3, 2),
        ] {
            let geo = Conv2dGeometry::resolve((h, w, c), (k, k), stride, Padding::Same);
            let x: Vec<f32> = (0..h * w * c).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut qmap = vec![0u8; x.len()];
            let (_, zp) = crate::quantize_map_u8_into(&x, &mut qmap);
            let kp = crate::i8i8_padded_k(geo.fan_in());
            let mut got = vec![0u8; geo.positions() * kp];
            im2col_u8_into(&qmap, zp, &geo, &mut got);
            let shifted = Tensor::from_vec(
                vec![h, w, c],
                qmap.iter().map(|&q| f32::from(q) - f32::from(zp)).collect(),
            );
            let want = im2col(&shifted, &geo);
            for pos in 0..geo.positions() {
                let grow = &got[pos * kp..(pos + 1) * kp];
                let wrow = &want.data()[pos * geo.fan_in()..(pos + 1) * geo.fan_in()];
                for (j, (&g, &wv)) in grow.iter().zip(wrow).enumerate() {
                    assert_eq!(
                        f32::from(g) - f32::from(zp),
                        wv,
                        "{h}x{w}x{c} k{k} s{stride} pos {pos} tap {j}"
                    );
                }
                for &g in &grow[geo.fan_in()..] {
                    assert_eq!(g, 0, "quad pad byte");
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint, which is exactly what backprop needs.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let g = Conv2dGeometry::resolve((5, 4, 3), (3, 3), 2, Padding::Same);
        let x = Tensor::from_vec(
            vec![5, 4, 3],
            (0..60).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        let y = Tensor::from_vec(
            vec![g.positions(), g.fan_in()],
            (0..g.positions() * g.fan_in())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        );
        let lhs: f32 = im2col(&x, &g)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .data()
            .iter()
            .zip(col2im(&y, &g).data())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
