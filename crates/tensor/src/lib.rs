//! Dense `f32` tensors for the FilterForward reproduction.
//!
//! This crate is the numeric substrate under `ff-nn`: contiguous row-major
//! tensors (HWC layout for images and feature maps), an
//! [im2col](im2col()) lowering for convolutions, and a blocked,
//! optionally multi-threaded [GEMM](matmul()).
//!
//! Everything here is deliberately simple and allocation-honest: a [`Tensor`]
//! is a shape vector plus a `Vec<f32>`, and all operators state their cost.
//! The design goal is not to compete with BLAS but to make the *relative*
//! compute costs of the paper's networks (base DNN vs microclassifiers vs
//! discrete classifiers) faithful on a CPU, which is what every performance
//! trend in the paper depends on.
//!
//! # Example
//!
//! ```
//! use ff_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::eye(3);
//! let c = a.matmul(&b);
//! assert_eq!(c.dims(), &[2, 3]);
//! assert_eq!(c.data(), a.data());
//! ```

#![warn(missing_docs)]

mod im2col;
mod init;
mod matmul;
pub mod parallel;
mod tensor;

pub use im2col::{col2im, im2col, Conv2dGeometry, Padding};
pub use init::{glorot_uniform, he_normal, uniform};
pub use matmul::{matmul, matmul_into, matmul_transpose_a, matmul_transpose_b};
pub use tensor::Tensor;
