//! Dense `f32` tensors for the FilterForward reproduction.
//!
//! This crate is the numeric substrate under `ff-nn`: contiguous row-major
//! tensors (HWC layout for images and feature maps), an
//! [im2col](im2col()) lowering for convolutions — including a batched
//! variant ([`im2col_batch_into`]) that stacks several frames' patch
//! matrices row-wise so a whole batch becomes one GEMM per layer — and a
//! packed, cache-blocked, optionally multi-threaded [GEMM](matmul()).
//! Static weights can additionally be prepacked at reduced precision
//! ([`Precision`]: f16 or int8 + per-column scale panels, widened to f32 in
//! registers with f32 accumulation), shrinking the streamed weight set 2–4×
//! where the batched GEMM is panel-bound.
//!
//! Everything here is deliberately simple and allocation-honest: a [`Tensor`]
//! is a shape vector plus a `Vec<f32>`, and all operators state their cost.
//! The design goal is not to compete with BLAS but to make the *relative*
//! compute costs of the paper's networks (base DNN vs microclassifiers vs
//! discrete classifiers) faithful on a CPU, which is what every performance
//! trend in the paper depends on.
//!
//! # Threading model
//!
//! Kernels dispatch to a **persistent worker pool** (see [`parallel`]):
//! workers are spawned once, park on a condvar between jobs, and claim
//! fixed, contiguous output chunks when a kernel runs. [`parallel::set_threads`]
//! bounds how many chunks work is split into — the split is a pure function
//! of the problem size and that setting, and every kernel accumulates each
//! output element in a fixed order, so **results are bit-for-bit identical
//! for any thread count**. `set_threads(1)` additionally keeps execution on
//! the calling thread.
//!
//! # Workspace / allocation model
//!
//! Streaming inference reuses buffers across frames through a [`Workspace`]
//! arena: kernels with `_into` variants ([`matmul_into`], [`im2col_into`],
//! [`gemm`]) write into caller-provided buffers, and `ff-nn` layers route
//! every intermediate (im2col matrices, GEMM outputs, activations) through
//! the arena. After one warm-up frame, a forward pass performs zero heap
//! allocations; the GEMM's internal `B`-packing scratch is likewise a
//! reused thread-local.
//!
//! # Example
//!
//! ```
//! use ff_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::eye(3);
//! let c = a.matmul(&b);
//! assert_eq!(c.dims(), &[2, 3]);
//! assert_eq!(c.data(), a.data());
//! ```

#![warn(missing_docs)]

mod im2col;
mod init;
mod lowp;
mod matmul;
pub mod parallel;
mod tensor;
mod workspace;

pub use im2col::{
    col2im, im2col, im2col_batch_into, im2col_into, im2col_u8_into, Conv2dGeometry, Padding,
};
pub use init::{glorot_uniform, he_normal, uniform};
pub use lowp::{
    f16_to_f32, f32_to_f16, gemm_prepacked_f16, gemm_prepacked_i8, gemm_prepacked_i8i8,
    i8i8_groups, i8i8_padded_k, pack_b_panels_f16_into, pack_b_panels_i8_into,
    pack_b_panels_i8i8_into, packed_panels_f16_len, packed_panels_i8_len, packed_panels_i8i8_len,
    packed_scales_i8_len, packed_scales_i8i8_len, quantize_a_rows_into, quantize_map_u8_into,
    PackedPanels, Precision, I8I8_GROUP_SIZE,
};
pub use matmul::{
    gemm, gemm_fused, gemm_prepacked, matmul, matmul_into, matmul_transpose_a, matmul_transpose_b,
    pack_b_panels_into, packed_panels_len, Epilogue,
};
pub use parallel::PoolShard;
pub use tensor::Tensor;
pub use workspace::Workspace;
