//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The runtime is configured once per process with [`set_threads`]; kernels
//! call [`parallel_chunks`] which falls back to serial execution for small
//! work items so tests and micro-ops don't pay spawn overhead.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads used by tensor kernels.
///
/// `0` (the default) means "use all available parallelism". `1` forces
/// serial execution, which also makes every kernel bit-for-bit
/// deterministic.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// Number of worker threads kernels will use.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Minimum per-thread work (in "items", callers choose the unit) below which
/// [`parallel_chunks`] stays serial.
const MIN_ITEMS_PER_THREAD: usize = 8;

/// Minimum output elements before [`parallel_rows_mut`] spawns threads.
/// Spawning a scoped thread costs tens of microseconds; tiny layers (the
/// microclassifier tails) are far cheaper than that, so they must stay
/// serial or training becomes spawn-bound.
const MIN_PARALLEL_ELEMS: usize = 32 * 1024;

/// Runs `f(start, end)` over disjoint sub-ranges of `0..n`, possibly in
/// parallel.
///
/// `f` must be safe to run concurrently on disjoint ranges; each invocation
/// receives a half-open `[start, end)` range. The split is contiguous and
/// deterministic, so results that are written to disjoint output slices are
/// identical regardless of thread count.
pub fn parallel_chunks(n: usize, f: impl Fn(usize, usize) + Sync) {
    let t = threads().min(n.div_ceil(MIN_ITEMS_PER_THREAD)).max(1);
    if t == 1 || n == 0 {
        f(0, n);
        return;
    }
    let chunk = n.div_ceil(t);
    std::thread::scope(|s| {
        for i in 0..t {
            let start = i * chunk;
            let end = ((i + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            let f = &f;
            s.spawn(move || f(start, end));
        }
    });
}

/// Splits `out` into row blocks of `row_len` elements and hands each block to
/// `f` with its starting row index — the common pattern for writing disjoint
/// rows of a matrix in parallel.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `row_len` (unless both are 0).
pub fn parallel_rows_mut(out: &mut [f32], row_len: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    if row_len == 0 {
        assert!(out.is_empty(), "row_len 0 with non-empty buffer");
        return;
    }
    assert_eq!(out.len() % row_len, 0, "buffer not a whole number of rows");
    let rows = out.len() / row_len;
    let t = if out.len() < MIN_PARALLEL_ELEMS {
        1
    } else {
        threads().min(rows.div_ceil(MIN_ITEMS_PER_THREAD)).max(1)
    };
    if t == 1 {
        for (r, row) in out.chunks_mut(row_len).enumerate() {
            f(r, row);
        }
        return;
    }
    let chunk = rows.div_ceil(t);
    std::thread::scope(|s| {
        for (i, block) in out.chunks_mut(chunk * row_len).enumerate() {
            let f = &f;
            s.spawn(move || {
                for (j, row) in block.chunks_mut(row_len).enumerate() {
                    f(i * chunk + j, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_exactly_once() {
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u32; 1000]);
        parallel_chunks(1000, |a, b| {
            let mut h = hits.lock().unwrap();
            for i in a..b {
                h[i] += 1;
            }
        });
        assert!(hits.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn chunks_handle_zero() {
        parallel_chunks(0, |a, b| assert_eq!((a, b), (0, 0)));
    }

    #[test]
    fn rows_mut_writes_disjoint_rows() {
        let mut buf = vec![0.0f32; 64 * 3];
        parallel_rows_mut(&mut buf, 3, |r, row| {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * 3 + c) as f32;
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn thread_count_override() {
        let before = threads();
        set_threads(1);
        assert_eq!(threads(), 1);
        set_threads(0);
        assert!(threads() >= 1);
        let _ = before;
    }
}
