//! Data-parallel helpers backed by a **persistent worker pool**, optionally
//! partitioned into **shards**.
//!
//! The original implementation spawned fresh `std::thread::scope` threads on
//! every kernel call; at streaming-video rates (hundreds of GEMMs per frame)
//! thread spawn/join dominated small-layer cost. This module keeps a
//! process-wide pool of workers parked on a condvar and dispatches jobs to
//! them with one lock round-trip.
//!
//! # Threading model
//!
//! - The pool is created lazily on first parallel dispatch and lives for the
//!   process. Workers park on a condvar between jobs; an idle pool costs
//!   nothing but its stacks.
//! - [`set_threads`] bounds how many *chunks* a kernel is split into, not the
//!   pool size: the split is a deterministic function of the work size and
//!   the configured thread count, so results are **bit-for-bit identical**
//!   for any worker count — including when fewer workers than chunks execute
//!   the job (chunks are claimed dynamically, but each chunk's output range
//!   is fixed up front).
//! - One job runs at a time per pool or shard (callers serialize on a
//!   submission lock); the submitting thread participates in chunk
//!   execution, so dispatch never deadlocks even with zero workers.
//! - Kernels calling kernels (re-entrant dispatch from a worker) degrade to
//!   serial execution of the inner kernel rather than deadlocking.
//!
//! # Sharding
//!
//! Multi-stream workloads want *independent* kernels running concurrently:
//! stream A's GEMM must not serialize behind stream B's. A [`PoolShard`] is
//! a fixed worker subset with its own dispatch state; code run inside
//! [`PoolShard::run`] sends its kernels to that shard (and splits work by
//! the shard's width instead of the global [`set_threads`] setting), so any
//! number of shards execute kernels concurrently while the determinism
//! contract is preserved: the chunk split is still a pure function of the
//! work size and the effective thread count, and every kernel accumulates
//! each output element in a fixed order, so results are bit-for-bit
//! identical for **any** shard width — a sharded run reproduces the global
//! pool (which is simply the one-shard case) exactly.
//!
//! Worker panics are caught, forwarded, and re-raised on the submitting
//! thread after the job drains, so a poisoned job cannot wedge the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads used by tensor kernels.
///
/// `0` (the default) means "use all available parallelism". `1` forces
/// serial execution. Any value yields bit-identical kernel results; the
/// setting only trades latency for core usage.
///
/// Inside a [`PoolShard::run`] scope the shard's width takes precedence
/// over this global setting.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// Number of chunks kernels will split work into: the enclosing shard's
/// width inside [`PoolShard::run`], otherwise the global [`set_threads`]
/// setting.
pub fn threads() -> usize {
    if let Some(ctx) = CURRENT_SHARD.with(|c| c.get()) {
        return ctx.width;
    }
    match THREADS.load(Ordering::Relaxed) {
        0 => hardware_parallelism(),
        n => n,
    }
}

/// Cached `std::thread::available_parallelism()` — the std call re-reads
/// cgroup quota files (and allocates) on every invocation, which would put
/// filesystem traffic in every kernel dispatch.
fn hardware_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Minimum per-chunk work (in "items", callers choose the unit) below which
/// [`parallel_chunks`] stays serial.
const MIN_ITEMS_PER_THREAD: usize = 8;

/// Minimum output elements before [`parallel_rows_mut`] dispatches to the
/// pool. Dispatch costs a couple of lock round-trips (~1 µs); tiny layers
/// (the microclassifier tails) are cheaper than that, so they must stay
/// serial or streaming becomes dispatch-bound.
const MIN_PARALLEL_ELEMS: usize = 32 * 1024;

/// A chunk runner with its lifetime erased. Soundness: the submitting thread
/// blocks in [`Pool::run`] until every chunk has finished, so the referent
/// outlives all uses.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    chunks: usize,
}

// SAFETY: the closure behind `f` is `Sync` (required at submission), and the
// pointer never outlives the blocking `run` call that created it.
unsafe impl Send for Job {}

struct State {
    /// Monotonically increasing job id; workers use it to detect new work.
    epoch: u64,
    job: Option<Job>,
    /// Next chunk index to claim.
    next: usize,
    /// Chunks not yet finished.
    pending: usize,
    /// A chunk panicked; re-raised by the submitter once the job drains.
    panicked: bool,
    /// Workers exit at the next wakeup (set when a [`PoolShard`] drops).
    shutdown: bool,
    /// Workers currently attached to this pool/shard.
    live_workers: usize,
    /// Workers the pool/shard *wants*: when `live_workers` exceeds it
    /// (after [`PoolShard::set_width`] shrinks a shard), excess workers
    /// decrement `live_workers` and exit at their next wakeup.
    target_workers: usize,
}

impl State {
    fn idle() -> Self {
        State {
            epoch: 0,
            job: None,
            next: 0,
            pending: 0,
            panicked: false,
            shutdown: false,
            live_workers: 0,
            target_workers: 0,
        }
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when a new job is published.
    work: Condvar,
    /// Signaled when the last chunk of a job finishes.
    done: Condvar,
}

impl Shared {
    fn new() -> Self {
        Shared {
            state: Mutex::new(State::idle()),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }
}

struct Pool {
    shared: &'static Shared,
    /// Serializes job submission (one job in flight at a time).
    submit: Mutex<()>,
}

/// The shard context a thread dispatches through, installed for the span of
/// [`PoolShard::run`]. Raw pointers because a thread-local cannot hold a
/// borrow; validity is guaranteed by `run` borrowing the shard for the whole
/// scope and dispatch only happening on the installing thread.
#[derive(Clone, Copy)]
struct ShardCtx {
    shared: *const Shared,
    submit: *const Mutex<()>,
    width: usize,
}

thread_local! {
    /// True on pool workers; re-entrant dispatch falls back to serial.
    static IS_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// The enclosing shard, if dispatch is currently scoped to one.
    static CURRENT_SHARD: std::cell::Cell<Option<ShardCtx>> = const { std::cell::Cell::new(None) };
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    fn get() -> &'static Pool {
        POOL.get_or_init(|| {
            let shared: &'static Shared = Box::leak(Box::new(Shared::new()));
            // One worker per core beyond the submitting thread. Workers are
            // detached; they park forever once the process stops submitting.
            let workers = hardware_parallelism() - 1;
            {
                let mut st = shared.state.lock().unwrap();
                st.live_workers = workers;
                st.target_workers = workers;
            }
            for i in 0..workers {
                std::thread::Builder::new()
                    .name(format!("ff-tensor-{i}"))
                    .spawn(move || {
                        IS_WORKER.with(|w| w.set(true));
                        worker_loop(shared);
                    })
                    .expect("spawn tensor pool worker");
            }
            Pool {
                shared,
                submit: Mutex::new(()),
            }
        })
    }
}

/// Runs `f(0..chunks)` across the workers parked on `shared`, blocking until
/// every chunk is done. The submitting thread claims chunks too. `submit`
/// serializes jobs within this pool/shard.
fn submit_and_drain(
    shared: &Shared,
    submit: &Mutex<()>,
    chunks: usize,
    f: &(dyn Fn(usize) + Sync),
) {
    let _guard = submit.lock().unwrap_or_else(|e| e.into_inner());
    let epoch = {
        let mut st = shared.state.lock().unwrap();
        // SAFETY: this function blocks until `pending == 0`, so the erased
        // lifetime outlives every dereference in `drain_chunks`.
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<_, *const (dyn Fn(usize) + Sync)>(f) };
        st.epoch += 1;
        st.job = Some(Job { f: erased, chunks });
        st.next = 0;
        st.pending = chunks;
        shared.work.notify_all();
        st.epoch
    };
    // The submitter executes chunks too; mark it in-dispatch so a kernel
    // that itself dispatches (now or in some future fused op) degrades
    // to serial instead of re-locking the submit mutex and deadlocking.
    IS_WORKER.with(|w| w.set(true));
    drain_chunks(shared, epoch);
    IS_WORKER.with(|w| w.set(false));
    let mut st = shared.state.lock().unwrap();
    while st.pending > 0 {
        st = shared.done.wait(st).unwrap();
    }
    st.job = None;
    let poisoned = std::mem::replace(&mut st.panicked, false);
    drop(st);
    if poisoned {
        panic!("ff-tensor pool worker panicked during parallel kernel");
    }
}

/// Claims and executes chunks of the job with id `epoch` until none remain.
fn drain_chunks(shared: &Shared, epoch: u64) {
    loop {
        let (f, i) = {
            let st = shared.state.lock().unwrap();
            let mut st = st;
            if st.epoch != epoch {
                return;
            }
            match st.job {
                Some(job) if st.next < job.chunks => {
                    let i = st.next;
                    st.next += 1;
                    (job.f, i)
                }
                _ => return,
            }
        };
        // SAFETY: the submitter blocks until `pending == 0`, keeping the
        // closure alive for the duration of this call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*f)(i) }));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.done.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let epoch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                // A shrunk shard wants fewer workers: any excess worker
                // (they are interchangeable) retires at its next wakeup,
                // before claiming chunks of a new job.
                if st.live_workers > st.target_workers {
                    st.live_workers -= 1;
                    return;
                }
                if st.epoch != seen && st.job.is_some() {
                    break;
                }
                st = shared.work.wait(st).unwrap();
            }
            st.epoch
        };
        seen = epoch;
        drain_chunks(shared, epoch);
    }
}

/// Dispatches `chunks` invocations of `f` (each receiving its chunk index)
/// across the enclosing shard (if any) or the global pool, or serially when
/// parallelism wouldn't pay.
fn run_chunked(chunks: usize, f: &(dyn Fn(usize) + Sync)) {
    if chunks == 0 {
        return;
    }
    if chunks == 1 || IS_WORKER.with(|w| w.get()) {
        for i in 0..chunks {
            f(i);
        }
        return;
    }
    if let Some(ctx) = CURRENT_SHARD.with(|c| c.get()) {
        // SAFETY: the context is installed by `PoolShard::run`, which
        // borrows the shard for the whole scope; the pointers stay valid
        // for every dispatch made within it, and only the installing
        // thread reads them.
        let (shared, submit) = unsafe { (&*ctx.shared, &*ctx.submit) };
        submit_and_drain(shared, submit, chunks, f);
        return;
    }
    let pool = Pool::get();
    submit_and_drain(pool.shared, &pool.submit, chunks, f);
}

/// A fixed worker subset of the persistent pool with independent dispatch
/// state: kernels scoped to different shards execute concurrently instead
/// of serializing on the global submission lock.
///
/// A shard of width `w` owns `w - 1` dedicated parked workers (the
/// submitting thread participates in every job, exactly like the global
/// pool), and code inside [`PoolShard::run`] splits work into `w` chunks.
/// Dropping the shard shuts its workers down.
///
/// The global API is the one-shard case: results are bit-for-bit identical
/// whether a kernel runs on the global pool at any [`set_threads`] setting
/// or on a shard of any width, because the chunk split is deterministic and
/// every kernel fixes each output element's accumulation order up front.
pub struct PoolShard {
    shared: Arc<Shared>,
    /// Serializes job submission within this shard.
    submit: Mutex<()>,
    width: usize,
    obs: Option<ShardObs>,
}

/// Busy-accounting hooks a runtime can bind to a shard with
/// [`PoolShard::bind_obs`].
///
/// `jobs` counts [`PoolShard::run`] entries — the scheduler's dispatch
/// count, a pure function of virtual time and therefore deterministic
/// across thread counts and shard widths. `busy_nanos` accumulates the
/// wall-clock time spent inside those jobs and is **observability only**
/// (register it volatile); policies must never read it.
#[derive(Debug, Clone)]
pub struct ShardObs {
    /// Jobs dispatched through the shard (deterministic).
    pub jobs: ff_obs::Counter,
    /// Wall-clock nanoseconds spent inside shard jobs (volatile).
    pub busy_nanos: ff_obs::Counter,
}

impl ShardObs {
    /// Fresh, detached cells (adopt them into a registry to export).
    pub fn new() -> Self {
        ShardObs {
            jobs: ff_obs::Counter::new(),
            busy_nanos: ff_obs::Counter::new(),
        }
    }
}

impl Default for ShardObs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PoolShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PoolShard(width {})", self.width)
    }
}

impl PoolShard {
    /// Creates a shard of the given width (clamped to ≥ 1), spawning its
    /// `width - 1` dedicated workers.
    pub fn new(width: usize) -> Self {
        let width = width.max(1);
        let shared = Arc::new(Shared::new());
        {
            let mut st = shared.state.lock().unwrap();
            st.live_workers = width - 1;
            st.target_workers = width - 1;
        }
        for i in 0..width - 1 {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ff-shard-{i}"))
                .spawn(move || {
                    IS_WORKER.with(|w| w.set(true));
                    worker_loop(&sh);
                })
                .expect("spawn shard worker");
        }
        PoolShard {
            shared,
            submit: Mutex::new(()),
            width,
            obs: None,
        }
    }

    /// Binds busy-accounting cells to this shard: every subsequent
    /// [`Self::run`] increments `obs.jobs` and adds its wall-clock duration
    /// to `obs.busy_nanos`. Unbound shards pay nothing.
    pub fn bind_obs(&mut self, obs: ShardObs) {
        self.obs = Some(obs);
    }

    /// The shard's thread budget (chunk count for kernels scoped to it).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Resizes the shard to `width` (clamped to ≥ 1) — the control plane's
    /// **repartition point**: a multi-stream runtime can move thread budget
    /// between streams' shards while they run, as long as it resizes
    /// *between rounds* (the `&mut self` receiver guarantees no job of this
    /// shard is in flight, since submission borrows the shard).
    ///
    /// Growing spawns the missing workers immediately; shrinking retires
    /// excess workers lazily at their next wakeup (they are parked on the
    /// shard's condvar, so retirement costs one wakeup, not a join). Either
    /// way, kernels dispatched after `set_width` split their work by the
    /// new width — and since chunk splits are a pure function of work size
    /// and width, and every kernel fixes each output element's accumulation
    /// order up front, results stay **bit-for-bit identical across any
    /// resize sequence** (the determinism contract of this module is width-
    /// independent; see the module docs).
    pub fn set_width(&mut self, width: usize) {
        let width = width.max(1);
        if width == self.width {
            return;
        }
        let target = width - 1;
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.target_workers = target;
        let live = st.live_workers;
        if live < target {
            // Account for the new workers before spawning so a concurrent
            // wakeup never sees an inconsistent surplus.
            st.live_workers = target;
            drop(st);
            for i in live..target {
                let sh = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("ff-shard-{i}"))
                    .spawn(move || {
                        IS_WORKER.with(|w| w.set(true));
                        worker_loop(&sh);
                    })
                    .expect("spawn shard worker");
            }
        } else {
            drop(st);
            // Wake parked workers so the excess ones retire promptly.
            self.shared.work.notify_all();
        }
        self.width = width;
    }

    /// Runs `f` with every tensor-kernel dispatch inside scoped to this
    /// shard: work splits into [`Self::width`] chunks executed by the
    /// shard's workers (plus the calling thread), concurrently with other
    /// shards. Nested scopes restore the previous shard on exit, including
    /// on panic.
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<ShardCtx>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_SHARD.with(|c| c.set(self.0));
            }
        }
        let ctx = ShardCtx {
            shared: &*self.shared,
            submit: &self.submit,
            width: self.width,
        };
        let _restore = Restore(CURRENT_SHARD.with(|c| c.replace(Some(ctx))));
        match &self.obs {
            None => f(),
            Some(obs) => {
                // The job count is driven by the (single-threaded)
                // scheduler, so it is deterministic; only the wall-clock
                // payload varies run to run.
                obs.jobs.inc();
                let t0 = std::time::Instant::now();
                let r = f();
                obs.busy_nanos.add(t0.elapsed().as_nanos() as u64);
                r
            }
        }
    }

    /// Panic-isolating [`Self::run`]: executes `f` scoped to this shard and
    /// returns any panic — the closure's own, or one raised inside a worker
    /// and re-raised on the submitting thread — as `Err` instead of
    /// unwinding the caller.
    ///
    /// The shard itself **survives** a panicking job: workers catch panics
    /// at the job boundary, finish draining the dispatch, and park for the
    /// next one, so a subsequent [`Self::run`] / [`Self::try_run`] (and
    /// [`Self::set_width`]) behaves exactly as if the poisoned job had
    /// never been submitted — including bit-for-bit determinism of later
    /// kernels. This is the isolation boundary the fault-tolerant edge
    /// runtime wraps around per-stream inference stages.
    pub fn try_run<R>(&self, f: impl FnOnce() -> R) -> std::thread::Result<R> {
        catch_unwind(AssertUnwindSafe(|| self.run(f)))
    }

    /// Shard-scoped [`parallel_chunks`]: splits `0..n` into at most
    /// [`Self::width`] ranges executed on this shard.
    pub fn parallel_chunks(&self, n: usize, f: impl Fn(usize, usize) + Sync) {
        self.run(|| parallel_chunks(n, f));
    }

    /// Shard-scoped [`parallel_rows_mut`]: row blocks execute on this shard,
    /// split by its width.
    pub fn parallel_rows_mut(
        &self,
        out: &mut [f32],
        row_len: usize,
        f: impl Fn(usize, &mut [f32]) + Sync,
    ) {
        self.run(|| parallel_rows_mut(out, row_len, f));
    }
}

impl Drop for PoolShard {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.shutdown = true;
        drop(st);
        self.shared.work.notify_all();
    }
}

/// Runs `f(start, end)` over disjoint sub-ranges of `0..n`, possibly in
/// parallel.
///
/// `f` must be safe to run concurrently on disjoint ranges; each invocation
/// receives a half-open `[start, end)` range. The split is contiguous and a
/// deterministic function of `n` and [`threads`] alone, so results written
/// to disjoint output slices are identical regardless of how many workers
/// actually execute.
pub fn parallel_chunks(n: usize, f: impl Fn(usize, usize) + Sync) {
    let t = threads().min(n.div_ceil(MIN_ITEMS_PER_THREAD)).max(1);
    if t == 1 || n == 0 {
        f(0, n);
        return;
    }
    let chunk = n.div_ceil(t);
    run_chunked(n.div_ceil(chunk), &|i| {
        let start = i * chunk;
        let end = ((i + 1) * chunk).min(n);
        if start < end {
            f(start, end);
        }
    });
}

/// Splits `out` into row blocks of `row_len` elements and hands each block to
/// `f` with its starting row index — the common pattern for writing disjoint
/// rows of a matrix in parallel.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `row_len` (unless both are 0).
pub fn parallel_rows_mut(out: &mut [f32], row_len: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    if row_len == 0 {
        assert!(out.is_empty(), "row_len 0 with non-empty buffer");
        return;
    }
    assert_eq!(out.len() % row_len, 0, "buffer not a whole number of rows");
    let rows = out.len() / row_len;
    let t = if out.len() < MIN_PARALLEL_ELEMS {
        1
    } else {
        threads().min(rows.div_ceil(MIN_ITEMS_PER_THREAD)).max(1)
    };
    if t == 1 {
        for (r, row) in out.chunks_mut(row_len).enumerate() {
            f(r, row);
        }
        return;
    }
    let chunk_rows = rows.div_ceil(t);
    let base = out.as_mut_ptr() as usize;
    run_chunked(rows.div_ceil(chunk_rows), &|i| {
        let start = i * chunk_rows;
        let end = ((i + 1) * chunk_rows).min(rows);
        for r in start..end {
            // SAFETY: each chunk touches a disjoint row range of `out`, and
            // the dispatcher blocks until all chunks finish.
            let row = unsafe {
                std::slice::from_raw_parts_mut(
                    (base + r * row_len * std::mem::size_of::<f32>()) as *mut f32,
                    row_len,
                )
            };
            f(r, row);
        }
    });
}

/// Splits `out` into at most `t` contiguous blocks of whole rows and hands
/// each block to `f` with its starting row index. The split depends only on
/// the row count and `t`, never on worker scheduling, so any kernel whose
/// per-element result is independent of the block partition is bit-for-bit
/// deterministic across thread counts.
///
/// # Panics
///
/// Panics if `out.len()` is not a multiple of `row_len` (unless both are 0).
pub fn parallel_row_blocks_mut(
    out: &mut [f32],
    row_len: usize,
    t: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if row_len == 0 {
        assert!(out.is_empty(), "row_len 0 with non-empty buffer");
        return;
    }
    assert_eq!(out.len() % row_len, 0, "buffer not a whole number of rows");
    let rows = out.len() / row_len;
    let t = t.clamp(1, rows.max(1));
    if t == 1 {
        f(0, out);
        return;
    }
    let block_rows = rows.div_ceil(t);
    let base = out.as_mut_ptr() as usize;
    run_chunked(rows.div_ceil(block_rows), &|i| {
        let start = i * block_rows;
        let end = ((i + 1) * block_rows).min(rows);
        // SAFETY: blocks cover disjoint row ranges, and the dispatcher
        // blocks until every chunk finishes.
        let block = unsafe {
            std::slice::from_raw_parts_mut(
                (base + start * row_len * std::mem::size_of::<f32>()) as *mut f32,
                (end - start) * row_len,
            )
        };
        f(start, block);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_range_exactly_once() {
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u32; 1000]);
        parallel_chunks(1000, |a, b| {
            let mut h = hits.lock().unwrap();
            for i in a..b {
                h[i] += 1;
            }
        });
        assert!(hits.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn chunks_handle_zero() {
        parallel_chunks(0, |a, b| assert_eq!((a, b), (0, 0)));
    }

    #[test]
    fn rows_mut_writes_disjoint_rows() {
        let mut buf = vec![0.0f32; 64 * 3];
        parallel_rows_mut(&mut buf, 3, |r, row| {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * 3 + c) as f32;
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn large_buffers_exercise_the_pool() {
        // Above MIN_PARALLEL_ELEMS so the persistent pool actually runs.
        let rows = 1024;
        let cols = 64;
        let mut buf = vec![0.0f32; rows * cols];
        parallel_rows_mut(&mut buf, cols, |r, row| {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * cols + c) as f32;
            }
        });
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn repeated_dispatch_reuses_pool() {
        // Hundreds of back-to-back jobs through the same pool must all
        // complete (regression test for lost-wakeup bugs).
        for round in 0..300 {
            let mut buf = vec![0.0f32; 48 * 1024];
            parallel_rows_mut(&mut buf, 1024, |r, row| {
                row.fill(r as f32 + round as f32);
            });
            assert_eq!(buf[1024 * 7], 7.0 + round as f32);
        }
    }

    #[test]
    fn thread_count_override() {
        let before = threads();
        set_threads(1);
        assert_eq!(threads(), 1);
        set_threads(0);
        assert!(threads() >= 1);
        let _ = before;
    }

    #[test]
    fn shard_scoped_chunks_cover_range_exactly_once() {
        let shard = PoolShard::new(3);
        let hits = Mutex::new(vec![0u32; 777]);
        shard.parallel_chunks(777, |a, b| {
            let mut h = hits.lock().unwrap();
            for i in a..b {
                h[i] += 1;
            }
        });
        assert!(hits.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn shard_results_match_global_pool_bit_for_bit() {
        let fill = |buf: &mut [f32]| {
            parallel_rows_mut(buf, 512, |r, row| {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (r as f32).sin() * (c as f32).cos();
                }
            });
        };
        set_threads(1);
        let mut gold = vec![0.0f32; 128 * 512];
        fill(&mut gold);
        set_threads(0);
        for width in [1, 2, 4] {
            let shard = PoolShard::new(width);
            let mut buf = vec![0.0f32; 128 * 512];
            shard.run(|| fill(&mut buf));
            assert_eq!(buf, gold, "shard width {width}");
        }
    }

    #[test]
    fn shard_width_overrides_global_threads_inside_scope() {
        let shard = PoolShard::new(3);
        set_threads(7);
        assert_eq!(threads(), 7);
        shard.run(|| assert_eq!(threads(), 3));
        assert_eq!(threads(), 7);
        set_threads(0);
    }

    #[test]
    fn concurrent_shards_run_independent_jobs() {
        // Two shards driven from two threads, many rounds each: jobs must
        // all complete without cross-shard interference or deadlock.
        let shards = [PoolShard::new(2), PoolShard::new(2)];
        std::thread::scope(|s| {
            for (t, shard) in shards.iter().enumerate() {
                s.spawn(move || {
                    for round in 0..200 {
                        let mut buf = vec![0.0f32; 48 * 1024];
                        shard.parallel_rows_mut(&mut buf, 1024, |r, row| {
                            row.fill((t * 1000 + r + round) as f32);
                        });
                        assert_eq!(buf[1024 * 5], (t * 1000 + 5 + round) as f32);
                    }
                });
            }
        });
    }

    #[test]
    fn resized_shard_results_stay_bit_identical() {
        // Grow and shrink a shard between jobs: every job completes and
        // results match the serial gold bit-for-bit at every width.
        let fill = |buf: &mut [f32]| {
            parallel_rows_mut(buf, 512, |r, row| {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (r as f32).sin() * (c as f32).cos();
                }
            });
        };
        set_threads(1);
        let mut gold = vec![0.0f32; 128 * 512];
        fill(&mut gold);
        set_threads(0);
        let mut shard = PoolShard::new(1);
        for &w in &[3usize, 1, 4, 2, 1, 5] {
            shard.set_width(w);
            assert_eq!(shard.width(), w);
            let mut buf = vec![0.0f32; 128 * 512];
            shard.run(|| fill(&mut buf));
            assert_eq!(buf, gold, "after resize to width {w}");
        }
    }

    #[test]
    fn shrunk_then_regrown_shard_still_completes_jobs() {
        // Repeated shrink/regrow cycles: retired workers must not wedge the
        // shard, and regrowth must replace them.
        let mut shard = PoolShard::new(4);
        for round in 0..20 {
            shard.set_width(if round % 2 == 0 { 1 } else { 4 });
            let mut buf = vec![0.0f32; 64 * 1024];
            shard.parallel_rows_mut(&mut buf, 1024, |r, row| row.fill((r + round) as f32));
            assert_eq!(buf[1024 * 3], (3 + round) as f32);
        }
    }

    #[test]
    fn set_width_overrides_chunk_split_inside_scope() {
        let mut shard = PoolShard::new(2);
        shard.run(|| assert_eq!(threads(), 2));
        shard.set_width(5);
        shard.run(|| assert_eq!(threads(), 5));
        shard.set_width(1);
        shard.run(|| assert_eq!(threads(), 1));
    }

    #[test]
    fn shard_survives_panicking_job_and_stays_deterministic() {
        let mut shard = PoolShard::new(2);
        let work = |shard: &PoolShard| -> Vec<f32> {
            let mut buf = vec![0.0f32; 32 * 256];
            shard.parallel_rows_mut(&mut buf, 256, |r, row| {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (r as f32).sqrt() + c as f32;
                }
            });
            buf
        };
        let gold = work(&shard);
        // A panic inside the closure surfaces as Err, not an unwind.
        let err = shard.try_run(|| -> () { panic!("injected stage panic") });
        assert!(err.is_err());
        // A panic inside a *worker* (mid-kernel) is re-raised on the
        // submitter and caught the same way.
        let err = shard.try_run(|| {
            let mut buf = vec![0.0f32; 8 * 64];
            parallel_rows_mut(&mut buf, 64, |r, _| {
                if r == 5 {
                    panic!("injected worker panic");
                }
            });
        });
        assert!(err.is_err());
        // The shard survives both: later jobs run and match bit-for-bit,
        // and resizing still works.
        assert_eq!(work(&shard), gold, "post-panic kernels must be identical");
        shard.set_width(3);
        assert_eq!(work(&shard), gold, "resize after panic must still work");
        assert_eq!(shard.try_run(|| 7).unwrap(), 7);
    }

    #[test]
    fn dropped_shard_workers_exit_without_wedging_new_shards() {
        for _ in 0..8 {
            let shard = PoolShard::new(2);
            let mut buf = vec![0.0f32; 64 * 1024];
            shard.parallel_rows_mut(&mut buf, 1024, |r, row| row.fill(r as f32));
            assert_eq!(buf[1024 * 3], 3.0);
            drop(shard);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let gold: Vec<f32> = {
            set_threads(1);
            let mut buf = vec![0.0f32; 128 * 512];
            parallel_rows_mut(&mut buf, 512, |r, row| {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (r as f32).sin() * (c as f32).cos();
                }
            });
            buf
        };
        for t in 2..=8 {
            set_threads(t);
            let mut buf = vec![0.0f32; 128 * 512];
            parallel_rows_mut(&mut buf, 512, |r, row| {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (r as f32).sin() * (c as f32).cos();
                }
            });
            assert_eq!(buf, gold, "thread count {t}");
        }
        set_threads(0);
    }
}
