//! Deterministic weight initializers.
//!
//! All initializers take an explicit RNG so that every network in the
//! reproduction is seeded and bit-reproducible (see DESIGN.md S2: the base
//! DNN is a *fixed random-feature extractor* in lieu of ImageNet weights).

use rand::Rng;

use crate::Tensor;

/// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// The standard choice for ReLU networks; used for all conv weights.
pub fn he_normal<R: Rng>(rng: &mut R, dims: Vec<usize>, fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    gaussian(rng, dims, std)
}

/// Glorot (Xavier) uniform initialization: `U(±sqrt(6 / (fan_in + fan_out)))`.
///
/// Used for dense layers feeding sigmoids.
pub fn glorot_uniform<R: Rng>(
    rng: &mut R,
    dims: Vec<usize>,
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(rng, dims, -limit, limit)
}

/// Uniform initialization over `[lo, hi)`.
pub fn uniform<R: Rng>(rng: &mut R, dims: Vec<usize>, lo: f32, hi: f32) -> Tensor {
    let n: usize = dims.iter().product();
    Tensor::from_vec(dims, (0..n).map(|_| rng.gen_range(lo..hi)).collect())
}

fn gaussian<R: Rng>(rng: &mut R, dims: Vec<usize>, std: f32) -> Tensor {
    let n: usize = dims.iter().product();
    // Box-Muller; rand's distributions feature is avoided to keep the
    // dependency surface minimal.
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(dims, data)
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn he_normal_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = he_normal(&mut rng, vec![100, 100], 50);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 2.0 / 50.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn glorot_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = glorot_uniform(&mut rng, vec![1000], 10, 20);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rand::rngs::StdRng::seed_from_u64(9);
        let mut b = rand::rngs::StdRng::seed_from_u64(9);
        assert_eq!(
            he_normal(&mut a, vec![32], 8),
            he_normal(&mut b, vec![32], 8)
        );
    }
}
