//! Blocked, threaded matrix multiplication.
//!
//! `C[M,N] = A[M,K] · B[K,N]`, computed row-block-parallel with a k-major
//! inner loop (`c_row += a_ik * b_row`) that LLVM auto-vectorizes. This is
//! the single hot kernel of the whole reproduction: convolutions lower to it
//! through im2col, and dense layers call it directly.

use crate::parallel::parallel_rows_mut;
use crate::Tensor;

/// `A · B` for rank-2 tensors.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "A");
    let (k2, n) = mat_dims(b, "B");
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut out = Tensor::zeros(vec![m, n]);
    matmul_into(a, b, &mut out);
    out
}

/// `A · B` written into a pre-allocated `out` (shape `[M, N]`).
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = mat_dims(a, "A");
    let (k2, n) = mat_dims(b, "B");
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    assert_eq!(out.dims(), &[m, n], "matmul output shape");
    let (ad, bd) = (a.data(), b.data());
    parallel_rows_mut(out.data_mut(), n, |i, c_row| {
        c_row.fill(0.0);
        let a_row = &ad[i * k..(i + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += aik * bv;
            }
        }
    });
}

/// `Aᵀ · B` without materializing the transpose.
///
/// Used by convolution backward passes (weight gradients): with `A` the
/// im2col matrix `[positions, fan_in]` and `B` the output gradient
/// `[positions, c_out]`, this yields the weight gradient `[fan_in, c_out]`.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the row counts disagree.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "A"); // computes Aᵀ (k×m) · B (m×n)
    let (m2, n) = mat_dims(b, "B");
    assert_eq!(m, m2, "matmul_transpose_a outer dims: {m} vs {m2}");
    let mut out = Tensor::zeros(vec![k, n]);
    let (ad, bd) = (a.data(), b.data());
    parallel_rows_mut(out.data_mut(), n, |kk, c_row| {
        for i in 0..m {
            let aik = ad[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[i * n..(i + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += aik * bv;
            }
        }
    });
    out
}

/// `A · Bᵀ` without materializing the transpose.
///
/// Used by dense-layer backward passes (input gradients).
///
/// # Panics
///
/// Panics if operands are not rank-2 or the column counts disagree.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "A");
    let (n, k2) = mat_dims(b, "B"); // B is n x k, we use B^T: k x n
    assert_eq!(k, k2, "matmul_transpose_b inner dims: {k} vs {k2}");
    let mut out = Tensor::zeros(vec![m, n]);
    let (ad, bd) = (a.data(), b.data());
    parallel_rows_mut(out.data_mut(), n, |i, c_row| {
        let a_row = &ad[i * k..(i + 1) * k];
        for (j, c) in c_row.iter_mut().enumerate() {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *c = acc;
        }
    });
    out
}

fn mat_dims(t: &Tensor, which: &str) -> (usize, usize) {
    assert_eq!(t.rank(), 2, "matmul operand {which} must be rank-2, got {:?}", t.dims());
    (t.dims()[0], t.dims()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(vec![m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at2(i, kk) * b.at2(kk, j);
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matches_naive_small() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-5));
    }

    #[test]
    fn matches_naive_odd_sizes() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (17, 33, 9), (64, 10, 100)] {
            let a = Tensor::from_vec(vec![m, k], (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
            let b = Tensor::from_vec(vec![k, n], (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect());
            assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-4), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn transpose_a_matches_explicit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Tensor::from_vec(vec![7, 4], (0..28).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let b = Tensor::from_vec(vec![7, 5], (0..35).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let got = matmul_transpose_a(&a, &b);
        let want = matmul(&a.transpose2(), &b);
        assert!(got.approx_eq(&want, 1e-4));
    }

    #[test]
    fn transpose_b_matches_explicit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a = Tensor::from_vec(vec![4, 6], (0..24).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let b = Tensor::from_vec(vec![5, 6], (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let got = matmul_transpose_b(&a, &b);
        let want = matmul(&a, &b.transpose2());
        assert!(got.approx_eq(&want, 1e-4));
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn rejects_mismatched_inner() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        let _ = matmul(&a, &b);
    }
}
