//! Packed, cache-blocked, threaded matrix multiplication.
//!
//! `C[M,N] = A[M,K] · B[K,N]`, the single hot kernel of the whole
//! reproduction: convolutions lower to it through im2col (or directly, for
//! 1×1 kernels), and dense layers call it for `M = 1`.
//!
//! # Kernel structure
//!
//! For matrices big enough to care, `B` is first packed into `NR`-wide
//! column panels laid out k-major (`panel[k][0..NR]` contiguous), then row
//! blocks of `C` are computed in parallel with an `MR×NR` register-tiled
//! micro-kernel that streams each packed panel sequentially. The packing
//! buffer is a reused thread-local, so steady-state calls allocate nothing.
//!
//! Tiny problems (`M < 8`, e.g. dense layers on vectors) skip packing: a
//! plain k-major loop is already optimal when the single output row stays
//! in L1.
//!
//! # Determinism
//!
//! Every output element accumulates its `K` products in ascending-`k` order
//! in **all** paths (packed, unpacked, any thread count), so results are
//! bit-for-bit identical across `set_threads(1..)` and equal to the naive
//! triple loop.

use crate::parallel::{parallel_row_blocks_mut, parallel_rows_mut, threads};
use crate::Tensor;
use std::cell::RefCell;

/// Micro-kernel tile height (rows of `A`/`C` per register tile). Shared with
/// the reduced-precision kernels in [`crate::lowp`].
pub(crate) const MR: usize = 4;
/// Micro-kernel tile width (columns of packed `B` per register tile).
/// Sixteen `f32` lanes = two AVX2 vectors per row; `MR·NR/8 = 8` ymm
/// accumulators leave registers for broadcasts and panel loads.
pub(crate) const NR: usize = 16;

/// Fused (or plain, off FMA targets) multiply-add. Every GEMM path — packed,
/// unpacked, both transpose kernels, and the reduced-precision panel kernels
/// in [`crate::lowp`] — funnels through this, so all paths share one
/// rounding behavior and stay bit-identical to each other.
#[inline(always)]
pub(crate) fn fmadd(acc: f32, a: f32, b: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}
/// Below this many `A` rows the packed path cannot amortize packing `B`.
const MIN_ROWS_FOR_PACKING: usize = 8;
/// Minimum `M·N` before a GEMM is worth dispatching to the thread pool.
pub(crate) const MIN_ELEMS_FOR_THREADS: usize = 32 * 1024;

thread_local! {
    /// Reused packing buffer for `B` panels (and the transpose scratch of
    /// [`matmul_transpose_a`]); grows to the largest problem seen, then
    /// steady-state GEMMs allocate nothing.
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// `A · B` for rank-2 tensors.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = mat_dims(a, "A");
    let (_, n) = mat_dims(b, "B");
    let mut out = Tensor::zeros(vec![m, n]);
    matmul_into(a, b, &mut out);
    out
}

/// `A · B` written into a pre-allocated `out` (shape `[M, N]`).
///
/// Every element of `out` is overwritten; its prior contents are ignored.
///
/// # Panics
///
/// Panics on any shape mismatch.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = mat_dims(a, "A");
    let (k2, n) = mat_dims(b, "B");
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    assert_eq!(out.dims(), &[m, n], "matmul output shape");
    gemm(a.data(), b.data(), out.data_mut(), m, k, n);
}

/// Per-column epilogue fused into a GEMM: applied to each output row while
/// it is still cache-hot, in the order `acc + bias` → `·scale + shift` →
/// `max(0, ·)`. This is what lets a convolution, its folded batch-norm, and
/// its ReLU execute as **one** pass over the output instead of three
/// (separate layer passes are memory-bound and were costing more than the
/// GEMM itself on the MobileNet hot path).
#[derive(Clone, Copy, Default)]
pub struct Epilogue<'a> {
    /// Per-output-column bias, added first.
    pub bias: Option<&'a [f32]>,
    /// Per-output-column affine `(scale, shift)` — a folded batch-norm.
    pub scale_shift: Option<(&'a [f32], &'a [f32])>,
    /// Clamp at zero (ReLU) as the final step.
    pub relu: bool,
}

impl Epilogue<'_> {
    fn is_noop(&self) -> bool {
        self.bias.is_none() && self.scale_shift.is_none() && !self.relu
    }

    /// Applies the epilogue to one `[rows × n]` row block.
    pub(crate) fn apply(&self, block: &mut [f32], n: usize) {
        if self.is_noop() {
            return;
        }
        for row in block.chunks_mut(n) {
            if let Some(bias) = self.bias {
                for (v, &b) in row.iter_mut().zip(bias) {
                    *v += b;
                }
            }
            if let Some((scale, shift)) = self.scale_shift {
                for ((v, &s), &t) in row.iter_mut().zip(scale).zip(shift) {
                    *v = fmadd(t, *v, s);
                }
            }
            if self.relu {
                for v in row.iter_mut() {
                    *v = v.max(0.0);
                }
            }
        }
    }
}

/// Raw-slice GEMM: `out[M,N] = a[M,K] · b[K,N]`, all row-major. The public
/// entry point for callers that already hold correctly-shaped buffers (the
/// 1×1-convolution fast path feeds HWC feature maps here directly, skipping
/// both im2col and any reshape copy).
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_fused(a, b, out, m, k, n, Epilogue::default());
}

/// [`gemm`] with a fused per-column [`Epilogue`].
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions, or an
/// epilogue slice is shorter than `n`.
pub fn gemm_fused(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    assert_eq!(b.len(), k * n, "gemm B buffer");
    check_gemm_args(a, out, m, k, n, &ep);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        ep.apply(out, n);
        return;
    }
    if m < MIN_ROWS_FOR_PACKING {
        gemm_unpacked(a, b, out, k, n);
        ep.apply(out, n);
        return;
    }
    PACK_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        let packed_len = packed_panels_len(k, n);
        if buf.len() < packed_len {
            buf.resize(packed_len, 0.0);
        }
        let packed = &mut buf[..packed_len];
        pack_b(b, packed, k, n);
        gemm_packed_driver(a, packed, out, m, k, n, ep);
    });
}

/// Length of the panel buffer [`pack_b_panels_into`] needs for a `[K, N]`
/// matrix.
pub fn packed_panels_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

/// Packs a row-major `[K, N]` matrix into the micro-kernel's panel layout.
/// Callers with a static `B` (e.g. convolution weights during streaming
/// inference) pack once and reuse via [`gemm_prepacked`], eliminating the
/// per-call packing traffic.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions.
pub fn pack_b_panels_into(b: &[f32], packed: &mut [f32], k: usize, n: usize) {
    assert_eq!(b.len(), k * n, "pack B buffer");
    assert_eq!(packed.len(), packed_panels_len(k, n), "pack output buffer");
    pack_b(b, packed, k, n);
}

/// [`gemm_fused`] against a pre-packed `B` (see [`pack_b_panels_into`]).
/// Bit-identical to the packing variants for the same operands.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions, or an epilogue
/// slice is shorter than `n`.
pub fn gemm_prepacked(
    a: &[f32],
    packed_b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    assert_eq!(
        packed_b.len(),
        packed_panels_len(k, n),
        "gemm packed-B buffer"
    );
    check_gemm_args(a, out, m, k, n, &ep);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        ep.apply(out, n);
        return;
    }
    gemm_packed_driver(a, packed_b, out, m, k, n, ep);
}

pub(crate) fn check_gemm_args(a: &[f32], out: &[f32], m: usize, k: usize, n: usize, ep: &Epilogue) {
    assert_eq!(a.len(), m * k, "gemm A buffer");
    assert_eq!(out.len(), m * n, "gemm C buffer");
    if let Some(b) = ep.bias {
        assert!(b.len() >= n, "epilogue bias too short");
    }
    if let Some((s, t)) = ep.scale_shift {
        assert!(
            s.len() >= n && t.len() >= n,
            "epilogue scale/shift too short"
        );
    }
}

/// Shared packed-path driver: splits `out` into row blocks (thread pool when
/// big enough) and runs the micro-kernels plus epilogue per block.
fn gemm_packed_driver(
    a: &[f32],
    packed: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    let parallel = m * n >= MIN_ELEMS_FOR_THREADS;
    let t = if parallel { threads() } else { 1 };
    parallel_row_blocks_mut(out, n, t, |row0, block| {
        gemm_packed_rows(a, packed, block, row0, k, n);
        ep.apply(block, n);
    });
}

/// Packs row-major `b[K,N]` into `ceil(N/NR)` k-major panels of width `NR`,
/// zero-padding the ragged final panel.
fn pack_b(b: &[f32], packed: &mut [f32], k: usize, n: usize) {
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let dst = &mut packed[jp * NR * k..(jp + 1) * NR * k];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            let cell = &mut dst[kk * NR..kk * NR + NR];
            cell[..w].copy_from_slice(src);
            cell[w..].fill(0.0);
        }
    }
}

/// Computes `block` (rows `row0..row0 + block.len()/n` of `C`) from `a` and
/// packed `B` panels.
fn gemm_packed_rows(a: &[f32], packed: &[f32], block: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = block.len() / n;
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let panel = &packed[jp * NR * k..(jp + 1) * NR * k];
        let mut r = 0;
        while r + MR <= rows {
            micro_kernel_mr(a, panel, block, row0 + r, r, j0, w, k, n);
            r += MR;
        }
        while r < rows {
            micro_kernel_1(a, panel, block, row0 + r, r, j0, w, k, n);
            r += 1;
        }
    }
}

/// `MR×NR` register tile: C[r..r+MR][j0..j0+w] = Σ_k A[r..][k] · panel[k][..].
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_mr(
    a: &[f32],
    panel: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        // SAFETY: avx2+fma are compile-time target features here; slice
        // bounds are asserted by the callers' geometry.
        unsafe { micro_kernel_mr_avx2(a, panel, block, a_row, c_row, j0, w, k, n) }
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    {
        micro_kernel_mr_generic(a, panel, block, a_row, c_row, j0, w, k, n)
    }
}

/// Portable `MR×NR` tile (LLVM auto-vectorizes the inner loop).
#[allow(clippy::too_many_arguments)]
#[allow(dead_code)]
#[inline]
fn micro_kernel_mr_generic(
    a: &[f32],
    panel: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let a0 = &a[a_row * k..(a_row + 1) * k];
    let a1 = &a[(a_row + 1) * k..(a_row + 2) * k];
    let a2 = &a[(a_row + 2) * k..(a_row + 3) * k];
    let a3 = &a[(a_row + 3) * k..(a_row + 4) * k];
    for kk in 0..k {
        let bk = &panel[kk * NR..kk * NR + NR];
        let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
        for (accr, &ar) in acc.iter_mut().zip(&av) {
            for (c, &bv) in accr.iter_mut().zip(bk) {
                *c = fmadd(*c, ar, bv);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let dst = &mut block[(c_row + r) * n + j0..(c_row + r) * n + j0 + w];
        dst.copy_from_slice(&accr[..w]);
    }
}

/// Hand-scheduled AVX2+FMA `4×16` tile: eight ymm accumulators, two panel
/// loads and four broadcasts per `k` step. Lane-wise FMAs accumulate in the
/// same ascending-`k` order as the portable kernel's `mul_add` chain, so
/// results are bit-identical to it.
///
/// # Safety
///
/// Caller must guarantee avx2+fma are available (compile-time gated at the
/// call site) and the usual geometry invariants (`a` holds `MR` rows of
/// length `k` at `a_row`, `panel` holds `k·NR` floats, `block` holds the
/// target rows).
#[allow(clippy::too_many_arguments)]
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
#[inline]
unsafe fn micro_kernel_mr_avx2(
    a: &[f32],
    panel: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16 && MR == 4) };
    unsafe {
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(pp.add(kk * NR));
            let b1 = _mm256_loadu_ps(pp.add(kk * NR + 8));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add((a_row + r) * k + kk));
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        if w == NR {
            let cp = block.as_mut_ptr();
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(cp.add((c_row + r) * n + j0), accr[0]);
                _mm256_storeu_ps(cp.add((c_row + r) * n + j0 + 8), accr[1]);
            }
        } else {
            let mut tmp = [0.0f32; NR];
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(tmp.as_mut_ptr(), accr[0]);
                _mm256_storeu_ps(tmp.as_mut_ptr().add(8), accr[1]);
                block[(c_row + r) * n + j0..(c_row + r) * n + j0 + w].copy_from_slice(&tmp[..w]);
            }
        }
    }
}

/// Single-row remainder of [`micro_kernel_mr`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_1(
    a: &[f32],
    panel: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [0.0f32; NR];
    let ar = &a[a_row * k..(a_row + 1) * k];
    for (kk, &av) in ar.iter().enumerate() {
        let bk = &panel[kk * NR..kk * NR + NR];
        for (c, &bv) in acc.iter_mut().zip(bk) {
            *c = fmadd(*c, av, bv);
        }
    }
    block[c_row * n + j0..c_row * n + j0 + w].copy_from_slice(&acc[..w]);
}

/// Small-`M` path: dense k-major accumulation without packing. The output
/// row stays resident in L1, and `B` is streamed row-major exactly once per
/// output row.
fn gemm_unpacked(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    for (i, c_row) in out.chunks_mut(n).enumerate() {
        c_row.fill(0.0);
        let a_row = &a[i * k..(i + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c = fmadd(*c, aik, bv);
            }
        }
    }
}

/// `Aᵀ · B` without materializing the transpose.
///
/// Used by convolution backward passes (weight gradients): with `A` the
/// im2col matrix `[positions, fan_in]` and `B` the output gradient
/// `[positions, c_out]`, this yields the weight gradient `[fan_in, c_out]`.
///
/// Output rows are tiled by four so each streamed row of `B` feeds four
/// accumulator rows (4× less `B` traffic than the row-at-a-time loop).
///
/// # Panics
///
/// Panics if operands are not rank-2 or the row counts disagree.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "A"); // computes Aᵀ (k×m) · B (m×n)
    let (m2, n) = mat_dims(b, "B");
    assert_eq!(m, m2, "matmul_transpose_a outer dims: {m} vs {m2}");
    let mut out = Tensor::zeros(vec![k, n]);
    let (ad, bd) = (a.data(), b.data());
    let t = if k * n >= MIN_ELEMS_FOR_THREADS {
        threads()
    } else {
        1
    };
    parallel_row_blocks_mut(out.data_mut(), n, t, |row0, block| {
        let rows = block.len() / n;
        let mut r = 0;
        // Four output rows (= four adjacent A columns) per pass over B.
        while r + 4 <= rows {
            let (rs, rest) = block[r * n..].split_at_mut(n);
            let (r1, rest) = rest.split_at_mut(n);
            let (r2, r3x) = rest.split_at_mut(n);
            let r3 = &mut r3x[..n];
            for i in 0..m {
                let ai = &ad[i * k + row0 + r..i * k + row0 + r + 4];
                let b_row = &bd[i * n..(i + 1) * n];
                for ((((c0, c1), c2), c3), &bv) in rs
                    .iter_mut()
                    .zip(r1.iter_mut())
                    .zip(r2.iter_mut())
                    .zip(r3.iter_mut())
                    .zip(b_row)
                {
                    *c0 = fmadd(*c0, ai[0], bv);
                    *c1 = fmadd(*c1, ai[1], bv);
                    *c2 = fmadd(*c2, ai[2], bv);
                    *c3 = fmadd(*c3, ai[3], bv);
                }
            }
            r += 4;
        }
        while r < rows {
            let c_row = &mut block[r * n..(r + 1) * n];
            let kk = row0 + r;
            for i in 0..m {
                let aik = ad[i * k + kk];
                let b_row = &bd[i * n..(i + 1) * n];
                for (c, &bv) in c_row.iter_mut().zip(b_row) {
                    *c = fmadd(*c, aik, bv);
                }
            }
            r += 1;
        }
    });
    out
}

/// `A · Bᵀ` without materializing the transpose.
///
/// Used by dense-layer backward passes (input gradients). Output columns
/// are tiled by eight so each pass over an `A` row computes eight dot
/// products against eight streamed `B` rows.
///
/// # Panics
///
/// Panics if operands are not rank-2 or the column counts disagree.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "A");
    let (n, k2) = mat_dims(b, "B"); // B is n x k, we use B^T: k x n
    assert_eq!(k, k2, "matmul_transpose_b inner dims: {k} vs {k2}");
    let mut out = Tensor::zeros(vec![m, n]);
    let (ad, bd) = (a.data(), b.data());
    parallel_rows_mut(out.data_mut(), n, |i, c_row| {
        let a_row = &ad[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 8 <= n {
            let mut acc = [0.0f32; 8];
            for (kk, &av) in a_row.iter().enumerate() {
                for (c, jj) in acc.iter_mut().zip(j..j + 8) {
                    *c = fmadd(*c, av, bd[jj * k + kk]);
                }
            }
            c_row[j..j + 8].copy_from_slice(&acc);
            j += 8;
        }
        for jj in j..n {
            let b_row = &bd[jj * k..(jj + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc = fmadd(acc, av, bv);
            }
            c_row[jj] = acc;
        }
    });
    out
}

fn mat_dims(t: &Tensor, which: &str) -> (usize, usize) {
    assert_eq!(
        t.rank(),
        2,
        "matmul operand {which} must be rank-2, got {:?}",
        t.dims()
    );
    (t.dims()[0], t.dims()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(vec![m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc = fmadd(acc, a.at2(i, kk), b.at2(kk, j));
                }
                out.data_mut()[i * n + j] = acc;
            }
        }
        out
    }

    fn random(dims: Vec<usize>, seed: u64) -> Tensor {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn matches_naive_small() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        assert!(matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-5));
    }

    #[test]
    fn matches_naive_odd_sizes() {
        // Shapes straddling every path: unpacked (m < 8), packed with
        // ragged row and column tiles, and pool-dispatched.
        for &(m, k, n) in &[
            (1, 1, 1),
            (5, 7, 3),
            (17, 33, 9),
            (64, 10, 100),
            (8, 8, 8),
            (9, 16, 17),
            (33, 5, 31),
            (128, 64, 96),
            (257, 40, 130),
        ] {
            let a = random(vec![m, k], m as u64 * 31 + n as u64);
            let b = random(vec![k, n], k as u64 * 17 + 1);
            assert!(
                matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-3),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn packed_path_is_bit_identical_to_naive() {
        // Same per-element accumulation order ⇒ bit-for-bit equality, not
        // just approximate agreement.
        let a = random(vec![40, 23], 5);
        let b = random(vec![23, 19], 6);
        assert_eq!(matmul(&a, &b), naive(&a, &b));
    }

    #[test]
    fn zero_k_dimension_yields_zeros() {
        let a = Tensor::zeros(vec![3, 0]);
        let b = Tensor::zeros(vec![0, 4]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[3, 4]);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transpose_a_matches_explicit() {
        for &(m, k, n) in &[(7, 4, 5), (16, 9, 12), (65, 13, 33)] {
            let a = random(vec![m, k], 3);
            let b = random(vec![m, n], 4);
            let got = matmul_transpose_a(&a, &b);
            let want = matmul(&a.transpose2(), &b);
            assert!(got.approx_eq(&want, 1e-3), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn transpose_b_matches_explicit() {
        for &(m, k, n) in &[(4, 6, 5), (9, 16, 19), (33, 12, 40)] {
            let a = random(vec![m, k], 11);
            let b = random(vec![n, k], 12);
            let got = matmul_transpose_b(&a, &b);
            let want = matmul(&a, &b.transpose2());
            assert!(got.approx_eq(&want, 1e-3), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_on_raw_slices() {
        // The 1×1-conv fast path: HWC feature map as [positions, channels].
        let a = random(vec![12, 6], 7);
        let b = random(vec![6, 10], 8);
        let mut out = vec![0.0f32; 12 * 10];
        gemm(a.data(), b.data(), &mut out, 12, 6, 10);
        assert!(Tensor::from_vec(vec![12, 10], out).approx_eq(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn results_identical_across_thread_counts() {
        use crate::parallel::set_threads;
        let a = random(vec![96, 41], 21);
        let b = random(vec![41, 77], 22);
        set_threads(1);
        let gold = matmul(&a, &b);
        for t in 2..=8 {
            set_threads(t);
            assert_eq!(matmul(&a, &b), gold, "thread count {t}");
        }
        set_threads(0);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn rejects_mismatched_inner() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 2]);
        let _ = matmul(&a, &b);
    }
}
