//! Reduced-precision packed weight panels: f16 and int8 variants of the
//! prepacked GEMM path.
//!
//! Edge parts are panel-bound: the batched GEMM streams every packed weight
//! panel through cache once per batch, so the panel byte volume — not the
//! FLOPs — is what limits throughput once the weight set outgrows the LLC.
//! Storing panels at half (f16) or quarter (int8 + per-column scale)
//! precision shrinks that streamed set 2–4× while keeping **all arithmetic
//! in f32**: the micro-kernels widen each panel element back to f32 in
//! registers (`vcvtph2ps` / `vpmovsxbd + vcvtdq2ps` on AVX2 targets, exact
//! scalar widenings elsewhere) and accumulate with the same fused
//! multiply-add chain as the f32 kernels.
//!
//! # Numerics and determinism
//!
//! Widening f16→f32 and i8→f32 is **exact**, so the SIMD and scalar kernels
//! see bit-identical panel values and — accumulating in the same
//! ascending-`k` order as every other GEMM path — produce bit-identical
//! outputs for any thread count. The only rounding happens once, at *pack*
//! time (f32→f16 round-to-nearest-even; int8 symmetric per-column
//! quantization), which is why a reduced-precision network is deterministic
//! run-to-run even though it differs from the f32 network by the weight
//! quantization error.
//!
//! The int8 kernel is dequant-free in its inner loop: it accumulates
//! `Σₖ aₖ·qₖⱼ` with the raw (widened) integer codes and applies the column
//! scale once per output element after the reduction, so quantization adds
//! one multiply per output, not one per multiply-add.

use crate::matmul::{check_gemm_args, fmadd, Epilogue, MIN_ELEMS_FOR_THREADS, MR, NR};
use crate::matmul::{pack_b_panels_into, packed_panels_len};
use crate::parallel::{parallel_row_blocks_mut, threads};

/// Storage precision for prepacked weight panels.
///
/// Activations, accumulation, and epilogues are always f32; this selects
/// only how the static weight panels are stored (and therefore how many
/// bytes stream through cache per GEMM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full-precision panels — the bit-exact baseline path.
    #[default]
    F32,
    /// Half-precision (IEEE binary16) panels, widened to f32 in registers.
    /// Halves panel bytes; weights round once at pack time.
    F16,
    /// Symmetric int8 panels with one f32 scale per output column,
    /// widened to f32 in registers and scaled after the reduction.
    /// Quarters panel bytes (plus a 4·N-byte scale vector).
    Int8,
}

impl Precision {
    /// Short lowercase label (`"f32"`, `"f16"`, `"int8"`) for bench rows
    /// and logs.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }

    /// Bytes of the packed panel array for a `[K, N]` weight matrix at this
    /// precision, **excluding** the int8 scale vector (which is
    /// `4·ceil(N/NR)·NR` bytes on top). F16 is exactly half of F32; Int8 is
    /// exactly a quarter.
    pub fn packed_panel_bytes(self, k: usize, n: usize) -> usize {
        match self {
            Precision::F32 => packed_panels_len(k, n) * 4,
            Precision::F16 => packed_panels_f16_len(k, n) * 2,
            Precision::Int8 => packed_panels_i8_len(k, n),
        }
    }
}

// ---------------------------------------------------------------------------
// f16 conversion
// ---------------------------------------------------------------------------

/// Converts an f32 to IEEE binary16 with round-to-nearest-even — the same
/// rounding `vcvtps2ph` uses, implemented in software so packing behaves
/// identically on every target. Overflow saturates to ±inf; NaN stays NaN.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 255 {
        // Inf / NaN: keep NaN-ness (set a mantissa bit if the payload's top
        // bits vanish in the narrowing).
        return if man == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7c00 | 0x0200 | ((man >> 13) as u16 & 0x03ff)
        };
    }
    let exp = exp - 127;
    if exp >= 16 {
        return sign | 0x7c00; // overflow → inf
    }
    if exp >= -14 {
        // Normal range: round 23-bit mantissa to 10 bits.
        let mut m = man >> 13;
        let rem = man & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let mut e = (exp + 15) as u32;
        if m == 0x400 {
            m = 0;
            e += 1;
            if e >= 31 {
                return sign | 0x7c00;
            }
        }
        return sign | ((e as u16) << 10) | m as u16;
    }
    if exp >= -25 {
        // Subnormal: shift the full 24-bit significand into place.
        let full = 0x0080_0000 | man;
        let shift = (13 - 14 - exp) as u32; // 13 + (-14 - exp)
        let mut m = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1;
        }
        // Rounding up out of the subnormal range lands on 0x400 — exactly
        // the encoding of the smallest normal, so no special case.
        return sign | m as u16;
    }
    sign // underflows to (signed) zero
}

/// Converts an IEEE binary16 to f32 — an **exact** widening (every f16
/// value, including subnormals, is representable in f32), so the scalar
/// path and `vcvtph2ps` agree bit-for-bit.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h as u32) & 0x03ff;
    let bits = match exp {
        0 => {
            if man == 0 {
                sign
            } else {
                // Subnormal: man · 2⁻²⁴, exact as an f32 product.
                let v = man as f32 * f32::from_bits(0x3380_0000);
                return f32::from_bits(v.to_bits() | sign);
            }
        }
        31 => sign | 0x7f80_0000 | (man << 13),
        _ => sign | ((exp + 112) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Length (in `u16` elements) of the panel buffer
/// [`pack_b_panels_f16_into`] needs for a `[K, N]` matrix — the same
/// element count as the f32 layout, at half the bytes.
pub fn packed_panels_f16_len(k: usize, n: usize) -> usize {
    packed_panels_len(k, n)
}

/// Length (in `i8` elements) of the panel buffer [`pack_b_panels_i8_into`]
/// needs for a `[K, N]` matrix — the same element count as the f32 layout,
/// at a quarter of the bytes.
pub fn packed_panels_i8_len(k: usize, n: usize) -> usize {
    packed_panels_len(k, n)
}

/// Length of the per-column scale vector [`pack_b_panels_i8_into`] needs:
/// `N` rounded up to whole `NR`-wide panels, so the micro-kernel can load
/// full scale vectors without a ragged tail.
pub fn packed_scales_i8_len(n: usize) -> usize {
    n.div_ceil(NR) * NR
}

/// Packs a row-major `[K, N]` matrix into f16 micro-kernel panels (the
/// layout of [`pack_b_panels_into`], elements narrowed to binary16 with
/// round-to-nearest-even).
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions.
pub fn pack_b_panels_f16_into(b: &[f32], packed: &mut [u16], k: usize, n: usize) {
    assert_eq!(b.len(), k * n, "pack B buffer");
    assert_eq!(packed.len(), packed_panels_f16_len(k, n), "pack f16 output");
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let dst = &mut packed[jp * NR * k..(jp + 1) * NR * k];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            let cell = &mut dst[kk * NR..kk * NR + NR];
            for (c, &v) in cell[..w].iter_mut().zip(src) {
                *c = f32_to_f16(v);
            }
            cell[w..].fill(0);
        }
    }
}

/// Packs a row-major `[K, N]` matrix into symmetric int8 micro-kernel
/// panels with one f32 scale per column: `scale[j] = max|B[:,j]| / 127`,
/// `q = round(B / scale)` clamped to `[-127, 127]` (an all-zero column gets
/// scale 0). Padded columns get zero codes and zero scales.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions.
pub fn pack_b_panels_i8_into(b: &[f32], packed: &mut [i8], scales: &mut [f32], k: usize, n: usize) {
    assert_eq!(b.len(), k * n, "pack B buffer");
    assert_eq!(packed.len(), packed_panels_i8_len(k, n), "pack i8 output");
    assert_eq!(scales.len(), packed_scales_i8_len(n), "pack i8 scales");
    scales.fill(0.0);
    // Per-column symmetric range.
    let mut inv = vec![0.0f32; n];
    for (j, inv_j) in inv.iter_mut().enumerate() {
        let mut amax = 0.0f32;
        for kk in 0..k {
            amax = amax.max(b[kk * n + j].abs());
        }
        if amax > 0.0 {
            scales[j] = amax / 127.0;
            *inv_j = 127.0 / amax;
        }
    }
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let dst = &mut packed[jp * NR * k..(jp + 1) * NR * k];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            let cell = &mut dst[kk * NR..kk * NR + NR];
            for ((c, &v), &iv) in cell[..w].iter_mut().zip(src).zip(&inv[j0..j0 + w]) {
                *c = (v * iv).round().clamp(-127.0, 127.0) as i8;
            }
            cell[w..].fill(0);
        }
    }
}

// ---------------------------------------------------------------------------
// GEMM drivers
// ---------------------------------------------------------------------------

/// [`crate::gemm_prepacked`] against f16 panels (see
/// [`pack_b_panels_f16_into`]): panel elements widen to f32 in registers and
/// accumulate in f32, in the same ascending-`k` order as the f32 kernels —
/// bit-identical to running the f32 path on the f16-roundtripped weights,
/// for any thread count.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions, or an epilogue
/// slice is shorter than `n`.
pub fn gemm_prepacked_f16(
    a: &[f32],
    packed_b: &[u16],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    assert_eq!(
        packed_b.len(),
        packed_panels_f16_len(k, n),
        "gemm packed-f16 B buffer"
    );
    check_gemm_args(a, out, m, k, n, &ep);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        ep.apply(out, n);
        return;
    }
    let t = if m * n >= MIN_ELEMS_FOR_THREADS {
        threads()
    } else {
        1
    };
    parallel_row_blocks_mut(out, n, t, |row0, block| {
        gemm_f16_rows(a, packed_b, block, row0, k, n);
        ep.apply(block, n);
    });
}

/// [`crate::gemm_prepacked`] against int8 panels + per-column scales (see
/// [`pack_b_panels_i8_into`]): the inner loop accumulates the raw widened
/// codes in f32 and the column scale is applied once per output element
/// after the reduction (dequant-free accumulation). Deterministic for any
/// thread count.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions, or an epilogue
/// slice is shorter than `n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_prepacked_i8(
    a: &[f32],
    packed_b: &[i8],
    scales: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    assert_eq!(
        packed_b.len(),
        packed_panels_i8_len(k, n),
        "gemm packed-i8 B buffer"
    );
    assert_eq!(scales.len(), packed_scales_i8_len(n), "gemm i8 scales");
    check_gemm_args(a, out, m, k, n, &ep);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        ep.apply(out, n);
        return;
    }
    let t = if m * n >= MIN_ELEMS_FOR_THREADS {
        threads()
    } else {
        1
    };
    parallel_row_blocks_mut(out, n, t, |row0, block| {
        gemm_i8_rows(a, packed_b, scales, block, row0, k, n);
        ep.apply(block, n);
    });
}

/// Weight panels prepacked at a chosen [`Precision`], with the matching
/// GEMM dispatch — the storage type layers keep behind their precision
/// knob so the forward path stays a single call.
#[derive(Debug, Clone)]
pub enum PackedPanels {
    /// Full-precision panels ([`pack_b_panels_into`]).
    F32(Vec<f32>),
    /// Half-precision panels ([`pack_b_panels_f16_into`]).
    F16(Vec<u16>),
    /// Int8 panels with per-column scales ([`pack_b_panels_i8_into`]).
    Int8 {
        /// Quantized panel elements.
        q: Vec<i8>,
        /// Per-column dequantization scales (padded to whole panels).
        scales: Vec<f32>,
    },
}

impl PackedPanels {
    /// An empty pack of the given precision (repack before use).
    pub fn empty(precision: Precision) -> Self {
        match precision {
            Precision::F32 => PackedPanels::F32(Vec::new()),
            Precision::F16 => PackedPanels::F16(Vec::new()),
            Precision::Int8 => PackedPanels::Int8 {
                q: Vec::new(),
                scales: Vec::new(),
            },
        }
    }

    /// Packs a row-major `[K, N]` matrix at the given precision.
    pub fn pack(precision: Precision, b: &[f32], k: usize, n: usize) -> Self {
        let mut p = Self::empty(precision);
        p.repack(b, k, n);
        p
    }

    /// Re-packs in place (reusing the buffers), keeping the precision.
    pub fn repack(&mut self, b: &[f32], k: usize, n: usize) {
        match self {
            PackedPanels::F32(buf) => {
                buf.resize(packed_panels_len(k, n), 0.0);
                pack_b_panels_into(b, buf, k, n);
            }
            PackedPanels::F16(buf) => {
                buf.resize(packed_panels_f16_len(k, n), 0);
                pack_b_panels_f16_into(b, buf, k, n);
            }
            PackedPanels::Int8 { q, scales } => {
                q.resize(packed_panels_i8_len(k, n), 0);
                scales.resize(packed_scales_i8_len(n), 0.0);
                pack_b_panels_i8_into(b, q, scales, k, n);
            }
        }
    }

    /// The precision the panels are stored at.
    pub fn precision(&self) -> Precision {
        match self {
            PackedPanels::F32(_) => Precision::F32,
            PackedPanels::F16(_) => Precision::F16,
            PackedPanels::Int8 { .. } => Precision::Int8,
        }
    }

    /// Bytes held by the packed representation (panels + any scales).
    pub fn bytes(&self) -> usize {
        match self {
            PackedPanels::F32(buf) => buf.len() * 4,
            PackedPanels::F16(buf) => buf.len() * 2,
            PackedPanels::Int8 { q, scales } => q.len() + scales.len() * 4,
        }
    }

    /// Runs the prepacked GEMM matching the storage precision.
    ///
    /// # Panics
    ///
    /// Panics if the pack does not match the `[K, N]` geometry (pack and
    /// call must agree), or on any [`crate::gemm_prepacked`] shape mismatch.
    pub fn gemm(&self, a: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, ep: Epilogue) {
        match self {
            PackedPanels::F32(buf) => crate::matmul::gemm_prepacked(a, buf, out, m, k, n, ep),
            PackedPanels::F16(buf) => gemm_prepacked_f16(a, buf, out, m, k, n, ep),
            PackedPanels::Int8 { q, scales } => gemm_prepacked_i8(a, q, scales, out, m, k, n, ep),
        }
    }
}

// ---------------------------------------------------------------------------
// Row-block walkers (mirror `gemm_packed_rows`)
// ---------------------------------------------------------------------------

/// Computes `block` (rows `row0..`) from `a` and f16 panels.
fn gemm_f16_rows(a: &[f32], packed: &[u16], block: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = block.len() / n;
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let panel = &packed[jp * NR * k..(jp + 1) * NR * k];
        let mut r = 0;
        while r + MR <= rows {
            micro_kernel_mr_f16(a, panel, block, row0 + r, r, j0, w, k, n);
            r += MR;
        }
        while r < rows {
            micro_kernel_1_f16(a, panel, block, row0 + r, r, j0, w, k, n);
            r += 1;
        }
    }
}

/// Computes `block` (rows `row0..`) from `a` and int8 panels + scales.
fn gemm_i8_rows(
    a: &[f32],
    packed: &[i8],
    scales: &[f32],
    block: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    let rows = block.len() / n;
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let panel = &packed[jp * NR * k..(jp + 1) * NR * k];
        let scale = &scales[j0..j0 + NR];
        let mut r = 0;
        while r + MR <= rows {
            micro_kernel_mr_i8(a, panel, scale, block, row0 + r, r, j0, w, k, n);
            r += MR;
        }
        while r < rows {
            micro_kernel_1_i8(a, panel, scale, block, row0 + r, r, j0, w, k, n);
            r += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// f16 micro-kernels
// ---------------------------------------------------------------------------

/// `MR×NR` f16-panel register tile: dispatches to the AVX2+F16C kernel when
/// compiled in, else the portable widen-then-FMA loop (bit-identical).
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_mr_f16(
    a: &[f32],
    panel: &[u16],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        target_feature = "f16c"
    ))]
    {
        // SAFETY: avx2+fma+f16c are compile-time target features here;
        // slice bounds are asserted by the callers' geometry.
        unsafe { micro_kernel_mr_f16_avx2(a, panel, block, a_row, c_row, j0, w, k, n) }
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        target_feature = "f16c"
    )))]
    {
        micro_kernel_mr_f16_generic(a, panel, block, a_row, c_row, j0, w, k, n)
    }
}

/// Portable `MR×NR` f16 tile: widen the panel row to f32, then the same
/// FMA chain as the f32 kernel.
#[allow(clippy::too_many_arguments)]
#[allow(dead_code)]
#[inline]
fn micro_kernel_mr_f16_generic(
    a: &[f32],
    panel: &[u16],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let rows: [&[f32]; MR] = [
        &a[a_row * k..(a_row + 1) * k],
        &a[(a_row + 1) * k..(a_row + 2) * k],
        &a[(a_row + 2) * k..(a_row + 3) * k],
        &a[(a_row + 3) * k..(a_row + 4) * k],
    ];
    let mut bk = [0.0f32; NR];
    for kk in 0..k {
        for (v, &h) in bk.iter_mut().zip(&panel[kk * NR..kk * NR + NR]) {
            *v = f16_to_f32(h);
        }
        for (accr, ar) in acc.iter_mut().zip(&rows) {
            let av = ar[kk];
            for (c, &bv) in accr.iter_mut().zip(&bk) {
                *c = fmadd(*c, av, bv);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let dst = &mut block[(c_row + r) * n + j0..(c_row + r) * n + j0 + w];
        dst.copy_from_slice(&accr[..w]);
    }
}

/// Hand-scheduled AVX2+F16C+FMA `4×16` f16 tile: two `vcvtph2ps` widenings
/// and four broadcasts per `k` step, lane-wise FMAs in the same
/// ascending-`k` order as the portable kernel — bit-identical to it
/// (f16→f32 widening is exact in both).
///
/// # Safety
///
/// Caller must guarantee avx2+fma+f16c are available (compile-time gated at
/// the call site) and the usual geometry invariants (`a` holds `MR` rows of
/// length `k` at `a_row`, `panel` holds `k·NR` halves, `block` holds the
/// target rows).
#[allow(clippy::too_many_arguments)]
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    target_feature = "f16c"
))]
#[inline]
unsafe fn micro_kernel_mr_f16_avx2(
    a: &[f32],
    panel: &[u16],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16 && MR == 4) };
    unsafe {
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        for kk in 0..k {
            let h0 = _mm_loadu_si128(pp.add(kk * NR) as *const __m128i);
            let h1 = _mm_loadu_si128(pp.add(kk * NR + 8) as *const __m128i);
            let b0 = _mm256_cvtph_ps(h0);
            let b1 = _mm256_cvtph_ps(h1);
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add((a_row + r) * k + kk));
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        store_acc(acc, block, c_row, j0, w, n);
    }
}

/// Single-row remainder of [`micro_kernel_mr_f16`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_1_f16(
    a: &[f32],
    panel: &[u16],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [0.0f32; NR];
    let ar = &a[a_row * k..(a_row + 1) * k];
    for (kk, &av) in ar.iter().enumerate() {
        for (c, &h) in acc.iter_mut().zip(&panel[kk * NR..kk * NR + NR]) {
            *c = fmadd(*c, av, f16_to_f32(h));
        }
    }
    block[c_row * n + j0..c_row * n + j0 + w].copy_from_slice(&acc[..w]);
}

// ---------------------------------------------------------------------------
// int8 micro-kernels
// ---------------------------------------------------------------------------

/// `MR×NR` int8-panel register tile: AVX2 kernel when compiled in, else the
/// portable widen-then-FMA loop (bit-identical).
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_mr_i8(
    a: &[f32],
    panel: &[i8],
    scale: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        // SAFETY: avx2+fma are compile-time target features here; slice
        // bounds are asserted by the callers' geometry.
        unsafe { micro_kernel_mr_i8_avx2(a, panel, scale, block, a_row, c_row, j0, w, k, n) }
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    {
        micro_kernel_mr_i8_generic(a, panel, scale, block, a_row, c_row, j0, w, k, n)
    }
}

/// Portable `MR×NR` int8 tile: widen the code row to f32, FMA-accumulate,
/// scale each column once after the reduction.
#[allow(clippy::too_many_arguments)]
#[allow(dead_code)]
#[inline]
fn micro_kernel_mr_i8_generic(
    a: &[f32],
    panel: &[i8],
    scale: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let rows: [&[f32]; MR] = [
        &a[a_row * k..(a_row + 1) * k],
        &a[(a_row + 1) * k..(a_row + 2) * k],
        &a[(a_row + 2) * k..(a_row + 3) * k],
        &a[(a_row + 3) * k..(a_row + 4) * k],
    ];
    let mut bk = [0.0f32; NR];
    for kk in 0..k {
        for (v, &q) in bk.iter_mut().zip(&panel[kk * NR..kk * NR + NR]) {
            *v = q as f32;
        }
        for (accr, ar) in acc.iter_mut().zip(&rows) {
            let av = ar[kk];
            for (c, &bv) in accr.iter_mut().zip(&bk) {
                *c = fmadd(*c, av, bv);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let dst = &mut block[(c_row + r) * n + j0..(c_row + r) * n + j0 + w];
        for ((d, &v), &s) in dst.iter_mut().zip(accr.iter()).zip(scale) {
            *d = v * s;
        }
    }
}

/// Hand-scheduled AVX2+FMA `4×16` int8 tile: one 16-byte load widened to
/// two f32 vectors (`vpmovsxbd` + `vcvtdq2ps`, both exact) per `k` step;
/// the column scales multiply the finished accumulators once. Bit-identical
/// to the portable kernel.
///
/// # Safety
///
/// Caller must guarantee avx2+fma are available (compile-time gated at the
/// call site) and the usual geometry invariants (`a` holds `MR` rows of
/// length `k` at `a_row`, `panel` holds `k·NR` codes, `scale` holds `NR`
/// floats, `block` holds the target rows).
#[allow(clippy::too_many_arguments)]
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
#[inline]
unsafe fn micro_kernel_mr_i8_avx2(
    a: &[f32],
    panel: &[i8],
    scale: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16 && MR == 4) };
    unsafe {
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        for kk in 0..k {
            let q = _mm_loadu_si128(pp.add(kk * NR) as *const __m128i);
            let b0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q));
            let b1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(q, 8)));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add((a_row + r) * k + kk));
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        let s0 = _mm256_loadu_ps(scale.as_ptr());
        let s1 = _mm256_loadu_ps(scale.as_ptr().add(8));
        for accr in acc.iter_mut() {
            accr[0] = _mm256_mul_ps(accr[0], s0);
            accr[1] = _mm256_mul_ps(accr[1], s1);
        }
        store_acc(acc, block, c_row, j0, w, n);
    }
}

/// Single-row remainder of [`micro_kernel_mr_i8`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_1_i8(
    a: &[f32],
    panel: &[i8],
    scale: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [0.0f32; NR];
    let ar = &a[a_row * k..(a_row + 1) * k];
    for (kk, &av) in ar.iter().enumerate() {
        for (c, &q) in acc.iter_mut().zip(&panel[kk * NR..kk * NR + NR]) {
            *c = fmadd(*c, av, q as f32);
        }
    }
    let dst = &mut block[c_row * n + j0..c_row * n + j0 + w];
    for ((d, &v), &s) in dst.iter_mut().zip(acc.iter()).zip(scale) {
        *d = v * s;
    }
}

/// Shared `MR×NR` accumulator store (full-width vector stores, scalar copy
/// for the ragged final panel).
///
/// # Safety
///
/// `block` must hold rows `c_row..c_row+MR` of an `[*, n]` matrix with the
/// `j0..j0+w` span in bounds; avx2 must be available.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
#[inline]
unsafe fn store_acc(
    acc: [[std::arch::x86_64::__m256; 2]; MR],
    block: &mut [f32],
    c_row: usize,
    j0: usize,
    w: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    unsafe {
        if w == NR {
            let cp = block.as_mut_ptr();
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(cp.add((c_row + r) * n + j0), accr[0]);
                _mm256_storeu_ps(cp.add((c_row + r) * n + j0 + 8), accr[1]);
            }
        } else {
            let mut tmp = [0.0f32; NR];
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(tmp.as_mut_ptr(), accr[0]);
                _mm256_storeu_ps(tmp.as_mut_ptr().add(8), accr[1]);
                block[(c_row + r) * n + j0..(c_row + r) * n + j0 + w].copy_from_slice(&tmp[..w]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::gemm_prepacked;

    fn random(len: usize, seed: u64) -> Vec<f32> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn f16_widening_roundtrips_exactly() {
        // Every finite f16 must roundtrip f16 → f32 → f16 unchanged: the
        // widening is exact and the narrowing of an exact value is identity.
        for h in 0u16..=0xffff {
            let exp = (h >> 10) & 0x1f;
            if exp == 31 {
                continue; // inf/nan handled below
            }
            assert_eq!(f32_to_f16(f16_to_f32(h)), h, "h={h:#06x}");
        }
        assert!(f16_to_f32(0x7c00).is_infinite());
        assert!(f16_to_f32(0xfc00).is_infinite());
        assert!(f16_to_f32(0x7e00).is_nan());
        assert!(f32_to_f16(f32::NAN) & 0x7c00 == 0x7c00);
        assert_ne!(f32_to_f16(f32::NAN) & 0x03ff, 0);
    }

    #[test]
    fn f16_narrowing_rounds_to_nearest_even() {
        // 1.0 + 2⁻¹¹ is exactly halfway between 1.0 and the next f16;
        // RNE keeps the even mantissa (1.0).
        assert_eq!(f32_to_f16(1.0 + 2f32.powi(-11)), f32_to_f16(1.0));
        // Just above the midpoint rounds up.
        assert_eq!(
            f32_to_f16(1.0 + 2f32.powi(-11) + 2f32.powi(-20)),
            f32_to_f16(1.0) + 1
        );
        // Overflow saturates to inf, underflow to zero.
        assert_eq!(f32_to_f16(1e6), 0x7c00);
        assert_eq!(f32_to_f16(-1e6), 0xfc00);
        assert_eq!(f32_to_f16(1e-10), 0);
        assert_eq!(f32_to_f16(-1e-10), 0x8000);
        // Max finite f16 survives; the first value past the rounding
        // midpoint (65520) overflows.
        assert_eq!(f16_to_f32(f32_to_f16(65504.0)), 65504.0);
        assert_eq!(f32_to_f16(65520.0), 0x7c00);
    }

    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "f16c"
    ))]
    #[test]
    fn scalar_f16_widening_matches_hardware() {
        // The scalar widening must agree with vcvtph2ps bit-for-bit for
        // every finite f16, or the SIMD and fallback kernels would diverge.
        use std::arch::x86_64::*;
        for h0 in (0u16..=0xfff8).step_by(8) {
            let hs: [u16; 8] = std::array::from_fn(|i| h0 + i as u16);
            // SAFETY: avx2+f16c are compile-time target features here.
            let hw: [f32; 8] = unsafe {
                let v = _mm256_cvtph_ps(_mm_loadu_si128(hs.as_ptr() as *const __m128i));
                let mut out = [0.0f32; 8];
                _mm256_storeu_ps(out.as_mut_ptr(), v);
                out
            };
            for (i, &h) in hs.iter().enumerate() {
                if (h >> 10) & 0x1f == 31 && h & 0x3ff != 0 {
                    assert!(hw[i].is_nan() && f16_to_f32(h).is_nan());
                } else {
                    assert_eq!(hw[i].to_bits(), f16_to_f32(h).to_bits(), "h={h:#06x}");
                }
            }
        }
    }

    #[test]
    fn f16_panel_bytes_exactly_halved() {
        for &(k, n) in &[(9, 16), (27, 64), (288, 512), (5, 3), (160, 100)] {
            assert_eq!(packed_panels_f16_len(k, n), packed_panels_len(k, n));
            assert_eq!(
                Precision::F16.packed_panel_bytes(k, n) * 2,
                Precision::F32.packed_panel_bytes(k, n),
                "{k}x{n}"
            );
            assert_eq!(
                Precision::Int8.packed_panel_bytes(k, n) * 4,
                Precision::F32.packed_panel_bytes(k, n),
                "{k}x{n}"
            );
        }
    }

    /// f32 reference on pre-quantized weights, same accumulation order.
    fn gold_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, ep: Epilogue) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        let mut packed = vec![0.0f32; packed_panels_len(k, n)];
        pack_b_panels_into(b, &mut packed, k, n);
        gemm_prepacked(a, &packed, &mut out, m, k, n, ep);
        out
    }

    #[test]
    fn f16_gemm_is_bit_identical_to_f32_on_roundtripped_weights() {
        // Widening is exact, so the f16 path must equal the f32 path run on
        // the f16-roundtripped weight matrix — bit-for-bit, epilogue and
        // ragged tiles included.
        for &(m, k, n) in &[
            (1, 7, 5),
            (4, 16, 16),
            (13, 33, 19),
            (64, 27, 96),
            (7, 9, 100),
        ] {
            let a = random(m * k, 1 + m as u64);
            let b = random(k * n, 2 + n as u64);
            let bq: Vec<f32> = b.iter().map(|&v| f16_to_f32(f32_to_f16(v))).collect();
            let bias: Vec<f32> = random(n, 3);
            let ep = Epilogue {
                bias: Some(&bias),
                scale_shift: None,
                relu: true,
            };
            let mut packed = vec![0u16; packed_panels_f16_len(k, n)];
            pack_b_panels_f16_into(&b, &mut packed, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_prepacked_f16(&a, &packed, &mut got, m, k, n, ep);
            assert_eq!(got, gold_gemm(&a, &bq, m, k, n, ep), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn i8_gemm_matches_scalar_reference_bit_for_bit() {
        for &(m, k, n) in &[(1, 4, 3), (4, 16, 16), (11, 23, 37), (64, 27, 96)] {
            let a = random(m * k, 11 + m as u64);
            let b = random(k * n, 12 + n as u64);
            let mut q = vec![0i8; packed_panels_i8_len(k, n)];
            let mut scales = vec![0.0f32; packed_scales_i8_len(n)];
            pack_b_panels_i8_into(&b, &mut q, &mut scales, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_prepacked_i8(&a, &q, &scales, &mut got, m, k, n, Epilogue::default());
            // Scalar reference: accumulate raw codes ascending-k with the
            // same fmadd, then one scale multiply — the kernel contract.
            for i in 0..m {
                for j in 0..n {
                    let jp = j / NR;
                    let jo = j % NR;
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        let code = q[jp * NR * k + kk * NR + jo] as f32;
                        acc = fmadd(acc, a[i * k + kk], code);
                    }
                    let want = acc * scales[j];
                    assert_eq!(got[i * n + j], want, "{m}x{k}x{n} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn i8_quantization_error_is_bounded() {
        let (m, k, n) = (8, 64, 48);
        let a = random(m * k, 21);
        let b = random(k * n, 22);
        let mut q = vec![0i8; packed_panels_i8_len(k, n)];
        let mut scales = vec![0.0f32; packed_scales_i8_len(n)];
        pack_b_panels_i8_into(&b, &mut q, &mut scales, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_prepacked_i8(&a, &q, &scales, &mut got, m, k, n, Epilogue::default());
        let want = gold_gemm(&a, &b, m, k, n, Epilogue::default());
        let amax = want.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
        for (g, w) in got.iter().zip(&want) {
            // Symmetric 8-bit weight quantization at K=64: error well under
            // 1% of the output range.
            assert!((g - w).abs() <= 0.01 * amax + 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn lowp_results_identical_across_thread_counts() {
        use crate::parallel::set_threads;
        let (m, k, n) = (96, 41, 77);
        let a = random(m * k, 31);
        let b = random(k * n, 32);
        let mut p16 = vec![0u16; packed_panels_f16_len(k, n)];
        pack_b_panels_f16_into(&b, &mut p16, k, n);
        let mut q = vec![0i8; packed_panels_i8_len(k, n)];
        let mut scales = vec![0.0f32; packed_scales_i8_len(n)];
        pack_b_panels_i8_into(&b, &mut q, &mut scales, k, n);
        set_threads(1);
        let mut gold16 = vec![0.0f32; m * n];
        gemm_prepacked_f16(&a, &p16, &mut gold16, m, k, n, Epilogue::default());
        let mut gold8 = vec![0.0f32; m * n];
        gemm_prepacked_i8(&a, &q, &scales, &mut gold8, m, k, n, Epilogue::default());
        for t in 2..=8 {
            set_threads(t);
            let mut o16 = vec![0.0f32; m * n];
            gemm_prepacked_f16(&a, &p16, &mut o16, m, k, n, Epilogue::default());
            assert_eq!(o16, gold16, "f16 thread count {t}");
            let mut o8 = vec![0.0f32; m * n];
            gemm_prepacked_i8(&a, &q, &scales, &mut o8, m, k, n, Epilogue::default());
            assert_eq!(o8, gold8, "i8 thread count {t}");
        }
        set_threads(0);
    }

    #[test]
    fn packed_panels_wrapper_dispatches_every_precision() {
        let (m, k, n) = (12, 18, 20);
        let a = random(m * k, 41);
        let b = random(k * n, 42);
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            let panels = PackedPanels::pack(p, &b, k, n);
            assert_eq!(panels.precision(), p);
            assert!(panels.bytes() > 0);
            let mut out = vec![0.0f32; m * n];
            panels.gemm(&a, &mut out, m, k, n, Epilogue::default());
            let want = gold_gemm(&a, &b, m, k, n, Epilogue::default());
            let amax = want.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
            for (g, w) in out.iter().zip(&want) {
                assert!((g - w).abs() <= 0.02 * amax + 1e-4, "{p:?}: {g} vs {w}");
            }
        }
        // Bytes ordering: f32 > f16 > int8 panels (+ scales still smaller).
        let b32 = PackedPanels::pack(Precision::F32, &b, k, n).bytes();
        let b16 = PackedPanels::pack(Precision::F16, &b, k, n).bytes();
        let b8 = PackedPanels::pack(Precision::Int8, &b, k, n).bytes();
        assert_eq!(b16 * 2, b32);
        assert!(b8 < b16);
    }

    #[test]
    fn zero_k_and_empty_shapes_are_safe() {
        let ep = Epilogue::default();
        let mut out = vec![1.0f32; 6];
        gemm_prepacked_f16(&[], &[], &mut out, 3, 0, 2, ep);
        assert!(out.iter().all(|&v| v == 0.0));
        let mut out8 = vec![1.0f32; 6];
        gemm_prepacked_i8(&[], &[], &[0.0; 16], &mut out8, 3, 0, 2, ep);
        assert!(out8.iter().all(|&v| v == 0.0));
    }
}
