//! Reduced-precision packed weight panels: f16 and int8 variants of the
//! prepacked GEMM path.
//!
//! Edge parts are panel-bound: the batched GEMM streams every packed weight
//! panel through cache once per batch, so the panel byte volume — not the
//! FLOPs — is what limits throughput once the weight set outgrows the LLC.
//! Storing panels at half (f16) or quarter (int8 + per-column scale)
//! precision shrinks that streamed set 2–4× while keeping **all arithmetic
//! in f32**: the micro-kernels widen each panel element back to f32 in
//! registers (`vcvtph2ps` / `vpmovsxbd + vcvtdq2ps` on AVX2 targets, exact
//! scalar widenings elsewhere) and accumulate with the same fused
//! multiply-add chain as the f32 kernels.
//!
//! # Numerics and determinism
//!
//! Widening f16→f32 and i8→f32 is **exact**, so the SIMD and scalar kernels
//! see bit-identical panel values and — accumulating in the same
//! ascending-`k` order as every other GEMM path — produce bit-identical
//! outputs for any thread count. The only rounding happens once, at *pack*
//! time (f32→f16 round-to-nearest-even; int8 symmetric per-column
//! quantization), which is why a reduced-precision network is deterministic
//! run-to-run even though it differs from the f32 network by the weight
//! quantization error.
//!
//! The int8 kernel is dequant-free in its inner loop: it accumulates
//! `Σₖ aₖ·qₖⱼ` with the raw (widened) integer codes and applies the column
//! scale once per output element after the reduction, so quantization adds
//! one multiply per output, not one per multiply-add.
//!
//! # Whole-int8 quantization scheme ([`Precision::Int8Act`])
//!
//! The [`gemm_prepacked_i8i8`] path quantizes *both* operands so the inner
//! loop is pure integer arithmetic (`vpmaddubsw` + `vpmaddwd` on AVX2):
//!
//! - **Activations** are quantized dynamically, per row (per frame for the
//!   conv layers), to **asymmetric u8**: the row range is widened to
//!   include 0 (`lo = min(0, min aᵢ)`, `hi = max(0, max aᵢ)`), then
//!   `scale = (hi − lo)/255`, `zp = round(−lo/scale)` clamped to `[0, 255]`
//!   and `q = clamp(round(a/scale) + zp, 0, 255)`. Asymmetry matters
//!   because post-ReLU maps are one-sided — a symmetric scheme would waste
//!   half the code range; forcing 0 into the range makes `a = 0` encode
//!   exactly to `zp`, so SAME-padding contributes exactly zero. See
//!   [`quantize_a_rows_into`].
//! - **Weights** are quantized at pack time to **symmetric s8 with one
//!   scale per `group_size` rows of K per column** (`scale = max|group|/63`,
//!   all-zero groups get scale 1.0), quad-interleaved for the SIMD kernel.
//!   Grouping along K bounds the quantization error by the local — not
//!   global — column range, which is what buys back the bit spent on the
//!   `[-63, 63]` code range (see below). See [`pack_b_panels_i8i8_into`].
//! - **Accumulation is i32**, exactly: per `k`-quad the kernel computes
//!   `sat16(a₀w₀ + a₁w₁) + sat16(a₂w₂ + a₃w₃)` (the `vpmaddubsw`
//!   saturating-pair contract, emulated bit-for-bit by the scalar
//!   fallback) and adds it into per-group i32 accumulators. Weight codes
//!   are clamped to `[-63, 63]` precisely so that contract can never
//!   actually clip (`255·63·2 = 32130 < 2¹⁵`): the u8×s8 pair sum always
//!   fits i16, making the SIMD instruction exact integer arithmetic.
//!   Integer adds are order-independent, so the result is bit-identical
//!   for any thread count, shard width, or batch size.
//! - **Dequantization is fused, once per group**: the zero-point is folded
//!   via precomputed per-(group, column) weight-code sums
//!   (`Σ(q−zp)·w = Σq·w − zp·Σw`), the compensated i32 converts exactly to
//!   f32 and FMA-accumulates with the group's weight scale, and the row's
//!   activation scale multiplies the finished sum — which then feeds the
//!   ordinary f32 [`Epilogue`] (bias / BN / ReLU), unchanged.

use crate::matmul::{check_gemm_args, fmadd, Epilogue, MIN_ELEMS_FOR_THREADS, MR, NR};
use crate::matmul::{pack_b_panels_into, packed_panels_len};
use crate::parallel::{parallel_row_blocks_mut, threads};

/// Storage precision for prepacked weight panels.
///
/// Activations, accumulation, and epilogues are always f32; this selects
/// only how the static weight panels are stored (and therefore how many
/// bytes stream through cache per GEMM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full-precision panels — the bit-exact baseline path.
    #[default]
    F32,
    /// Half-precision (IEEE binary16) panels, widened to f32 in registers.
    /// Halves panel bytes; weights round once at pack time.
    F16,
    /// Symmetric int8 panels with one f32 scale per output column,
    /// widened to f32 in registers and scaled after the reduction.
    /// Quarters panel bytes (plus a 4·N-byte scale vector).
    Int8,
    /// Whole-int8: symmetric s8 panels with per-`K`-group scales *and*
    /// dynamically quantized asymmetric u8 activations, accumulated in i32
    /// (`vpmaddubsw`/`vpmaddwd` on AVX2) with one fused dequant per group.
    /// Quarters panel bytes and replaces the f32 FMA chain with integer
    /// arithmetic — the deepest precision rung.
    Int8Act,
}

impl Precision {
    /// Short lowercase label (`"f32"`, `"f16"`, `"int8"`) for bench rows
    /// and logs.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
            Precision::Int8Act => "int8act",
        }
    }

    /// Bytes of the packed panel array for a `[K, N]` weight matrix at this
    /// precision, **excluding** the int8 scale vector (which is
    /// `4·ceil(N/NR)·NR` bytes on top). F16 is exactly half of F32; Int8 is
    /// exactly a quarter.
    pub fn packed_panel_bytes(self, k: usize, n: usize) -> usize {
        match self {
            Precision::F32 => packed_panels_len(k, n) * 4,
            Precision::F16 => packed_panels_f16_len(k, n) * 2,
            Precision::Int8 => packed_panels_i8_len(k, n),
            Precision::Int8Act => packed_panels_i8i8_len(k, n),
        }
    }
}

// ---------------------------------------------------------------------------
// f16 conversion
// ---------------------------------------------------------------------------

/// Converts an f32 to IEEE binary16 with round-to-nearest-even — the same
/// rounding `vcvtps2ph` uses, implemented in software so packing behaves
/// identically on every target. Overflow saturates to ±inf; NaN stays NaN.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 255 {
        // Inf / NaN: keep NaN-ness (set a mantissa bit if the payload's top
        // bits vanish in the narrowing).
        return if man == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7c00 | 0x0200 | ((man >> 13) as u16 & 0x03ff)
        };
    }
    let exp = exp - 127;
    if exp >= 16 {
        return sign | 0x7c00; // overflow → inf
    }
    if exp >= -14 {
        // Normal range: round 23-bit mantissa to 10 bits.
        let mut m = man >> 13;
        let rem = man & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let mut e = (exp + 15) as u32;
        if m == 0x400 {
            m = 0;
            e += 1;
            if e >= 31 {
                return sign | 0x7c00;
            }
        }
        return sign | ((e as u16) << 10) | m as u16;
    }
    if exp >= -25 {
        // Subnormal: shift the full 24-bit significand into place.
        let full = 0x0080_0000 | man;
        let shift = (13 - 14 - exp) as u32; // 13 + (-14 - exp)
        let mut m = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1;
        }
        // Rounding up out of the subnormal range lands on 0x400 — exactly
        // the encoding of the smallest normal, so no special case.
        return sign | m as u16;
    }
    sign // underflows to (signed) zero
}

/// Converts an IEEE binary16 to f32 — an **exact** widening (every f16
/// value, including subnormals, is representable in f32), so the scalar
/// path and `vcvtph2ps` agree bit-for-bit.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h as u32) & 0x03ff;
    let bits = match exp {
        0 => {
            if man == 0 {
                sign
            } else {
                // Subnormal: man · 2⁻²⁴, exact as an f32 product.
                let v = man as f32 * f32::from_bits(0x3380_0000);
                return f32::from_bits(v.to_bits() | sign);
            }
        }
        31 => sign | 0x7f80_0000 | (man << 13),
        _ => sign | ((exp + 112) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Length (in `u16` elements) of the panel buffer
/// [`pack_b_panels_f16_into`] needs for a `[K, N]` matrix — the same
/// element count as the f32 layout, at half the bytes.
pub fn packed_panels_f16_len(k: usize, n: usize) -> usize {
    packed_panels_len(k, n)
}

/// Length (in `i8` elements) of the panel buffer [`pack_b_panels_i8_into`]
/// needs for a `[K, N]` matrix — the same element count as the f32 layout,
/// at a quarter of the bytes.
pub fn packed_panels_i8_len(k: usize, n: usize) -> usize {
    packed_panels_len(k, n)
}

/// Length of the per-column scale vector [`pack_b_panels_i8_into`] needs:
/// `N` rounded up to whole `NR`-wide panels, so the micro-kernel can load
/// full scale vectors without a ragged tail.
pub fn packed_scales_i8_len(n: usize) -> usize {
    n.div_ceil(NR) * NR
}

/// Packs a row-major `[K, N]` matrix into f16 micro-kernel panels (the
/// layout of [`pack_b_panels_into`], elements narrowed to binary16 with
/// round-to-nearest-even).
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions.
pub fn pack_b_panels_f16_into(b: &[f32], packed: &mut [u16], k: usize, n: usize) {
    assert_eq!(b.len(), k * n, "pack B buffer");
    assert_eq!(packed.len(), packed_panels_f16_len(k, n), "pack f16 output");
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let dst = &mut packed[jp * NR * k..(jp + 1) * NR * k];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            let cell = &mut dst[kk * NR..kk * NR + NR];
            for (c, &v) in cell[..w].iter_mut().zip(src) {
                *c = f32_to_f16(v);
            }
            cell[w..].fill(0);
        }
    }
}

/// Packs a row-major `[K, N]` matrix into symmetric int8 micro-kernel
/// panels with one f32 scale per column: `scale[j] = max|B[:,j]| / 127`,
/// `q = round(B / scale)` clamped to `[-127, 127]`. An all-zero column gets
/// scale **1.0** (its codes are all zero, so the dequantized column is
/// still exactly zero — a 0.0 scale would instead poison any epilogue math
/// that divides by it and produces denormals downstream). Padded columns
/// likewise get zero codes and scale 1.0.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions.
pub fn pack_b_panels_i8_into(b: &[f32], packed: &mut [i8], scales: &mut [f32], k: usize, n: usize) {
    assert_eq!(b.len(), k * n, "pack B buffer");
    assert_eq!(packed.len(), packed_panels_i8_len(k, n), "pack i8 output");
    assert_eq!(scales.len(), packed_scales_i8_len(n), "pack i8 scales");
    scales.fill(1.0);
    // Per-column symmetric range.
    let mut inv = vec![0.0f32; n];
    for (j, inv_j) in inv.iter_mut().enumerate() {
        let mut amax = 0.0f32;
        for kk in 0..k {
            amax = amax.max(b[kk * n + j].abs());
        }
        if amax > 0.0 {
            scales[j] = amax / 127.0;
            *inv_j = 127.0 / amax;
        }
    }
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let dst = &mut packed[jp * NR * k..(jp + 1) * NR * k];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            let cell = &mut dst[kk * NR..kk * NR + NR];
            for ((c, &v), &iv) in cell[..w].iter_mut().zip(src).zip(&inv[j0..j0 + w]) {
                *c = (v * iv).round().clamp(-127.0, 127.0) as i8;
            }
            cell[w..].fill(0);
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-int8 packing (u8 activations × s8 weights)
// ---------------------------------------------------------------------------

/// Default K-group size for per-group weight scales on the whole-int8 path
/// (must be a multiple of 4, the `vpmaddubsw` quad width). 64 keeps the
/// group-local range tight on MobileNet fan-ins while adding only one fused
/// dequant per 16 k-quads.
pub const I8I8_GROUP_SIZE: usize = 64;

/// K rounded up to whole `vpmaddubsw` quads — the row stride of quantized
/// activation buffers and the packed K extent of i8i8 panels.
#[inline]
pub fn i8i8_padded_k(k: usize) -> usize {
    k.next_multiple_of(4)
}

/// Number of K-groups the i8i8 pack splits `k` into at `group_size`.
#[inline]
pub fn i8i8_groups(k: usize, group_size: usize) -> usize {
    i8i8_padded_k(k).div_ceil(group_size)
}

/// Length (in `i8` elements) of the panel buffer
/// [`pack_b_panels_i8i8_into`] needs for a `[K, N]` matrix: the f32 panel
/// element count with K padded to whole quads.
pub fn packed_panels_i8i8_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * i8i8_padded_k(k)
}

/// Length of the per-(K-group, column) scale and column-sum vectors
/// [`pack_b_panels_i8i8_into`] needs: one entry per group per column,
/// columns padded to whole `NR`-wide panels.
pub fn packed_scales_i8i8_len(k: usize, n: usize, group_size: usize) -> usize {
    i8i8_groups(k, group_size) * packed_scales_i8_len(n)
}

/// Packs a row-major `[K, N]` matrix into **quad-interleaved** symmetric
/// int8 panels for the whole-int8 kernel, with one scale *per `group_size`
/// rows of K per column* (`scale = max|group|/63`, codes clamped to
/// `[-63, 63]` so the `vpmaddubsw` pair sum can never saturate — see the
/// module docs) and precomputed per-(group, column) i32 sums of the weight
/// codes (the zero-point compensation term).
///
/// Panel layout: panel `jp` holds `ceil(K/4)` quads of `NR × 4` bytes; the
/// byte at `quad·NR·4 + jo·4 + t` is column `jp·NR + jo`, row `4·quad + t`
/// — so one 32-byte SIMD load covers 8 columns × 4 K-rows, exactly the
/// shape `vpmaddubsw` consumes against a broadcast activation quad. K-rows
/// past `K` and columns past `N` pack as zero codes; all-zero (or padded)
/// group-columns get scale 1.0, and the column sums include only real rows
/// (padded codes are zero, so they drop out of both the dot product and
/// the compensation).
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions, or `group_size`
/// is not a positive multiple of 4.
pub fn pack_b_panels_i8i8_into(
    b: &[f32],
    packed: &mut [i8],
    scales: &mut [f32],
    colsums: &mut [i32],
    k: usize,
    n: usize,
    group_size: usize,
) {
    assert!(
        group_size > 0 && group_size.is_multiple_of(4),
        "i8i8 group size must be a positive multiple of 4"
    );
    assert_eq!(b.len(), k * n, "pack B buffer");
    assert_eq!(
        packed.len(),
        packed_panels_i8i8_len(k, n),
        "pack i8i8 output"
    );
    let gl = packed_scales_i8i8_len(k, n, group_size);
    assert_eq!(scales.len(), gl, "pack i8i8 scales");
    assert_eq!(colsums.len(), gl, "pack i8i8 column sums");
    scales.fill(1.0);
    colsums.fill(0);
    packed.fill(0);
    let kp = i8i8_padded_k(k);
    let np = packed_scales_i8_len(n);
    let groups = i8i8_groups(k, group_size);
    for g in 0..groups {
        let k0 = g * group_size;
        let k1 = (k0 + group_size).min(k);
        for j in 0..n {
            let mut amax = 0.0f32;
            for kk in k0..k1 {
                amax = amax.max(b[kk * n + j].abs());
            }
            if amax > 0.0 {
                scales[g * np + j] = amax / 63.0;
            }
        }
    }
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let dst = &mut packed[jp * NR * kp..(jp + 1) * NR * kp];
        for kk in 0..k {
            let g = kk / group_size;
            let quad = kk / 4;
            let t = kk % 4;
            for jo in 0..w {
                let j = j0 + jo;
                let s = scales[g * np + j];
                let q = (b[kk * n + j] / s).round().clamp(-63.0, 63.0) as i8;
                dst[quad * NR * 4 + jo * 4 + t] = q;
                colsums[g * np + j] += q as i32;
            }
        }
    }
}

/// Dynamically quantizes `m` rows of `k` f32 activations to asymmetric u8
/// with one `(scale, zero_point)` pair per row — the A-side of
/// [`gemm_prepacked_i8i8`]. Each output row is `i8i8_padded_k(k)` bytes
/// (quad-padded with zeros; padded weight codes are also zero, so the pad
/// contributes nothing).
///
/// The row range is widened to include 0, so `a = 0.0` encodes exactly to
/// the zero point and post-ReLU rows use the full `[0, 255]` code range
/// (see the module docs). A constant-zero row gets scale 1.0, zero point 0.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions.
pub fn quantize_a_rows_into(
    a: &[f32],
    q: &mut [u8],
    scales: &mut [f32],
    zps: &mut [u8],
    m: usize,
    k: usize,
) {
    let kp = i8i8_padded_k(k);
    assert_eq!(a.len(), m * k, "quantize A buffer");
    assert_eq!(q.len(), m * kp, "quantize A codes");
    assert_eq!(scales.len(), m, "quantize A scales");
    assert_eq!(zps.len(), m, "quantize A zero-points");
    for i in 0..m {
        let row = &a[i * k..(i + 1) * k];
        let (scale, zp) = row_qparams(row);
        scales[i] = scale;
        zps[i] = zp;
        let dst = &mut q[i * kp..(i + 1) * kp];
        quantize_row(row, scale, zp, dst);
    }
}

/// Quantizes one flat f32 slice to asymmetric u8 with a single
/// `(scale, zero_point)` pair — the per-frame variant the conv layers use
/// to quantize an input feature map once, before the u8 im2col gather
/// (`q.len() == x.len()`, no quad padding; the im2col pads rows instead).
pub fn quantize_map_u8_into(x: &[f32], q: &mut [u8]) -> (f32, u8) {
    assert_eq!(x.len(), q.len(), "quantize map buffer");
    let (scale, zp) = row_qparams(x);
    quantize_row(x, scale, zp, q);
    (scale, zp)
}

/// Asymmetric u8 quantization parameters for a slice, range widened to
/// include 0 (so zero encodes exactly and one-sided ReLU ranges keep the
/// full code space).
///
/// The range scan runs as an 8-lane `vminps`/`vmaxps` sweep (the naive
/// fold is a serial `maxss` dependency chain, and this pass runs over
/// every feature map on the whole-int8 path); min/max are associative and
/// commutative and maps hold no NaNs, so the lane split and the scalar
/// fallback agree on every input either path ever sees.
fn row_qparams(row: &[f32]) -> (f32, u8) {
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    // SAFETY: avx2 is a compile-time target feature here.
    let (lo, hi) = unsafe { minmax_avx2(row) };
    #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
    let (lo, hi) = minmax_generic(row);
    if hi <= lo {
        return (1.0, 0);
    }
    let scale = (hi - lo) / 255.0;
    let zp = (-lo / scale).round().clamp(0.0, 255.0) as u8;
    (scale, zp)
}

/// Portable min/max sweep with 8 independent lanes, seeded at 0.0 (the
/// range always includes zero — see [`row_qparams`]).
#[allow(dead_code)]
fn minmax_generic(row: &[f32]) -> (f32, f32) {
    const L: usize = 8;
    let mut lo_v = [0.0f32; L];
    let mut hi_v = [0.0f32; L];
    let mut chunks = row.chunks_exact(L);
    for c in chunks.by_ref() {
        for i in 0..L {
            lo_v[i] = lo_v[i].min(c[i]);
            hi_v[i] = hi_v[i].max(c[i]);
        }
    }
    let mut lo = 0.0f32;
    let mut hi = 0.0f32;
    for i in 0..L {
        lo = lo.min(lo_v[i]);
        hi = hi.max(hi_v[i]);
    }
    for &v in chunks.remainder() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// AVX2 min/max sweep: 8-lane `vminps`/`vmaxps` accumulators seeded at
/// 0.0, horizontal reduce, scalar tail. Identical to [`minmax_generic`]
/// for all finite inputs.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
unsafe fn minmax_avx2(row: &[f32]) -> (f32, f32) {
    use std::arch::x86_64::*;
    unsafe {
        let mut lo_v = _mm256_setzero_ps();
        let mut hi_v = _mm256_setzero_ps();
        let mut chunks = row.chunks_exact(8);
        for c in chunks.by_ref() {
            let v = _mm256_loadu_ps(c.as_ptr());
            lo_v = _mm256_min_ps(lo_v, v);
            hi_v = _mm256_max_ps(hi_v, v);
        }
        let mut lo_a = [0.0f32; 8];
        let mut hi_a = [0.0f32; 8];
        _mm256_storeu_ps(lo_a.as_mut_ptr(), lo_v);
        _mm256_storeu_ps(hi_a.as_mut_ptr(), hi_v);
        let mut lo = 0.0f32;
        let mut hi = 0.0f32;
        for i in 0..8 {
            lo = lo.min(lo_a[i]);
            hi = hi.max(hi_a[i]);
        }
        for &v in chunks.remainder() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }
}

/// Encodes `row` into `dst` with the given parameters; bytes past
/// `row.len()` (the quad pad) are zeroed.
///
/// The encode loop must vectorize — it runs over every feature map on the
/// whole-int8 path, and the obvious `(v / scale).round()` form was costing
/// as much as the integer GEMM it feeds (per-element division plus the
/// multi-op round-half-away-from-zero lowering). So: the division hoists
/// into one reciprocal, and ties round to even (`vroundps`'s native mode,
/// a single instruction). A tie needs `v·inv` to land exactly on ±x.5,
/// which moves that code by at most one step — well inside the scheme's
/// half-step error bound either way.
fn quantize_row(row: &[f32], scale: f32, zp: u8, dst: &mut [u8]) {
    let inv = 1.0 / scale;
    let zpf = f32::from(zp);
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    // SAFETY: avx2 is a compile-time target feature here; dst holds at
    // least row.len() bytes (asserted by every caller's geometry).
    unsafe {
        quantize_row_avx2(row, inv, zpf, dst);
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
    quantize_row_generic(row, inv, zpf, dst);
    dst[row.len()..].fill(0);
}

/// Portable encode loop — one code per element, ties to even.
#[allow(dead_code)]
#[inline]
fn quantize_row_generic(row: &[f32], inv: f32, zpf: f32, dst: &mut [u8]) {
    for (d, &v) in dst.iter_mut().zip(row) {
        *d = ((v * inv).round_ties_even() + zpf).clamp(0.0, 255.0) as u8;
    }
}

/// AVX2 encode: 16 codes per step — two 8-lane `mul`/`vroundps`(nearest-
/// even)/`add`/`max`/`min` pipelines, exact `vcvtps2dq` (the values are
/// integral in `[0, 255]` after the clamp), and a `packus` pair down to
/// 16 u8. Bit-identical to [`quantize_row_generic`]: same op order, and
/// every step is the single-instruction semantics the scalar ops define.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
unsafe fn quantize_row_avx2(row: &[f32], inv: f32, zpf: f32, dst: &mut [u8]) {
    use std::arch::x86_64::*;
    unsafe {
        let inv8 = _mm256_set1_ps(inv);
        let zp8 = _mm256_set1_ps(zpf);
        let zero = _mm256_setzero_ps();
        let top = _mm256_set1_ps(255.0);
        let n16 = row.len() / 16 * 16;
        for (i, o) in (0..n16).step_by(16).enumerate() {
            let mut q = [_mm256_setzero_si256(); 2];
            for (h, qh) in q.iter_mut().enumerate() {
                let v = _mm256_loadu_ps(row.as_ptr().add(o + 8 * h));
                let r = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(
                    _mm256_mul_ps(v, inv8),
                );
                let c = _mm256_min_ps(_mm256_max_ps(_mm256_add_ps(r, zp8), zero), top);
                *qh = _mm256_cvtps_epi32(c);
            }
            let p = _mm256_permute4x64_epi64::<0xD8>(_mm256_packus_epi32(q[0], q[1]));
            let b = _mm_packus_epi16(_mm256_castsi256_si128(p), _mm256_extracti128_si256::<1>(p));
            _mm_storeu_si128(dst.as_mut_ptr().add(16 * i).cast(), b);
        }
        quantize_row_generic(&row[n16..], inv, zpf, &mut dst[n16..row.len()]);
    }
}

// ---------------------------------------------------------------------------
// GEMM drivers
// ---------------------------------------------------------------------------

/// [`crate::gemm_prepacked`] against f16 panels (see
/// [`pack_b_panels_f16_into`]): panel elements widen to f32 in registers and
/// accumulate in f32, in the same ascending-`k` order as the f32 kernels —
/// bit-identical to running the f32 path on the f16-roundtripped weights,
/// for any thread count.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions, or an epilogue
/// slice is shorter than `n`.
pub fn gemm_prepacked_f16(
    a: &[f32],
    packed_b: &[u16],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    assert_eq!(
        packed_b.len(),
        packed_panels_f16_len(k, n),
        "gemm packed-f16 B buffer"
    );
    check_gemm_args(a, out, m, k, n, &ep);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        ep.apply(out, n);
        return;
    }
    let t = if m * n >= MIN_ELEMS_FOR_THREADS {
        threads()
    } else {
        1
    };
    parallel_row_blocks_mut(out, n, t, |row0, block| {
        gemm_f16_rows(a, packed_b, block, row0, k, n);
        ep.apply(block, n);
    });
}

/// [`crate::gemm_prepacked`] against int8 panels + per-column scales (see
/// [`pack_b_panels_i8_into`]): the inner loop accumulates the raw widened
/// codes in f32 and the column scale is applied once per output element
/// after the reduction (dequant-free accumulation). Deterministic for any
/// thread count.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions, or an epilogue
/// slice is shorter than `n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_prepacked_i8(
    a: &[f32],
    packed_b: &[i8],
    scales: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    assert_eq!(
        packed_b.len(),
        packed_panels_i8_len(k, n),
        "gemm packed-i8 B buffer"
    );
    assert_eq!(scales.len(), packed_scales_i8_len(n), "gemm i8 scales");
    check_gemm_args(a, out, m, k, n, &ep);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        ep.apply(out, n);
        return;
    }
    let t = if m * n >= MIN_ELEMS_FOR_THREADS {
        threads()
    } else {
        1
    };
    parallel_row_blocks_mut(out, n, t, |row0, block| {
        gemm_i8_rows(a, packed_b, scales, block, row0, k, n);
        ep.apply(block, n);
    });
}

/// Whole-int8 prepacked GEMM: asymmetric u8 activation codes (see
/// [`quantize_a_rows_into`]) against quad-interleaved s8 panels with
/// per-K-group scales and column sums (see [`pack_b_panels_i8i8_into`]).
///
/// The inner loop is pure integer arithmetic under the `vpmaddubsw`
/// saturating-pair contract (module docs), accumulated in i32 per group;
/// dequantization fuses once per group (zero-point compensation + group
/// scale, FMA into the f32 accumulator) and the row's activation scale
/// multiplies the finished sum before the f32 `Epilogue` runs. The AVX2
/// and scalar paths are bit-identical, and i32 accumulation makes the
/// result independent of thread count.
///
/// # Panics
///
/// Panics if buffer lengths disagree with the dimensions, `group_size` is
/// not a positive multiple of 4, or an epilogue slice is shorter than `n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_prepacked_i8i8(
    aq: &[u8],
    a_scales: &[f32],
    a_zps: &[u8],
    packed_b: &[i8],
    b_scales: &[f32],
    colsums: &[i32],
    group_size: usize,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    ep: Epilogue,
) {
    assert!(
        group_size > 0 && group_size.is_multiple_of(4),
        "i8i8 group size must be a positive multiple of 4"
    );
    assert_eq!(aq.len(), m * i8i8_padded_k(k), "gemm i8i8 A codes");
    assert_eq!(a_scales.len(), m, "gemm i8i8 A scales");
    assert_eq!(a_zps.len(), m, "gemm i8i8 A zero-points");
    assert_eq!(
        packed_b.len(),
        packed_panels_i8i8_len(k, n),
        "gemm packed-i8i8 B buffer"
    );
    let gl = packed_scales_i8i8_len(k, n, group_size);
    assert_eq!(b_scales.len(), gl, "gemm i8i8 B scales");
    assert_eq!(colsums.len(), gl, "gemm i8i8 B column sums");
    assert_eq!(out.len(), m * n, "gemm out buffer");
    if let Some(bias) = ep.bias {
        assert!(bias.len() >= n, "epilogue bias");
    }
    if let Some((sc, sh)) = ep.scale_shift {
        assert!(sc.len() >= n && sh.len() >= n, "epilogue scale/shift");
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        ep.apply(out, n);
        return;
    }
    let t = if m * n >= MIN_ELEMS_FOR_THREADS {
        threads()
    } else {
        1
    };
    parallel_row_blocks_mut(out, n, t, |row0, block| {
        gemm_i8i8_rows(
            aq, a_scales, a_zps, packed_b, b_scales, colsums, group_size, block, row0, k, n,
        );
        ep.apply(block, n);
    });
}

/// Weight panels prepacked at a chosen [`Precision`], with the matching
/// GEMM dispatch — the storage type layers keep behind their precision
/// knob so the forward path stays a single call.
#[derive(Debug, Clone)]
pub enum PackedPanels {
    /// Full-precision panels ([`pack_b_panels_into`]).
    F32(Vec<f32>),
    /// Half-precision panels ([`pack_b_panels_f16_into`]).
    F16(Vec<u16>),
    /// Int8 panels with per-column scales ([`pack_b_panels_i8_into`]).
    Int8 {
        /// Quantized panel elements.
        q: Vec<i8>,
        /// Per-column dequantization scales (padded to whole panels).
        scales: Vec<f32>,
    },
    /// Whole-int8 quad-interleaved panels with per-K-group scales and
    /// zero-point-compensation column sums ([`pack_b_panels_i8i8_into`],
    /// group size [`I8I8_GROUP_SIZE`]); activations quantize dynamically
    /// per row at dispatch time.
    Int8Act {
        /// Quantized, quad-interleaved panel elements.
        q: Vec<i8>,
        /// Per-(K-group, column) dequantization scales.
        scales: Vec<f32>,
        /// Per-(K-group, column) sums of the weight codes.
        colsums: Vec<i32>,
    },
}

thread_local! {
    /// Per-thread scratch for the dispatch-time activation quantization of
    /// the [`PackedPanels::Int8Act`] path: (codes, row scales, row zps).
    static QA_BUF: std::cell::RefCell<(Vec<u8>, Vec<f32>, Vec<u8>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

impl PackedPanels {
    /// An empty pack of the given precision (repack before use).
    pub fn empty(precision: Precision) -> Self {
        match precision {
            Precision::F32 => PackedPanels::F32(Vec::new()),
            Precision::F16 => PackedPanels::F16(Vec::new()),
            Precision::Int8 => PackedPanels::Int8 {
                q: Vec::new(),
                scales: Vec::new(),
            },
            Precision::Int8Act => PackedPanels::Int8Act {
                q: Vec::new(),
                scales: Vec::new(),
                colsums: Vec::new(),
            },
        }
    }

    /// Packs a row-major `[K, N]` matrix at the given precision.
    pub fn pack(precision: Precision, b: &[f32], k: usize, n: usize) -> Self {
        let mut p = Self::empty(precision);
        p.repack(b, k, n);
        p
    }

    /// Re-packs in place (reusing the buffers), keeping the precision.
    pub fn repack(&mut self, b: &[f32], k: usize, n: usize) {
        match self {
            PackedPanels::F32(buf) => {
                buf.resize(packed_panels_len(k, n), 0.0);
                pack_b_panels_into(b, buf, k, n);
            }
            PackedPanels::F16(buf) => {
                buf.resize(packed_panels_f16_len(k, n), 0);
                pack_b_panels_f16_into(b, buf, k, n);
            }
            PackedPanels::Int8 { q, scales } => {
                q.resize(packed_panels_i8_len(k, n), 0);
                scales.resize(packed_scales_i8_len(n), 0.0);
                pack_b_panels_i8_into(b, q, scales, k, n);
            }
            PackedPanels::Int8Act { q, scales, colsums } => {
                let gl = packed_scales_i8i8_len(k, n, I8I8_GROUP_SIZE);
                q.resize(packed_panels_i8i8_len(k, n), 0);
                scales.resize(gl, 0.0);
                colsums.resize(gl, 0);
                pack_b_panels_i8i8_into(b, q, scales, colsums, k, n, I8I8_GROUP_SIZE);
            }
        }
    }

    /// The precision the panels are stored at.
    pub fn precision(&self) -> Precision {
        match self {
            PackedPanels::F32(_) => Precision::F32,
            PackedPanels::F16(_) => Precision::F16,
            PackedPanels::Int8 { .. } => Precision::Int8,
            PackedPanels::Int8Act { .. } => Precision::Int8Act,
        }
    }

    /// Bytes held by the packed representation (panels + any scales).
    pub fn bytes(&self) -> usize {
        match self {
            PackedPanels::F32(buf) => buf.len() * 4,
            PackedPanels::F16(buf) => buf.len() * 2,
            PackedPanels::Int8 { q, scales } => q.len() + scales.len() * 4,
            PackedPanels::Int8Act { q, scales, colsums } => {
                q.len() + scales.len() * 4 + colsums.len() * 4
            }
        }
    }

    /// Runs the prepacked GEMM matching the storage precision.
    ///
    /// # Panics
    ///
    /// Panics if the pack does not match the `[K, N]` geometry (pack and
    /// call must agree), or on any [`crate::gemm_prepacked`] shape mismatch.
    pub fn gemm(&self, a: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, ep: Epilogue) {
        match self {
            PackedPanels::F32(buf) => crate::matmul::gemm_prepacked(a, buf, out, m, k, n, ep),
            PackedPanels::F16(buf) => gemm_prepacked_f16(a, buf, out, m, k, n, ep),
            PackedPanels::Int8 { q, scales } => gemm_prepacked_i8(a, q, scales, out, m, k, n, ep),
            PackedPanels::Int8Act { q, scales, colsums } => QA_BUF.with(|buf| {
                let (aq, asc, azp) = &mut *buf.borrow_mut();
                aq.resize(m * i8i8_padded_k(k), 0);
                asc.resize(m, 0.0);
                azp.resize(m, 0);
                quantize_a_rows_into(a, aq, asc, azp, m, k);
                gemm_prepacked_i8i8(
                    aq,
                    asc,
                    azp,
                    q,
                    scales,
                    colsums,
                    I8I8_GROUP_SIZE,
                    out,
                    m,
                    k,
                    n,
                    ep,
                );
            }),
        }
    }

    /// Runs the whole-int8 prepacked GEMM on **pre-quantized** activations
    /// (u8 codes in [`i8i8_padded_k`]-byte rows with per-row
    /// scale/zero-point) — the entry point for layers whose im2col output
    /// already lands in a u8 buffer ([`crate::im2col_u8_into`]), skipping
    /// the dispatch-time f32 quantization of [`Self::gemm`].
    ///
    /// # Panics
    ///
    /// Panics unless the panels were packed at [`Precision::Int8Act`], or
    /// on any [`gemm_prepacked_i8i8`] shape mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_u8(
        &self,
        aq: &[u8],
        a_scales: &[f32],
        a_zps: &[u8],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        ep: Epilogue,
    ) {
        match self {
            PackedPanels::Int8Act { q, scales, colsums } => gemm_prepacked_i8i8(
                aq,
                a_scales,
                a_zps,
                q,
                scales,
                colsums,
                I8I8_GROUP_SIZE,
                out,
                m,
                k,
                n,
                ep,
            ),
            other => panic!(
                "PackedPanels::gemm_u8 requires Int8Act panels, got {}",
                other.precision().label()
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Row-block walkers (mirror `gemm_packed_rows`)
// ---------------------------------------------------------------------------

/// Computes `block` (rows `row0..`) from `a` and f16 panels.
fn gemm_f16_rows(a: &[f32], packed: &[u16], block: &mut [f32], row0: usize, k: usize, n: usize) {
    let rows = block.len() / n;
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let panel = &packed[jp * NR * k..(jp + 1) * NR * k];
        let mut r = 0;
        while r + MR <= rows {
            micro_kernel_mr_f16(a, panel, block, row0 + r, r, j0, w, k, n);
            r += MR;
        }
        while r < rows {
            micro_kernel_1_f16(a, panel, block, row0 + r, r, j0, w, k, n);
            r += 1;
        }
    }
}

/// Computes `block` (rows `row0..`) from `a` and int8 panels + scales.
fn gemm_i8_rows(
    a: &[f32],
    packed: &[i8],
    scales: &[f32],
    block: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    let rows = block.len() / n;
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let panel = &packed[jp * NR * k..(jp + 1) * NR * k];
        let scale = &scales[j0..j0 + NR];
        let mut r = 0;
        while r + MR <= rows {
            micro_kernel_mr_i8(a, panel, scale, block, row0 + r, r, j0, w, k, n);
            r += MR;
        }
        while r < rows {
            micro_kernel_1_i8(a, panel, scale, block, row0 + r, r, j0, w, k, n);
            r += 1;
        }
    }
}

/// Computes `block` (rows `row0..`) from quantized activations and
/// quad-interleaved i8i8 panels + per-group scales / column sums.
#[allow(clippy::too_many_arguments)]
fn gemm_i8i8_rows(
    aq: &[u8],
    a_scales: &[f32],
    a_zps: &[u8],
    packed: &[i8],
    b_scales: &[f32],
    colsums: &[i32],
    group_size: usize,
    block: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
) {
    let kp = i8i8_padded_k(k);
    let np = packed_scales_i8_len(n);
    let rows = block.len() / n;
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let panel = &packed[jp * NR * kp..(jp + 1) * NR * kp];
        let mut r = 0;
        while r + MR <= rows {
            micro_kernel_mr_i8i8(
                aq,
                a_scales,
                a_zps,
                panel,
                b_scales,
                colsums,
                group_size,
                np,
                block,
                row0 + r,
                r,
                j0,
                w,
                kp,
                n,
            );
            r += MR;
        }
        while r < rows {
            micro_kernel_1_i8i8(
                aq,
                a_scales,
                a_zps,
                panel,
                b_scales,
                colsums,
                group_size,
                np,
                block,
                row0 + r,
                r,
                j0,
                w,
                kp,
                n,
            );
            r += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// f16 micro-kernels
// ---------------------------------------------------------------------------

/// `MR×NR` f16-panel register tile: dispatches to the AVX2+F16C kernel when
/// compiled in, else the portable widen-then-FMA loop (bit-identical).
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_mr_f16(
    a: &[f32],
    panel: &[u16],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        target_feature = "f16c"
    ))]
    {
        // SAFETY: avx2+fma+f16c are compile-time target features here;
        // slice bounds are asserted by the callers' geometry.
        unsafe { micro_kernel_mr_f16_avx2(a, panel, block, a_row, c_row, j0, w, k, n) }
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        target_feature = "f16c"
    )))]
    {
        micro_kernel_mr_f16_generic(a, panel, block, a_row, c_row, j0, w, k, n)
    }
}

/// Portable `MR×NR` f16 tile: widen the panel row to f32, then the same
/// FMA chain as the f32 kernel.
#[allow(clippy::too_many_arguments)]
#[allow(dead_code)]
#[inline]
fn micro_kernel_mr_f16_generic(
    a: &[f32],
    panel: &[u16],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let rows: [&[f32]; MR] = [
        &a[a_row * k..(a_row + 1) * k],
        &a[(a_row + 1) * k..(a_row + 2) * k],
        &a[(a_row + 2) * k..(a_row + 3) * k],
        &a[(a_row + 3) * k..(a_row + 4) * k],
    ];
    let mut bk = [0.0f32; NR];
    for kk in 0..k {
        for (v, &h) in bk.iter_mut().zip(&panel[kk * NR..kk * NR + NR]) {
            *v = f16_to_f32(h);
        }
        for (accr, ar) in acc.iter_mut().zip(&rows) {
            let av = ar[kk];
            for (c, &bv) in accr.iter_mut().zip(&bk) {
                *c = fmadd(*c, av, bv);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let dst = &mut block[(c_row + r) * n + j0..(c_row + r) * n + j0 + w];
        dst.copy_from_slice(&accr[..w]);
    }
}

/// Hand-scheduled AVX2+F16C+FMA `4×16` f16 tile: two `vcvtph2ps` widenings
/// and four broadcasts per `k` step, lane-wise FMAs in the same
/// ascending-`k` order as the portable kernel — bit-identical to it
/// (f16→f32 widening is exact in both).
///
/// # Safety
///
/// Caller must guarantee avx2+fma+f16c are available (compile-time gated at
/// the call site) and the usual geometry invariants (`a` holds `MR` rows of
/// length `k` at `a_row`, `panel` holds `k·NR` halves, `block` holds the
/// target rows).
#[allow(clippy::too_many_arguments)]
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    target_feature = "f16c"
))]
#[inline]
unsafe fn micro_kernel_mr_f16_avx2(
    a: &[f32],
    panel: &[u16],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16 && MR == 4) };
    unsafe {
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        for kk in 0..k {
            let h0 = _mm_loadu_si128(pp.add(kk * NR) as *const __m128i);
            let h1 = _mm_loadu_si128(pp.add(kk * NR + 8) as *const __m128i);
            let b0 = _mm256_cvtph_ps(h0);
            let b1 = _mm256_cvtph_ps(h1);
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add((a_row + r) * k + kk));
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        store_acc(acc, block, c_row, j0, w, n);
    }
}

/// Single-row remainder of [`micro_kernel_mr_f16`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_1_f16(
    a: &[f32],
    panel: &[u16],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [0.0f32; NR];
    let ar = &a[a_row * k..(a_row + 1) * k];
    for (kk, &av) in ar.iter().enumerate() {
        for (c, &h) in acc.iter_mut().zip(&panel[kk * NR..kk * NR + NR]) {
            *c = fmadd(*c, av, f16_to_f32(h));
        }
    }
    block[c_row * n + j0..c_row * n + j0 + w].copy_from_slice(&acc[..w]);
}

// ---------------------------------------------------------------------------
// int8 micro-kernels
// ---------------------------------------------------------------------------

/// `MR×NR` int8-panel register tile: AVX2 kernel when compiled in, else the
/// portable widen-then-FMA loop (bit-identical).
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_mr_i8(
    a: &[f32],
    panel: &[i8],
    scale: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        // SAFETY: avx2+fma are compile-time target features here; slice
        // bounds are asserted by the callers' geometry.
        unsafe { micro_kernel_mr_i8_avx2(a, panel, scale, block, a_row, c_row, j0, w, k, n) }
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    {
        micro_kernel_mr_i8_generic(a, panel, scale, block, a_row, c_row, j0, w, k, n)
    }
}

/// Portable `MR×NR` int8 tile: widen the code row to f32, FMA-accumulate,
/// scale each column once after the reduction.
#[allow(clippy::too_many_arguments)]
#[allow(dead_code)]
#[inline]
fn micro_kernel_mr_i8_generic(
    a: &[f32],
    panel: &[i8],
    scale: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    let rows: [&[f32]; MR] = [
        &a[a_row * k..(a_row + 1) * k],
        &a[(a_row + 1) * k..(a_row + 2) * k],
        &a[(a_row + 2) * k..(a_row + 3) * k],
        &a[(a_row + 3) * k..(a_row + 4) * k],
    ];
    let mut bk = [0.0f32; NR];
    for kk in 0..k {
        for (v, &q) in bk.iter_mut().zip(&panel[kk * NR..kk * NR + NR]) {
            *v = q as f32;
        }
        for (accr, ar) in acc.iter_mut().zip(&rows) {
            let av = ar[kk];
            for (c, &bv) in accr.iter_mut().zip(&bk) {
                *c = fmadd(*c, av, bv);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let dst = &mut block[(c_row + r) * n + j0..(c_row + r) * n + j0 + w];
        for ((d, &v), &s) in dst.iter_mut().zip(accr.iter()).zip(scale) {
            *d = v * s;
        }
    }
}

/// Hand-scheduled AVX2+FMA `4×16` int8 tile: one 16-byte load widened to
/// two f32 vectors (`vpmovsxbd` + `vcvtdq2ps`, both exact) per `k` step;
/// the column scales multiply the finished accumulators once. Bit-identical
/// to the portable kernel.
///
/// # Safety
///
/// Caller must guarantee avx2+fma are available (compile-time gated at the
/// call site) and the usual geometry invariants (`a` holds `MR` rows of
/// length `k` at `a_row`, `panel` holds `k·NR` codes, `scale` holds `NR`
/// floats, `block` holds the target rows).
#[allow(clippy::too_many_arguments)]
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
#[inline]
unsafe fn micro_kernel_mr_i8_avx2(
    a: &[f32],
    panel: &[i8],
    scale: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16 && MR == 4) };
    unsafe {
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        let ap = a.as_ptr();
        let pp = panel.as_ptr();
        for kk in 0..k {
            let q = _mm_loadu_si128(pp.add(kk * NR) as *const __m128i);
            let b0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q));
            let b1 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(q, 8)));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ap.add((a_row + r) * k + kk));
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        let s0 = _mm256_loadu_ps(scale.as_ptr());
        let s1 = _mm256_loadu_ps(scale.as_ptr().add(8));
        for accr in acc.iter_mut() {
            accr[0] = _mm256_mul_ps(accr[0], s0);
            accr[1] = _mm256_mul_ps(accr[1], s1);
        }
        store_acc(acc, block, c_row, j0, w, n);
    }
}

/// Single-row remainder of [`micro_kernel_mr_i8`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_1_i8(
    a: &[f32],
    panel: &[i8],
    scale: &[f32],
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [0.0f32; NR];
    let ar = &a[a_row * k..(a_row + 1) * k];
    for (kk, &av) in ar.iter().enumerate() {
        for (c, &q) in acc.iter_mut().zip(&panel[kk * NR..kk * NR + NR]) {
            *c = fmadd(*c, av, q as f32);
        }
    }
    let dst = &mut block[c_row * n + j0..c_row * n + j0 + w];
    for ((d, &v), &s) in dst.iter_mut().zip(acc.iter()).zip(scale) {
        *d = v * s;
    }
}

// ---------------------------------------------------------------------------
// whole-int8 (u8 × s8) micro-kernels
// ---------------------------------------------------------------------------

/// One `vpmaddubsw`/`vpmaddwd` quad step, scalar: `aq` holds 4 u8
/// activation codes, `wq` 4 s8 weight codes; each adjacent product pair
/// saturates to i16 before the i32 add — the exact hardware contract, so
/// the scalar and AVX2 kernels agree bit-for-bit even when a pair
/// saturates.
#[inline]
fn quad_dot_i8i8(aq: &[u8], wq: &[i8]) -> i32 {
    let p0 = i32::from(aq[0]) * i32::from(wq[0]) + i32::from(aq[1]) * i32::from(wq[1]);
    let p1 = i32::from(aq[2]) * i32::from(wq[2]) + i32::from(aq[3]) * i32::from(wq[3]);
    p0.clamp(-32768, 32767) + p1.clamp(-32768, 32767)
}

/// `MR×NR` whole-int8 register tile: AVX2 kernel when compiled in, else
/// the portable saturating-quad loop (bit-identical).
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_mr_i8i8(
    aq: &[u8],
    a_scales: &[f32],
    a_zps: &[u8],
    panel: &[i8],
    b_scales: &[f32],
    colsums: &[i32],
    group_size: usize,
    np: usize,
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    kp: usize,
    n: usize,
) {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        // SAFETY: avx2+fma are compile-time target features here; slice
        // bounds are asserted by the callers' geometry.
        unsafe {
            micro_kernel_mr_i8i8_avx2(
                aq, a_scales, a_zps, panel, b_scales, colsums, group_size, np, block, a_row, c_row,
                j0, w, kp, n,
            )
        }
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    {
        micro_kernel_mr_i8i8_generic(
            aq, a_scales, a_zps, panel, b_scales, colsums, group_size, np, block, a_row, c_row, j0,
            w, kp, n,
        )
    }
}

/// Portable `MR×NR` whole-int8 tile: `MR` passes of the single-row kernel
/// (row results are independent, so this is trivially bit-identical to the
/// SIMD tile, which interleaves the same per-row arithmetic).
#[allow(clippy::too_many_arguments)]
#[allow(dead_code)]
#[inline]
fn micro_kernel_mr_i8i8_generic(
    aq: &[u8],
    a_scales: &[f32],
    a_zps: &[u8],
    panel: &[i8],
    b_scales: &[f32],
    colsums: &[i32],
    group_size: usize,
    np: usize,
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    kp: usize,
    n: usize,
) {
    for r in 0..MR {
        micro_kernel_1_i8i8(
            aq,
            a_scales,
            a_zps,
            panel,
            b_scales,
            colsums,
            group_size,
            np,
            block,
            a_row + r,
            c_row + r,
            j0,
            w,
            kp,
            n,
        );
    }
}

/// Single-row whole-int8 kernel — the scalar definition of the contract:
/// per group, ascending-`k` quads of [`quad_dot_i8i8`] into an i32
/// accumulator, zero-point compensation against the group column sum, one
/// FMA with the group scale; the row's activation scale multiplies the
/// finished f32 sum.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_kernel_1_i8i8(
    aq: &[u8],
    a_scales: &[f32],
    a_zps: &[u8],
    panel: &[i8],
    b_scales: &[f32],
    colsums: &[i32],
    group_size: usize,
    np: usize,
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    kp: usize,
    n: usize,
) {
    let row = &aq[a_row * kp..(a_row + 1) * kp];
    let zp = i32::from(a_zps[a_row]);
    let sa = a_scales[a_row];
    let quads = kp / 4;
    let gq = group_size / 4;
    let groups = kp.div_ceil(group_size);
    let mut facc = [0.0f32; NR];
    for g in 0..groups {
        let q0 = g * gq;
        let q1 = (q0 + gq).min(quads);
        let mut iacc = [0i32; NR];
        for kq in q0..q1 {
            let a4 = &row[kq * 4..kq * 4 + 4];
            let wq = &panel[kq * NR * 4..(kq + 1) * NR * 4];
            for (jo, acc) in iacc.iter_mut().enumerate() {
                *acc += quad_dot_i8i8(a4, &wq[jo * 4..jo * 4 + 4]);
            }
        }
        let sb = &b_scales[g * np + j0..g * np + j0 + NR];
        let cs = &colsums[g * np + j0..g * np + j0 + NR];
        for ((f, &ia), (&s, &c)) in facc.iter_mut().zip(&iacc).zip(sb.iter().zip(cs)) {
            *f = fmadd(*f, (ia - zp * c) as f32, s);
        }
    }
    let dst = &mut block[c_row * n + j0..c_row * n + j0 + w];
    for (d, &f) in dst.iter_mut().zip(facc.iter()) {
        *d = f * sa;
    }
}

/// Hand-scheduled AVX2 `4×16` whole-int8 tile: per `k`-quad, one 4-byte
/// activation broadcast (`vpbroadcastd`) against two 32-byte panel loads
/// (8 columns × 4 K-rows each) through `vpmaddubsw` → `vpmaddwd(·, 1)` →
/// `vpaddd` into per-group i32 accumulators; per group, zero-point
/// compensation (`vpmulld` + `vpsubd` against the column sums), exact
/// `vcvtdq2ps`, and one FMA with the group scales; the activation scale
/// multiplies the finished tile. Bit-identical to
/// [`micro_kernel_1_i8i8`] — integer arithmetic is exact and the float
/// fuse runs in the same group-ascending order with the same FMA.
///
/// # Safety
///
/// Caller must guarantee avx2+fma are available (compile-time gated at the
/// call site) and the usual geometry invariants (`aq` holds `MR` rows of
/// `kp` codes at `a_row`, `panel` holds `kp·NR` codes, the scale/column-sum
/// vectors hold `NR` entries per group at `j0`, `block` holds the target
/// rows).
#[allow(clippy::too_many_arguments)]
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
#[inline]
unsafe fn micro_kernel_mr_i8i8_avx2(
    aq: &[u8],
    a_scales: &[f32],
    a_zps: &[u8],
    panel: &[i8],
    b_scales: &[f32],
    colsums: &[i32],
    group_size: usize,
    np: usize,
    block: &mut [f32],
    a_row: usize,
    c_row: usize,
    j0: usize,
    w: usize,
    kp: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    const { assert!(NR == 16 && MR == 4) };
    unsafe {
        let quads = kp / 4;
        let gq = group_size / 4;
        let groups = kp.div_ceil(group_size);
        let ones = _mm256_set1_epi16(1);
        let mut facc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        let pp = panel.as_ptr();
        let rowp: [*const u8; MR] = std::array::from_fn(|r| aq.as_ptr().add((a_row + r) * kp));
        let zpv: [__m256i; MR] =
            std::array::from_fn(|r| _mm256_set1_epi32(i32::from(a_zps[a_row + r])));
        for g in 0..groups {
            let q0 = g * gq;
            let q1 = (q0 + gq).min(quads);
            let mut iacc: [[__m256i; 2]; MR] = [[_mm256_setzero_si256(); 2]; MR];
            for kq in q0..q1 {
                let b0 = _mm256_loadu_si256(pp.add(kq * NR * 4) as *const __m256i);
                let b1 = _mm256_loadu_si256(pp.add(kq * NR * 4 + 32) as *const __m256i);
                for (r, accr) in iacc.iter_mut().enumerate() {
                    let a4 = (rowp[r].add(kq * 4) as *const i32).read_unaligned();
                    let av = _mm256_set1_epi32(a4);
                    accr[0] = _mm256_add_epi32(
                        accr[0],
                        _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones),
                    );
                    accr[1] = _mm256_add_epi32(
                        accr[1],
                        _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones),
                    );
                }
            }
            let sb0 = _mm256_loadu_ps(b_scales.as_ptr().add(g * np + j0));
            let sb1 = _mm256_loadu_ps(b_scales.as_ptr().add(g * np + j0 + 8));
            let cs0 = _mm256_loadu_si256(colsums.as_ptr().add(g * np + j0) as *const __m256i);
            let cs1 = _mm256_loadu_si256(colsums.as_ptr().add(g * np + j0 + 8) as *const __m256i);
            for (r, accr) in facc.iter_mut().enumerate() {
                let c0 = _mm256_sub_epi32(iacc[r][0], _mm256_mullo_epi32(zpv[r], cs0));
                let c1 = _mm256_sub_epi32(iacc[r][1], _mm256_mullo_epi32(zpv[r], cs1));
                accr[0] = _mm256_fmadd_ps(_mm256_cvtepi32_ps(c0), sb0, accr[0]);
                accr[1] = _mm256_fmadd_ps(_mm256_cvtepi32_ps(c1), sb1, accr[1]);
            }
        }
        for (r, accr) in facc.iter_mut().enumerate() {
            let sa = _mm256_set1_ps(a_scales[a_row + r]);
            accr[0] = _mm256_mul_ps(accr[0], sa);
            accr[1] = _mm256_mul_ps(accr[1], sa);
        }
        store_acc(facc, block, c_row, j0, w, n);
    }
}

/// Shared `MR×NR` accumulator store (full-width vector stores, scalar copy
/// for the ragged final panel).
///
/// # Safety
///
/// `block` must hold rows `c_row..c_row+MR` of an `[*, n]` matrix with the
/// `j0..j0+w` span in bounds; avx2 must be available.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
#[inline]
unsafe fn store_acc(
    acc: [[std::arch::x86_64::__m256; 2]; MR],
    block: &mut [f32],
    c_row: usize,
    j0: usize,
    w: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    unsafe {
        if w == NR {
            let cp = block.as_mut_ptr();
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(cp.add((c_row + r) * n + j0), accr[0]);
                _mm256_storeu_ps(cp.add((c_row + r) * n + j0 + 8), accr[1]);
            }
        } else {
            let mut tmp = [0.0f32; NR];
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(tmp.as_mut_ptr(), accr[0]);
                _mm256_storeu_ps(tmp.as_mut_ptr().add(8), accr[1]);
                block[(c_row + r) * n + j0..(c_row + r) * n + j0 + w].copy_from_slice(&tmp[..w]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::gemm_prepacked;

    fn random(len: usize, seed: u64) -> Vec<f32> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn f16_widening_roundtrips_exactly() {
        // Every finite f16 must roundtrip f16 → f32 → f16 unchanged: the
        // widening is exact and the narrowing of an exact value is identity.
        for h in 0u16..=0xffff {
            let exp = (h >> 10) & 0x1f;
            if exp == 31 {
                continue; // inf/nan handled below
            }
            assert_eq!(f32_to_f16(f16_to_f32(h)), h, "h={h:#06x}");
        }
        assert!(f16_to_f32(0x7c00).is_infinite());
        assert!(f16_to_f32(0xfc00).is_infinite());
        assert!(f16_to_f32(0x7e00).is_nan());
        assert!(f32_to_f16(f32::NAN) & 0x7c00 == 0x7c00);
        assert_ne!(f32_to_f16(f32::NAN) & 0x03ff, 0);
    }

    #[test]
    fn f16_narrowing_rounds_to_nearest_even() {
        // 1.0 + 2⁻¹¹ is exactly halfway between 1.0 and the next f16;
        // RNE keeps the even mantissa (1.0).
        assert_eq!(f32_to_f16(1.0 + 2f32.powi(-11)), f32_to_f16(1.0));
        // Just above the midpoint rounds up.
        assert_eq!(
            f32_to_f16(1.0 + 2f32.powi(-11) + 2f32.powi(-20)),
            f32_to_f16(1.0) + 1
        );
        // Overflow saturates to inf, underflow to zero.
        assert_eq!(f32_to_f16(1e6), 0x7c00);
        assert_eq!(f32_to_f16(-1e6), 0xfc00);
        assert_eq!(f32_to_f16(1e-10), 0);
        assert_eq!(f32_to_f16(-1e-10), 0x8000);
        // Max finite f16 survives; the first value past the rounding
        // midpoint (65520) overflows.
        assert_eq!(f16_to_f32(f32_to_f16(65504.0)), 65504.0);
        assert_eq!(f32_to_f16(65520.0), 0x7c00);
    }

    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "f16c"
    ))]
    #[test]
    fn scalar_f16_widening_matches_hardware() {
        // The scalar widening must agree with vcvtph2ps bit-for-bit for
        // every finite f16, or the SIMD and fallback kernels would diverge.
        use std::arch::x86_64::*;
        for h0 in (0u16..=0xfff8).step_by(8) {
            let hs: [u16; 8] = std::array::from_fn(|i| h0 + i as u16);
            // SAFETY: avx2+f16c are compile-time target features here.
            let hw: [f32; 8] = unsafe {
                let v = _mm256_cvtph_ps(_mm_loadu_si128(hs.as_ptr() as *const __m128i));
                let mut out = [0.0f32; 8];
                _mm256_storeu_ps(out.as_mut_ptr(), v);
                out
            };
            for (i, &h) in hs.iter().enumerate() {
                if (h >> 10) & 0x1f == 31 && h & 0x3ff != 0 {
                    assert!(hw[i].is_nan() && f16_to_f32(h).is_nan());
                } else {
                    assert_eq!(hw[i].to_bits(), f16_to_f32(h).to_bits(), "h={h:#06x}");
                }
            }
        }
    }

    #[test]
    fn f16_panel_bytes_exactly_halved() {
        for &(k, n) in &[(9, 16), (27, 64), (288, 512), (5, 3), (160, 100)] {
            assert_eq!(packed_panels_f16_len(k, n), packed_panels_len(k, n));
            assert_eq!(
                Precision::F16.packed_panel_bytes(k, n) * 2,
                Precision::F32.packed_panel_bytes(k, n),
                "{k}x{n}"
            );
            assert_eq!(
                Precision::Int8.packed_panel_bytes(k, n) * 4,
                Precision::F32.packed_panel_bytes(k, n),
                "{k}x{n}"
            );
        }
    }

    /// f32 reference on pre-quantized weights, same accumulation order.
    fn gold_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, ep: Epilogue) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        let mut packed = vec![0.0f32; packed_panels_len(k, n)];
        pack_b_panels_into(b, &mut packed, k, n);
        gemm_prepacked(a, &packed, &mut out, m, k, n, ep);
        out
    }

    #[test]
    fn f16_gemm_is_bit_identical_to_f32_on_roundtripped_weights() {
        // Widening is exact, so the f16 path must equal the f32 path run on
        // the f16-roundtripped weight matrix — bit-for-bit, epilogue and
        // ragged tiles included.
        for &(m, k, n) in &[
            (1, 7, 5),
            (4, 16, 16),
            (13, 33, 19),
            (64, 27, 96),
            (7, 9, 100),
        ] {
            let a = random(m * k, 1 + m as u64);
            let b = random(k * n, 2 + n as u64);
            let bq: Vec<f32> = b.iter().map(|&v| f16_to_f32(f32_to_f16(v))).collect();
            let bias: Vec<f32> = random(n, 3);
            let ep = Epilogue {
                bias: Some(&bias),
                scale_shift: None,
                relu: true,
            };
            let mut packed = vec![0u16; packed_panels_f16_len(k, n)];
            pack_b_panels_f16_into(&b, &mut packed, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_prepacked_f16(&a, &packed, &mut got, m, k, n, ep);
            assert_eq!(got, gold_gemm(&a, &bq, m, k, n, ep), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn i8_gemm_matches_scalar_reference_bit_for_bit() {
        for &(m, k, n) in &[(1, 4, 3), (4, 16, 16), (11, 23, 37), (64, 27, 96)] {
            let a = random(m * k, 11 + m as u64);
            let b = random(k * n, 12 + n as u64);
            let mut q = vec![0i8; packed_panels_i8_len(k, n)];
            let mut scales = vec![0.0f32; packed_scales_i8_len(n)];
            pack_b_panels_i8_into(&b, &mut q, &mut scales, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm_prepacked_i8(&a, &q, &scales, &mut got, m, k, n, Epilogue::default());
            // Scalar reference: accumulate raw codes ascending-k with the
            // same fmadd, then one scale multiply — the kernel contract.
            for i in 0..m {
                for j in 0..n {
                    let jp = j / NR;
                    let jo = j % NR;
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        let code = q[jp * NR * k + kk * NR + jo] as f32;
                        acc = fmadd(acc, a[i * k + kk], code);
                    }
                    let want = acc * scales[j];
                    assert_eq!(got[i * n + j], want, "{m}x{k}x{n} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn i8_all_zero_column_scale_is_one() {
        // An all-zero column must pack to zero codes with scale 1.0 — not
        // 0.0, which would feed NaN/denormal factories downstream — and
        // still dequantize to an exactly-zero output column.
        let (k, n) = (5, 7);
        let mut b = random(k * n, 51);
        for kk in 0..k {
            b[kk * n + 3] = 0.0;
        }
        let mut q = vec![0i8; packed_panels_i8_len(k, n)];
        let mut scales = vec![0.0f32; packed_scales_i8_len(n)];
        pack_b_panels_i8_into(&b, &mut q, &mut scales, k, n);
        assert_eq!(scales[3], 1.0);
        for kk in 0..k {
            assert_eq!(q[kk * NR + 3], 0, "zero column packs zero codes");
        }
        // Padded columns (n=7 < NR) get scale 1.0 too.
        for &s in &scales[n..] {
            assert_eq!(s, 1.0);
        }
        let a = random(2 * k, 52);
        let mut out = vec![f32::NAN; 2 * n];
        gemm_prepacked_i8(&a, &q, &scales, &mut out, 2, k, n, Epilogue::default());
        assert!(out.iter().all(|v| v.is_finite()));
        assert_eq!(out[3], 0.0);
        assert_eq!(out[n + 3], 0.0);
        // Same guarantee on the whole-int8 per-group pack: a group whose
        // column slice is all zero emits scale 1.0 and zero codes.
        let mut q2 = vec![0i8; packed_panels_i8i8_len(k, n)];
        let gl = packed_scales_i8i8_len(k, n, 4);
        let mut s2 = vec![0.0f32; gl];
        let mut c2 = vec![0i32; gl];
        pack_b_panels_i8i8_into(&b, &mut q2, &mut s2, &mut c2, k, n, 4);
        let np = packed_scales_i8_len(n);
        for g in 0..i8i8_groups(k, 4) {
            assert_eq!(s2[g * np + 3], 1.0, "group {g}");
            assert_eq!(c2[g * np + 3], 0, "group {g}");
        }
    }

    /// Independent scalar model of the whole-int8 contract (module docs):
    /// saturating quad pairs, per-group i32 accumulation, zero-point
    /// compensation, group-scale FMA, row-scale multiply, f32 epilogue.
    #[allow(clippy::too_many_arguments)]
    fn i8i8_reference(
        aq: &[u8],
        a_scales: &[f32],
        a_zps: &[u8],
        q: &[i8],
        b_scales: &[f32],
        colsums: &[i32],
        gs: usize,
        m: usize,
        k: usize,
        n: usize,
        ep: Epilogue,
    ) -> Vec<f32> {
        let kp = i8i8_padded_k(k);
        let np = packed_scales_i8_len(n);
        let (quads, gq) = (kp / 4, gs / 4);
        let groups = i8i8_groups(k, gs);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &aq[i * kp..(i + 1) * kp];
            let zp = i32::from(a_zps[i]);
            for j in 0..n {
                let (jp, jo) = (j / NR, j % NR);
                let panel = &q[jp * NR * kp..(jp + 1) * NR * kp];
                let mut f = 0.0f32;
                for g in 0..groups {
                    let mut ia = 0i32;
                    for kq in g * gq..((g + 1) * gq).min(quads) {
                        let a4 = &row[kq * 4..kq * 4 + 4];
                        let w4 = &panel[kq * NR * 4 + jo * 4..kq * NR * 4 + jo * 4 + 4];
                        let p0 = i32::from(a4[0]) * i32::from(w4[0])
                            + i32::from(a4[1]) * i32::from(w4[1]);
                        let p1 = i32::from(a4[2]) * i32::from(w4[2])
                            + i32::from(a4[3]) * i32::from(w4[3]);
                        ia += p0.clamp(-32768, 32767) + p1.clamp(-32768, 32767);
                    }
                    f = fmadd(
                        f,
                        (ia - zp * colsums[g * np + j]) as f32,
                        b_scales[g * np + j],
                    );
                }
                out[i * n + j] = f * a_scales[i];
            }
        }
        ep.apply(&mut out, n);
        out
    }

    #[test]
    fn i8i8_gemm_matches_scalar_reference_bit_for_bit() {
        // The dispatched kernel (AVX2 on this target) must reproduce the
        // scalar saturating-quad reference exactly, over ragged shapes,
        // group sizes, and epilogues — including remainder rows and the
        // ragged final panel.
        for &(m, k, n) in &[
            (1, 4, 3),
            (4, 16, 16),
            (5, 7, 10),
            (11, 23, 37),
            (64, 70, 96),
        ] {
            for gs in [4usize, 8, 64] {
                let a = random(m * k, 61 + (m + gs) as u64);
                let b = random(k * n, 62 + (n + gs) as u64);
                let mut q = vec![0i8; packed_panels_i8i8_len(k, n)];
                let gl = packed_scales_i8i8_len(k, n, gs);
                let mut scales = vec![0.0f32; gl];
                let mut colsums = vec![0i32; gl];
                pack_b_panels_i8i8_into(&b, &mut q, &mut scales, &mut colsums, k, n, gs);
                let kp = i8i8_padded_k(k);
                let mut aq = vec![0u8; m * kp];
                let mut asc = vec![0.0f32; m];
                let mut azp = vec![0u8; m];
                quantize_a_rows_into(&a, &mut aq, &mut asc, &mut azp, m, k);
                let bias: Vec<f32> = random(n, 63);
                let shift: Vec<f32> = random(n, 64);
                let scale_v: Vec<f32> = random(n, 65);
                for ep in [
                    Epilogue::default(),
                    Epilogue {
                        bias: Some(&bias),
                        scale_shift: Some((&scale_v, &shift)),
                        relu: true,
                    },
                ] {
                    let mut got = vec![0.0f32; m * n];
                    gemm_prepacked_i8i8(
                        &aq, &asc, &azp, &q, &scales, &colsums, gs, &mut got, m, k, n, ep,
                    );
                    let want =
                        i8i8_reference(&aq, &asc, &azp, &q, &scales, &colsums, gs, m, k, n, ep);
                    assert_eq!(got, want, "{m}x{k}x{n} gs={gs}");
                }
            }
        }
    }

    #[test]
    fn i8i8_quantize_roundtrip_error_is_bounded() {
        // Dequantizing the u8 codes recovers each element to within 1.5
        // quantization steps (½ from rounding, ≤1 from the clamp at the
        // range edges), and exact zeros encode exactly to the zero point.
        let (m, k) = (9, 53);
        let mut a = random(m * k, 71);
        a[k + 3] = 0.0;
        a[2 * k..2 * k + k].fill(0.0); // a constant-zero row is exact
        let kp = i8i8_padded_k(k);
        let mut q = vec![0u8; m * kp];
        let mut scales = vec![0.0f32; m];
        let mut zps = vec![0u8; m];
        quantize_a_rows_into(&a, &mut q, &mut scales, &mut zps, m, k);
        for i in 0..m {
            let (s, zp) = (scales[i], i32::from(zps[i]));
            for kk in 0..k {
                let v = a[i * k + kk];
                let deq = (i32::from(q[i * kp + kk]) - zp) as f32 * s;
                assert!(
                    (deq - v).abs() <= 1.5 * s + 1e-7,
                    "row {i} col {kk}: {deq} vs {v} (scale {s})"
                );
                if v == 0.0 {
                    assert_eq!(deq, 0.0, "exact zero must survive");
                }
            }
            for kk in k..kp {
                assert_eq!(q[i * kp + kk], 0, "quad pad is zeroed");
            }
        }
        assert_eq!((scales[2], zps[2]), (1.0, 0), "constant-zero row");
    }

    #[test]
    fn i8_quantization_error_is_bounded() {
        let (m, k, n) = (8, 64, 48);
        let a = random(m * k, 21);
        let b = random(k * n, 22);
        let mut q = vec![0i8; packed_panels_i8_len(k, n)];
        let mut scales = vec![0.0f32; packed_scales_i8_len(n)];
        pack_b_panels_i8_into(&b, &mut q, &mut scales, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_prepacked_i8(&a, &q, &scales, &mut got, m, k, n, Epilogue::default());
        let want = gold_gemm(&a, &b, m, k, n, Epilogue::default());
        let amax = want.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
        for (g, w) in got.iter().zip(&want) {
            // Symmetric 8-bit weight quantization at K=64: error well under
            // 1% of the output range.
            assert!((g - w).abs() <= 0.01 * amax + 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn lowp_results_identical_across_thread_counts() {
        use crate::parallel::set_threads;
        let (m, k, n) = (96, 41, 77);
        let a = random(m * k, 31);
        let b = random(k * n, 32);
        let mut p16 = vec![0u16; packed_panels_f16_len(k, n)];
        pack_b_panels_f16_into(&b, &mut p16, k, n);
        let mut q = vec![0i8; packed_panels_i8_len(k, n)];
        let mut scales = vec![0.0f32; packed_scales_i8_len(n)];
        pack_b_panels_i8_into(&b, &mut q, &mut scales, k, n);
        let gl = packed_scales_i8i8_len(k, n, I8I8_GROUP_SIZE);
        let mut qq = vec![0i8; packed_panels_i8i8_len(k, n)];
        let mut gsc = vec![0.0f32; gl];
        let mut gcs = vec![0i32; gl];
        pack_b_panels_i8i8_into(&b, &mut qq, &mut gsc, &mut gcs, k, n, I8I8_GROUP_SIZE);
        let kp = i8i8_padded_k(k);
        let mut aq = vec![0u8; m * kp];
        let mut asc = vec![0.0f32; m];
        let mut azp = vec![0u8; m];
        quantize_a_rows_into(&a, &mut aq, &mut asc, &mut azp, m, k);
        set_threads(1);
        let mut gold16 = vec![0.0f32; m * n];
        gemm_prepacked_f16(&a, &p16, &mut gold16, m, k, n, Epilogue::default());
        let mut gold8 = vec![0.0f32; m * n];
        gemm_prepacked_i8(&a, &q, &scales, &mut gold8, m, k, n, Epilogue::default());
        let mut gold88 = vec![0.0f32; m * n];
        gemm_prepacked_i8i8(
            &aq,
            &asc,
            &azp,
            &qq,
            &gsc,
            &gcs,
            I8I8_GROUP_SIZE,
            &mut gold88,
            m,
            k,
            n,
            Epilogue::default(),
        );
        for t in 2..=8 {
            set_threads(t);
            let mut o16 = vec![0.0f32; m * n];
            gemm_prepacked_f16(&a, &p16, &mut o16, m, k, n, Epilogue::default());
            assert_eq!(o16, gold16, "f16 thread count {t}");
            let mut o8 = vec![0.0f32; m * n];
            gemm_prepacked_i8(&a, &q, &scales, &mut o8, m, k, n, Epilogue::default());
            assert_eq!(o8, gold8, "i8 thread count {t}");
            let mut o88 = vec![0.0f32; m * n];
            gemm_prepacked_i8i8(
                &aq,
                &asc,
                &azp,
                &qq,
                &gsc,
                &gcs,
                I8I8_GROUP_SIZE,
                &mut o88,
                m,
                k,
                n,
                Epilogue::default(),
            );
            assert_eq!(o88, gold88, "i8i8 thread count {t}");
        }
        set_threads(0);
    }

    #[test]
    fn packed_panels_wrapper_dispatches_every_precision() {
        let (m, k, n) = (12, 18, 20);
        let a = random(m * k, 41);
        let b = random(k * n, 42);
        for p in [
            Precision::F32,
            Precision::F16,
            Precision::Int8,
            Precision::Int8Act,
        ] {
            let panels = PackedPanels::pack(p, &b, k, n);
            assert_eq!(panels.precision(), p);
            assert!(panels.bytes() > 0);
            let mut out = vec![0.0f32; m * n];
            panels.gemm(&a, &mut out, m, k, n, Epilogue::default());
            let want = gold_gemm(&a, &b, m, k, n, Epilogue::default());
            let amax = want.iter().fold(0.0f32, |x, &v| x.max(v.abs()));
            // Whole-int8 also quantizes the activations, so its band is
            // wider than the weight-only precisions'.
            let tol = match p {
                Precision::Int8Act => 0.08 * amax + 1e-4,
                _ => 0.02 * amax + 1e-4,
            };
            for (g, w) in out.iter().zip(&want) {
                assert!((g - w).abs() <= tol, "{p:?}: {g} vs {w}");
            }
            // Dispatch-time quantization is deterministic: a second run is
            // bit-identical.
            let mut again = vec![0.0f32; m * n];
            panels.gemm(&a, &mut again, m, k, n, Epilogue::default());
            assert_eq!(out, again, "{p:?}");
        }
        // Bytes ordering: f32 > f16 > int8 panels (+ scales still smaller).
        let b32 = PackedPanels::pack(Precision::F32, &b, k, n).bytes();
        let b16 = PackedPanels::pack(Precision::F16, &b, k, n).bytes();
        let b8 = PackedPanels::pack(Precision::Int8, &b, k, n).bytes();
        assert_eq!(b16 * 2, b32);
        assert!(b8 < b16);
    }

    #[test]
    fn zero_k_and_empty_shapes_are_safe() {
        let ep = Epilogue::default();
        let mut out = vec![1.0f32; 6];
        gemm_prepacked_f16(&[], &[], &mut out, 3, 0, 2, ep);
        assert!(out.iter().all(|&v| v == 0.0));
        let mut out8 = vec![1.0f32; 6];
        gemm_prepacked_i8(&[], &[], &[0.0; 16], &mut out8, 3, 0, 2, ep);
        assert!(out8.iter().all(|&v| v == 0.0));
        let mut out88 = vec![1.0f32; 6];
        gemm_prepacked_i8i8(
            &[],
            &[1.0; 3],
            &[0; 3],
            &[],
            &[],
            &[],
            I8I8_GROUP_SIZE,
            &mut out88,
            3,
            0,
            2,
            ep,
        );
        assert!(out88.iter().all(|&v| v == 0.0));
    }
}
