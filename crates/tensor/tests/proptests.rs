//! Property-based tests for the tensor kernels.

use ff_tensor::{col2im, im2col, matmul, Conv2dGeometry, Padding, Tensor};
use proptest::prelude::*;

fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    proptest::collection::vec(-10.0f32..10.0, n)
        .prop_map(move |data| Tensor::from_vec(dims.clone(), data))
}

/// Deterministic random tensor for shape-parameterized properties.
fn tensor_strategy_sample(dims: Vec<usize>, seed: u64) -> Tensor {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    Tensor::from_vec(dims, (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect())
}

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = (a.dims()[0], a.dims()[1], b.dims()[1]);
    let mut out = Tensor::zeros(vec![m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += (a.at2(i, kk) * b.at2(kk, j)) as f64;
            }
            out.data_mut()[i * n + j] = acc as f32;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_naive(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec(vec![m, k], (0..m * k).map(|_| rng.gen_range(-5.0..5.0)).collect());
        let b = Tensor::from_vec(vec![k, n], (0..k * n).map(|_| rng.gen_range(-5.0..5.0)).collect());
        prop_assert!(matmul(&a, &b).approx_eq(&naive_matmul(&a, &b), 1e-2));
    }

    /// The packed (B-panel, register-tiled) path engages above eight rows;
    /// odd shapes hit every remainder case of the micro-kernel tiling.
    #[test]
    fn packed_gemm_matches_naive(
        m in 8usize..48,
        k in 1usize..40,
        n in 1usize..40,
    ) {
        let a = tensor_strategy_sample(vec![m, k], (m * 31 + k) as u64);
        let b = tensor_strategy_sample(vec![k, n], (k * 17 + n) as u64);
        prop_assert!(matmul(&a, &b).approx_eq(&naive_matmul(&a, &b), 1e-2));
    }

    /// Arbitrary tensors from the value strategy multiply correctly against
    /// the identity (exercises `tensor_strategy`'s shape plumbing too).
    #[test]
    fn strategy_tensors_times_identity(
        t in tensor_strategy(vec![9, 13]),
    ) {
        prop_assert!(matmul(&t, &Tensor::eye(13)).approx_eq(&t, 1e-6));
    }

    #[test]
    fn gemm_identity(m in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec(vec![m, n], (0..m * n).map(|_| rng.gen_range(-5.0..5.0)).collect());
        prop_assert!(matmul(&a, &Tensor::eye(n)).approx_eq(&a, 1e-6));
    }

    #[test]
    fn gemm_distributes_over_addition(m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut gen = |r, c| {
            let n_el: usize = r * c;
            Tensor::from_vec(vec![r, c], (0..n_el).map(|_| rng.gen_range(-2.0..2.0)).collect())
        };
        let a = gen(m, k);
        let b1 = gen(k, n);
        let b2 = gen(k, n);
        let lhs = matmul(&a, &b1.zip_map(&b2, |x, y| x + y));
        let rhs = matmul(&a, &b1).zip_map(&matmul(&a, &b2), |x, y| x + y);
        prop_assert!(lhs.approx_eq(&rhs, 1e-2));
    }

    #[test]
    fn im2col_col2im_adjoint(
        h in 3usize..9, w in 3usize..9, c in 1usize..4,
        k in 1usize..4, stride in 1usize..3, seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let geo = Conv2dGeometry::resolve((h, w, c), (k, k), stride, Padding::Same);
        let x = Tensor::from_vec(vec![h, w, c], (0..h * w * c).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let yn = geo.positions() * geo.fan_in();
        let y = Tensor::from_vec(vec![geo.positions(), geo.fan_in()], (0..yn).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let lhs: f32 = im2col(&x, &geo).data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(col2im(&y, &geo).data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn crop_within_bounds_preserves_values(
        h in 2usize..10, w in 2usize..10, c in 1usize..4,
        fh in 0.0f64..1.0, fw in 0.0f64..1.0,
    ) {
        let x = Tensor::from_vec(vec![h, w, c], (0..h * w * c).map(|i| i as f32).collect());
        let h0 = ((h - 1) as f64 * fh) as usize;
        let w0 = ((w - 1) as f64 * fw) as usize;
        let cropped = x.crop3(h0, h, w0, w);
        prop_assert_eq!(cropped.dims(), &[h - h0, w - w0, c]);
        for y in 0..h - h0 {
            for xx in 0..w - w0 {
                for ch in 0..c {
                    prop_assert_eq!(cropped.at3(y, xx, ch), x.at3(y + h0, xx + w0, ch));
                }
            }
        }
    }

    #[test]
    fn same_padding_output_size(h in 1usize..64, w in 1usize..64, k in 1usize..6, s in 1usize..4) {
        let g = Conv2dGeometry::resolve((h, w, 1), (k, k), s, Padding::Same);
        prop_assert_eq!(g.out_h, h.div_ceil(s));
        prop_assert_eq!(g.out_w, w.div_ceil(s));
    }
}
