//! Threshold sweeps: trace the accuracy/bandwidth trade-off by varying the
//! microclassifier's decision threshold (used by Figures 4 and 7 to pick
//! operating points).

use serde::{Deserialize, Serialize};

use crate::{ranges_from_labels, score_events, EventScore, Range, RecallWeights};

/// One operating point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Decision threshold on the classifier probability.
    pub threshold: f64,
    /// Scores at this threshold.
    pub score: EventScore,
}

/// Sweeps thresholds over per-frame probabilities, scoring each operating
/// point against ground-truth events.
///
/// `thresholds` is typically a dense grid like `(1..100).map(|t| t as f64 / 100.0)`.
///
/// # Panics
///
/// Panics if `probs.len() != gt_labels.len()`.
pub fn sweep_thresholds(
    probs: &[f32],
    gt_labels: &[bool],
    thresholds: impl IntoIterator<Item = f64>,
    w: RecallWeights,
) -> Vec<PrPoint> {
    assert_eq!(
        probs.len(),
        gt_labels.len(),
        "probability/label length mismatch"
    );
    let gt: Vec<Range> = ranges_from_labels(gt_labels);
    thresholds
        .into_iter()
        .map(|threshold| {
            let predicted: Vec<bool> = probs.iter().map(|&p| p as f64 >= threshold).collect();
            let pred_ranges = ranges_from_labels(&predicted);
            PrPoint {
                threshold,
                score: score_events(&gt, &pred_ranges, w),
            }
        })
        .collect()
}

/// Picks the sweep point with the best F1.
pub fn best_f1(points: &[PrPoint]) -> Option<&PrPoint> {
    points
        .iter()
        .max_by(|a, b| a.score.f1.total_cmp(&b.score.f1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_monotone_prediction_counts() {
        let probs = [0.1f32, 0.9, 0.5, 0.8, 0.2];
        let gt = [false, true, false, true, false];
        let pts = sweep_thresholds(&probs, &gt, [0.05, 0.5, 0.95], RecallWeights::default());
        // Higher thresholds never predict more frames.
        assert!(pts[0].score.predicted_frames >= pts[1].score.predicted_frames);
        assert!(pts[1].score.predicted_frames >= pts[2].score.predicted_frames);
    }

    #[test]
    fn perfect_separable_probs_reach_f1_one() {
        let probs = [0.9f32, 0.95, 0.1, 0.05, 0.9];
        let gt = [true, true, false, false, true];
        let pts = sweep_thresholds(
            &probs,
            &gt,
            (1..20).map(|t| t as f64 / 20.0),
            RecallWeights::default(),
        );
        let best = best_f1(&pts).unwrap();
        assert!((best.score.f1 - 1.0).abs() < 1e-9, "{best:?}");
    }

    #[test]
    fn best_f1_empty_is_none() {
        assert!(best_f1(&[]).is_none());
    }
}
