//! Event-level evaluation metrics from paper §4.2.
//!
//! FilterForward is event-centric, so the paper adopts a range-based recall
//! (after Lee et al., "Precision and recall for range-based anomaly
//! detection", SysML 2018) combined with standard frame precision:
//!
//! * **EventRecallᵢ** `= α·Existenceᵢ + β·Overlapᵢ` with α = 0.9, β = 0.1 —
//!   detecting *at least one frame* of an event matters far more than
//!   capturing all of it, because the datacenter can demand-fetch context.
//! * **Precision** = fraction of predicted-positive frames that are true
//!   positives — the fraction of upload bandwidth spent on useful frames.
//! * **Event F1** = harmonic mean of the two: "a measure of end-to-end
//!   event detection accuracy".

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

mod pr;

pub use pr::{best_f1, sweep_thresholds, PrPoint};

/// A half-open frame range `[start, end)`. Mirrors
/// `ff_data::EventRange` structurally; redefined here so `ff-eval` stays
/// dependency-free (both convert via [`From`] tuples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Range {
    /// First frame.
    pub start: usize,
    /// One past the last frame.
    pub end: usize,
}

impl Range {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "inverted range {start}..{end}");
        Range { start, end }
    }

    /// Length in frames.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Overlap length with another range.
    pub fn intersect_len(&self, other: &Range) -> usize {
        self.end
            .min(other.end)
            .saturating_sub(self.start.max(other.start))
    }
}

impl From<(usize, usize)> for Range {
    fn from((start, end): (usize, usize)) -> Self {
        Range::new(start, end)
    }
}

/// Weights for the event recall components. Paper: α = 0.9, β = 0.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecallWeights {
    /// Weight of detecting ≥ 1 frame of the event.
    pub alpha: f64,
    /// Weight of the detected fraction of the event.
    pub beta: f64,
}

impl Default for RecallWeights {
    fn default() -> Self {
        RecallWeights {
            alpha: 0.9,
            beta: 0.1,
        }
    }
}

/// Per-event recall: `α·Existenceᵢ + β·Overlapᵢ`.
///
/// `Existenceᵢ` is 1 if any predicted range touches the event;
/// `Overlapᵢ = Σⱼ |Intersect(Rᵢ, Pⱼ)| / |Rᵢ|`.
pub fn event_recall(gt: &Range, predicted: &[Range], w: RecallWeights) -> f64 {
    if gt.is_empty() {
        return 0.0;
    }
    let overlap_frames: usize = predicted.iter().map(|p| gt.intersect_len(p)).sum();
    let existence = if overlap_frames > 0 { 1.0 } else { 0.0 };
    let overlap = (overlap_frames as f64 / gt.len() as f64).min(1.0);
    w.alpha * existence + w.beta * overlap
}

/// Aggregate evaluation of predicted positive frames against ground-truth
/// events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventScore {
    /// Mean per-event recall.
    pub recall: f64,
    /// Frame-level precision (`TP frames / predicted frames`); 1.0 when
    /// nothing is predicted (no bandwidth wasted).
    pub precision: f64,
    /// Harmonic mean of `recall` and `precision`.
    pub f1: f64,
    /// Number of ground-truth events.
    pub gt_events: usize,
    /// Number of predicted positive frames.
    pub predicted_frames: usize,
    /// Number of true-positive frames.
    pub true_positive_frames: usize,
}

/// Scores a prediction given ground-truth event ranges and predicted event
/// ranges over the same frame axis.
///
/// Follows §4.2 exactly: recall is the mean `EventRecallᵢ` over ground
/// truth events; precision is standard frame precision. With no ground
/// truth events, recall is defined as 1 (nothing to find).
pub fn score_events(gt: &[Range], predicted: &[Range], w: RecallWeights) -> EventScore {
    let recall = if gt.is_empty() {
        1.0
    } else {
        gt.iter()
            .map(|g| event_recall(g, predicted, w))
            .sum::<f64>()
            / gt.len() as f64
    };
    let predicted_frames: usize = predicted.iter().map(Range::len).sum();
    let true_positive_frames: usize = predicted
        .iter()
        .map(|p| gt.iter().map(|g| g.intersect_len(p)).sum::<usize>())
        .sum();
    let precision = if predicted_frames == 0 {
        1.0
    } else {
        true_positive_frames as f64 / predicted_frames as f64
    };
    let f1 = if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    };
    EventScore {
        recall,
        precision,
        f1,
        gt_events: gt.len(),
        predicted_frames,
        true_positive_frames,
    }
}

/// Convenience: scores per-frame boolean predictions against ground truth
/// labels by first segmenting both into ranges.
pub fn score_labels(gt: &[bool], predicted: &[bool], w: RecallWeights) -> EventScore {
    assert_eq!(gt.len(), predicted.len(), "label stream length mismatch");
    score_events(&ranges_from_labels(gt), &ranges_from_labels(predicted), w)
}

/// Segments a boolean stream into maximal positive ranges.
pub fn ranges_from_labels(labels: &[bool]) -> Vec<Range> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, &l) in labels.iter().enumerate() {
        match (l, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                out.push(Range::new(s, i));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        out.push(Range::new(s, labels.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> RecallWeights {
        RecallWeights::default()
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let gt = vec![Range::new(5, 15), Range::new(30, 40)];
        let s = score_events(&gt, &gt.clone(), w());
        assert!((s.recall - 1.0).abs() < 1e-9);
        assert!((s.precision - 1.0).abs() < 1e-9);
        assert!((s.f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_frame_detection_earns_alpha() {
        // Detecting one frame of a 100-frame event: existence (0.9) plus
        // 0.1 · 1/100.
        let gt = [Range::new(0, 100)];
        let pred = [Range::new(50, 51)];
        let r = event_recall(&gt[0], &pred, w());
        assert!((r - (0.9 + 0.1 * 0.01)).abs() < 1e-9);
    }

    #[test]
    fn miss_scores_zero_recall() {
        let gt = [Range::new(0, 10)];
        let pred = [Range::new(20, 30)];
        assert_eq!(event_recall(&gt[0], &pred, w()), 0.0);
        let s = score_events(&gt, &pred, w());
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn false_positives_hurt_precision_not_recall() {
        let gt = [Range::new(0, 10)];
        let pred = [Range::new(0, 10), Range::new(50, 60)];
        let s = score_events(&gt, &pred, w());
        assert!((s.recall - 1.0).abs() < 1e-9);
        assert!((s.precision - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_predictions_means_full_precision() {
        let gt = [Range::new(0, 10)];
        let s = score_events(&gt, &[], w());
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn no_ground_truth_means_full_recall() {
        let s = score_events(&[], &[Range::new(0, 5)], w());
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 0.0);
    }

    #[test]
    fn recall_bounded_in_unit_interval() {
        // Even with duplicated overlapping predictions, Overlap clamps.
        let gt = Range::new(0, 10);
        let pred = vec![Range::new(0, 10); 5];
        let r = event_recall(&gt, &pred, w());
        assert!(r <= 1.0 + 1e-9, "{r}");
    }

    #[test]
    fn score_labels_matches_manual_segmentation() {
        let gt = [false, true, true, false, false, true];
        let pr = [false, true, false, false, true, true];
        let s1 = score_labels(&gt, &pr, w());
        let s2 = score_events(
            &[Range::new(1, 3), Range::new(5, 6)],
            &[Range::new(1, 2), Range::new(4, 6)],
            w(),
        );
        assert_eq!(s1, s2);
    }

    #[test]
    fn paper_weights_prioritize_existence() {
        // An MC that catches 1 frame of every event beats one that catches
        // 90% of half the events and misses the other half.
        let gt = vec![Range::new(0, 100), Range::new(200, 300)];
        let catch_all_barely = [Range::new(0, 1), Range::new(200, 201)];
        let catch_half_fully = [Range::new(0, 90)];
        let a = score_events(&gt, &catch_all_barely, w());
        let b = score_events(&gt, &catch_half_fully, w());
        assert!(a.recall > b.recall, "{} vs {}", a.recall, b.recall);
    }
}
