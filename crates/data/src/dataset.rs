//! Dataset specifications: Jackson-like and Roadway-like synthetic videos.
//!
//! The paper uses the first of two same-camera videos for training and the
//! second for testing (§4.1). Here, "two videos from the same camera on
//! different days" becomes two simulator runs with the same configuration
//! but different traffic seeds — identical background and geometry,
//! different object arrivals.

use ff_video::scene::{Scene, SceneConfig};
use ff_video::{Frame, Resolution};
use serde::{Deserialize, Serialize};

use crate::tasks::Task;

/// Which of the two videos to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// The first video (training).
    Train,
    /// The second video (testing).
    Test,
}

/// A dataset: scene configuration + task + split sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name ("jackson" / "roadway").
    pub name: &'static str,
    /// Scene configuration (resolution already at simulation scale).
    pub scene: SceneConfig,
    /// The dataset's task.
    pub task: Task,
    /// Frames in the training video.
    pub train_frames: usize,
    /// Frames in the test video.
    pub test_frames: usize,
    /// The paper's full resolution for this dataset, used when projecting
    /// compute costs to paper scale (DESIGN.md S6).
    pub paper_resolution: Resolution,
    /// Traffic seed offset distinguishing the two videos.
    pub test_seed_offset: u64,
}

impl DatasetSpec {
    /// The Jackson-like dataset: 16:9 traffic-camera geometry, *Pedestrian*
    /// task, ≈16 % positive frames, ≈65-frame events.
    ///
    /// `scale` is the linear downscale from 1920×1080 (10 ⇒ 192×108).
    /// `frames` sets both splits' lengths.
    pub fn jackson_like(scale: usize, frames: usize, seed: u64) -> DatasetSpec {
        assert!(
            scale >= 4,
            "scales below 4 exceed pure-Rust inference budgets"
        );
        let resolution = Resolution::new(1920 / scale, 1080 / scale);
        DatasetSpec {
            name: "jackson",
            scene: SceneConfig {
                resolution,
                fps: 15.0,
                seed,
                // rate·crossing ≈ 0.0024 crossers/frame × ~65-frame
                // crossings ⇒ ≈16 % positive frames (Figure 3b).
                pedestrian_rate: 0.012,
                crossing_fraction: 0.20,
                red_fraction: 0.15,
                car_rate: 0.010,
                cyclist_rate: 0.002,
                dog_rate: 0.001,
                noise_level: 1.5,
                speed_multiplier: 2.0,
            },
            task: Task::pedestrian(),
            train_frames: frames,
            test_frames: frames,
            paper_resolution: Resolution::new(1920, 1080),
            test_seed_offset: 0x0DD_DA5,
        }
    }

    /// The Roadway-like dataset: 2048×850 urban-street geometry, *People
    /// with red* task, ≈22 % positive frames.
    pub fn roadway_like(scale: usize, frames: usize, seed: u64) -> DatasetSpec {
        assert!(
            scale >= 4,
            "scales below 4 exceed pure-Rust inference budgets"
        );
        let resolution = Resolution::new(2048 / scale, 850 / scale);
        DatasetSpec {
            name: "roadway",
            scene: SceneConfig {
                resolution,
                fps: 15.0,
                seed: seed.wrapping_add(0xB0AD),
                // red pedestrians ≈ 0.0026/frame × ~90-frame transits
                // ⇒ ≈22 % positive frames (Figure 3b), with enough
                // distinct events for event-recall statistics at
                // simulation-sized videos.
                pedestrian_rate: 0.022,
                crossing_fraction: 0.10,
                red_fraction: 0.12,
                car_rate: 0.012,
                cyclist_rate: 0.003,
                dog_rate: 0.001,
                noise_level: 1.5,
                speed_multiplier: 4.0,
            },
            task: Task::people_with_red(),
            train_frames: frames,
            test_frames: frames,
            paper_resolution: Resolution::new(2048, 850),
            test_seed_offset: 0x0DD_DA6,
        }
    }

    /// Simulation-scale resolution.
    pub fn resolution(&self) -> Resolution {
        self.scene.resolution
    }

    /// Opens one split as a lazy labeled video stream.
    pub fn open(&self, split: Split) -> LabeledVideo {
        let mut scene_cfg = self.scene;
        let frames = match split {
            Split::Train => self.train_frames,
            Split::Test => {
                scene_cfg.seed = scene_cfg.seed.wrapping_add(self.test_seed_offset);
                self.test_frames
            }
        };
        LabeledVideo {
            scene: Scene::new(scene_cfg),
            task: self.task,
            remaining: frames,
        }
    }

    /// Collects one split's ground-truth labels without keeping frames.
    pub fn labels(&self, split: Split) -> Vec<bool> {
        self.open(split).map(|lf| lf.label).collect()
    }
}

/// One frame with its ground-truth task label.
#[derive(Debug, Clone)]
pub struct LabeledFrame {
    /// Frame index within the split.
    pub index: usize,
    /// The rendered frame.
    pub frame: Frame,
    /// Ground-truth task label.
    pub label: bool,
    /// Full object annotations (for debugging and richer tasks).
    pub truth: Vec<ff_video::scene::ObjectState>,
}

/// A lazily-generated labeled video stream.
#[derive(Debug)]
pub struct LabeledVideo {
    scene: Scene,
    task: Task,
    remaining: usize,
}

impl LabeledVideo {
    /// Frames left to produce.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The stream's task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// The stream's resolution.
    pub fn resolution(&self) -> Resolution {
        self.scene.config().resolution
    }
}

impl Iterator for LabeledVideo {
    type Item = LabeledFrame;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let index = self.scene.frame_index() as usize;
        let (frame, truth) = self.scene.step();
        let label = self.task.label(&truth, frame.resolution());
        Some(LabeledFrame {
            index,
            frame,
            label,
            truth,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for LabeledVideo {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events_from_labels;

    #[test]
    fn splits_share_geometry_but_differ_in_traffic() {
        let spec = DatasetSpec::jackson_like(20, 50, 1);
        let train: Vec<_> = spec.open(Split::Train).collect();
        let test: Vec<_> = spec.open(Split::Test).collect();
        assert_eq!(train.len(), 50);
        assert_eq!(test.len(), 50);
        assert_eq!(train[0].frame.resolution(), test[0].frame.resolution());
        let any_diff = train.iter().zip(&test).any(|(a, b)| a.frame != b.frame);
        assert!(any_diff, "train and test videos are identical");
    }

    #[test]
    fn deterministic_regeneration() {
        let spec = DatasetSpec::roadway_like(20, 30, 5);
        let a: Vec<bool> = spec.open(Split::Train).map(|f| f.label).collect();
        let b = spec.labels(Split::Train);
        assert_eq!(a, b);
    }

    #[test]
    fn jackson_positive_fraction_near_paper() {
        // Figure 3b: 95 238 / 600 000 ≈ 16 % positive frames. Accept a wide
        // band at small sample sizes.
        let spec = DatasetSpec::jackson_like(16, 6000, 42);
        let labels = spec.labels(Split::Train);
        let frac = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
        assert!((0.05..0.35).contains(&frac), "positive fraction {frac}");
        let events = events_from_labels(&labels);
        assert!(events.len() >= 5, "too few events: {}", events.len());
    }

    #[test]
    fn roadway_positive_fraction_near_paper() {
        // Figure 3b: 71 296 / 324 009 ≈ 22 % positive frames.
        let spec = DatasetSpec::roadway_like(16, 6000, 42);
        let labels = spec.labels(Split::Train);
        let frac = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
        assert!((0.08..0.40).contains(&frac), "positive fraction {frac}");
    }

    #[test]
    fn resolutions_match_paper_aspect() {
        let j = DatasetSpec::jackson_like(10, 10, 0);
        assert_eq!(j.resolution(), Resolution::new(192, 108));
        assert_eq!(j.paper_resolution, Resolution::new(1920, 1080));
        let r = DatasetSpec::roadway_like(10, 10, 0);
        assert_eq!(r.resolution(), Resolution::new(204, 85));
    }

    #[test]
    fn labeled_frames_index_sequentially() {
        let spec = DatasetSpec::jackson_like(20, 10, 3);
        let idx: Vec<usize> = spec.open(Split::Train).map(|f| f.index).collect();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }
}
