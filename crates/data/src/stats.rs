//! Dataset statistics — the rows of the paper's Figure 3b.

use serde::{Deserialize, Serialize};

use crate::{events_from_labels, DatasetSpec, Split};

/// The Figure 3b table for one dataset split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Simulation-scale resolution (e.g. "192x108").
    pub resolution: String,
    /// Paper-scale resolution this dataset mirrors.
    pub paper_resolution: String,
    /// Frames per second.
    pub fps: f64,
    /// Total frames.
    pub frames: usize,
    /// Task name.
    pub task: String,
    /// Frames whose ground-truth label is positive.
    pub event_frames: usize,
    /// Number of distinct ground-truth events.
    pub unique_events: usize,
}

impl DatasetStats {
    /// Computes statistics for one split by running the simulator.
    pub fn compute(spec: &DatasetSpec, split: Split) -> DatasetStats {
        let labels = spec.labels(split);
        let events = events_from_labels(&labels);
        DatasetStats {
            name: spec.name.to_string(),
            resolution: spec.resolution().to_string(),
            paper_resolution: spec.paper_resolution.to_string(),
            fps: spec.scene.fps,
            frames: labels.len(),
            task: spec.task.name().to_string(),
            event_frames: labels.iter().filter(|&&l| l).count(),
            unique_events: events.len(),
        }
    }

    /// Positive-frame fraction.
    pub fn positive_fraction(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.event_frames as f64 / self.frames as f64
        }
    }

    /// Mean event length in frames.
    pub fn mean_event_len(&self) -> f64 {
        if self.unique_events == 0 {
            0.0
        } else {
            self.event_frames as f64 / self.unique_events as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_consistent() {
        let spec = DatasetSpec::jackson_like(20, 800, 9);
        let s = DatasetStats::compute(&spec, Split::Test);
        assert_eq!(s.frames, 800);
        assert!(s.event_frames <= s.frames);
        assert!(s.unique_events <= s.event_frames.max(1));
        assert_eq!(s.task, "Pedestrian");
        assert!(s.positive_fraction() <= 1.0);
    }

    #[test]
    fn mean_event_len_zero_when_no_events() {
        let s = DatasetStats {
            name: "x".into(),
            resolution: "1x1".into(),
            paper_resolution: "1x1".into(),
            fps: 15.0,
            frames: 10,
            task: "t".into(),
            event_frames: 0,
            unique_events: 0,
        };
        assert_eq!(s.mean_event_len(), 0.0);
        assert_eq!(s.positive_fraction(), 0.0);
    }
}
