//! Ground-truth events: maximal runs of consecutive positive frames
//! (paper §3.5: "each contiguous segment of positively-classified frames"
//! is one event; the same definition applies to ground truth).

use serde::{Deserialize, Serialize};

/// A half-open frame range `[start, end)` during which the task predicate
/// holds continuously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventRange {
    /// First frame of the event.
    pub start: usize,
    /// One past the last frame.
    pub end: usize,
}

impl EventRange {
    /// Number of frames in the event.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `frame` falls inside the event.
    pub fn contains(&self, frame: usize) -> bool {
        (self.start..self.end).contains(&frame)
    }

    /// Overlap in frames with another range.
    pub fn intersect_len(&self, other: &EventRange) -> usize {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        e.saturating_sub(s)
    }
}

/// Extracts maximal positive runs from a per-frame label stream.
pub fn events_from_labels(labels: &[bool]) -> Vec<EventRange> {
    let mut events = Vec::new();
    let mut start = None;
    for (i, &l) in labels.iter().enumerate() {
        match (l, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                events.push(EventRange { start: s, end: i });
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        events.push(EventRange {
            start: s,
            end: labels.len(),
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_runs() {
        let labels = [false, true, true, false, true, false, false, true];
        let ev = events_from_labels(&labels);
        assert_eq!(
            ev,
            vec![
                EventRange { start: 1, end: 3 },
                EventRange { start: 4, end: 5 },
                EventRange { start: 7, end: 8 },
            ]
        );
    }

    #[test]
    fn all_positive_is_one_event() {
        assert_eq!(
            events_from_labels(&[true; 5]),
            vec![EventRange { start: 0, end: 5 }]
        );
    }

    #[test]
    fn all_negative_is_no_events() {
        assert!(events_from_labels(&[false; 5]).is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(events_from_labels(&[]).is_empty());
    }

    #[test]
    fn intersect_len() {
        let a = EventRange { start: 2, end: 10 };
        let b = EventRange { start: 8, end: 12 };
        assert_eq!(a.intersect_len(&b), 2);
        assert_eq!(b.intersect_len(&a), 2);
        let c = EventRange { start: 10, end: 11 };
        assert_eq!(a.intersect_len(&c), 0);
    }

    #[test]
    fn frames_in_events_match_positive_count() {
        // Property: Σ event lengths == # positive labels.
        let labels: Vec<bool> = (0..200).map(|i| (i / 7) % 3 == 0).collect();
        let ev = events_from_labels(&labels);
        let total: usize = ev.iter().map(|e| e.len()).sum();
        assert_eq!(total, labels.iter().filter(|&&l| l).count());
    }
}
