//! Synthetic analogues of the paper's two evaluation datasets (Figure 3).
//!
//! | | Jackson (paper) | Roadway (paper) |
//! |---|---|---|
//! | Resolution | 1920×1080 | 2048×850 |
//! | Frame rate | 15 fps | 15 fps |
//! | Task | *Pedestrian* (in crosswalk) | *People with red* |
//! | Positive frames | ≈16 % | ≈22 % |
//!
//! This crate builds deterministic [`ff_video::scene`] configurations whose
//! geometry, frame rate, event rarity and task semantics mirror those
//! datasets at a configurable linear scale (default 1/10 — see DESIGN.md
//! S6), and provides the task predicates, ground-truth event extraction,
//! spatial crops (Figure 3c) and the dataset statistics table (Figure 3b).

#![warn(missing_docs)]

mod dataset;
mod events;
mod stats;
pub mod tasks;

pub use dataset::{DatasetSpec, LabeledFrame, LabeledVideo, Split};
pub use events::{events_from_labels, EventRange};
pub use stats::DatasetStats;
pub use tasks::{CropRect, Task, TaskKind};
