//! Task definitions: the binary predicates applications install MCs for,
//! and their optional spatial crops (paper Figure 3c).

use ff_video::scene::{ObjectKind, ObjectState, SceneGeometry};
use ff_video::Resolution;
use serde::{Deserialize, Serialize};

/// The two evaluation tasks of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Jackson dataset: "when pedestrians appear in the crosswalks".
    PedestrianInCrosswalk,
    /// Roadway dataset: "when passing pedestrians are wearing red articles
    /// of clothing or carrying red parcels".
    PersonWithRed,
}

/// A fractional crop rectangle (relative to frame size), matching Figure 3c
/// after normalizing the paper's pixel coordinates by its resolutions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CropRect {
    /// Left edge fraction.
    pub x0: f64,
    /// Top edge fraction.
    pub y0: f64,
    /// Right edge fraction.
    pub x1: f64,
    /// Bottom edge fraction.
    pub y1: f64,
}

impl CropRect {
    /// Converts to pixel coordinates for a resolution, guaranteeing a
    /// non-empty rectangle.
    pub fn to_pixels(&self, res: Resolution) -> (usize, usize, usize, usize) {
        let x0 = (self.x0 * res.width as f64).floor() as usize;
        let y0 = (self.y0 * res.height as f64).floor() as usize;
        let x1 = ((self.x1 * res.width as f64).ceil() as usize)
            .min(res.width)
            .max(x0 + 1);
        let y1 = ((self.y1 * res.height as f64).ceil() as usize)
            .min(res.height)
            .max(y0 + 1);
        (x0, y0, x1, y1)
    }
}

/// A deployed task: predicate kind plus optional spatial crop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Which predicate this task detects.
    pub kind: TaskKind,
    /// Optional crop (Figure 3c); `None` disables spatial cropping.
    pub crop: Option<CropRect>,
}

impl Task {
    /// The *Pedestrian* task with its paper crop: the bottom half of the
    /// frame ("the trees and sky are unnecessary") — (0, 539)–(1919, 1079)
    /// at 1920×1080.
    pub fn pedestrian() -> Task {
        Task {
            kind: TaskKind::PedestrianInCrosswalk,
            crop: Some(CropRect {
                x0: 0.0,
                y0: 539.0 / 1080.0,
                x1: 1.0,
                y1: 1.0,
            }),
        }
    }

    /// The *People with red* task with its paper crop: the street and
    /// sidewalk area (59 % of the frame) — (0, 315)–(2047, 819) at
    /// 2048×850.
    pub fn people_with_red() -> Task {
        Task {
            kind: TaskKind::PersonWithRed,
            crop: Some(CropRect {
                x0: 0.0,
                y0: 315.0 / 850.0,
                x1: 1.0,
                y1: 819.0 / 850.0,
            }),
        }
    }

    /// Human-readable task name, as used in Figure 3b.
    pub fn name(&self) -> &'static str {
        match self.kind {
            TaskKind::PedestrianInCrosswalk => "Pedestrian",
            TaskKind::PersonWithRed => "People with red",
        }
    }

    /// Ground-truth label for one frame, from the simulator's annotations.
    ///
    /// * `PedestrianInCrosswalk`: some pedestrian is *standing in* the
    ///   crosswalk — feet (bbox bottom) on the road band, horizontal center
    ///   inside the crosswalk band. Sidewalk walkers passing behind the
    ///   crosswalk and vehicles driving over it are negatives.
    /// * `PersonWithRed`: some red-wearing pedestrian is visible in the
    ///   task's region of interest (non-red pedestrians and red cars are
    ///   negatives).
    pub fn label(&self, truth: &[ObjectState], res: Resolution) -> bool {
        let geo = SceneGeometry::for_resolution(res);
        match self.kind {
            TaskKind::PedestrianInCrosswalk => truth.iter().any(|o| {
                let (cx, _) = o.bbox.center();
                o.kind == ObjectKind::Pedestrian
                    && o.bbox.y1 >= geo.road_top
                    && o.bbox.y1 <= geo.road_bottom
                    && cx >= geo.crosswalk_x0
                    && cx < geo.crosswalk_x1
            }),
            TaskKind::PersonWithRed => {
                // ROI = the street and sidewalk band (the crop region).
                let crop = self.crop.unwrap_or(CropRect {
                    x0: 0.0,
                    y0: 0.0,
                    x1: 1.0,
                    y1: 1.0,
                });
                let (x0, y0, x1, y1) = crop.to_pixels(res);
                let region = ff_video::scene::BBox { x0, y0, x1, y1 };
                truth.iter().any(|o| {
                    o.kind == ObjectKind::Pedestrian
                        && o.wearing_red
                        && o.bbox.intersect_area(&region) > 0
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_video::scene::BBox;

    fn ped(bbox: BBox, red: bool) -> ObjectState {
        ObjectState {
            id: 0,
            kind: ObjectKind::Pedestrian,
            bbox,
            wearing_red: red,
            crossing: true,
        }
    }

    #[test]
    fn pedestrian_task_requires_crosswalk_overlap() {
        let res = Resolution::new(192, 108);
        let geo = SceneGeometry::for_resolution(res);
        let task = Task::pedestrian();
        let inside = geo.crosswalk_region();
        assert!(task.label(&[ped(inside, false)], res));
        // A pedestrian on the sidewalk band (below road) is a negative.
        let sidewalk = BBox {
            x0: 10,
            y0: geo.road_bottom + 2,
            x1: 14,
            y1: geo.sidewalk_bottom,
        };
        assert!(!task.label(&[ped(sidewalk, false)], res));
        // A car in the crosswalk is a negative.
        let car = ObjectState {
            id: 1,
            kind: ObjectKind::Car,
            bbox: inside,
            wearing_red: false,
            crossing: false,
        };
        assert!(!task.label(&[car], res));
    }

    #[test]
    fn red_task_requires_red_attribute() {
        let res = Resolution::new(204, 85);
        let task = Task::people_with_red();
        let (x0, y0, _, _) = task.crop.unwrap().to_pixels(res);
        let in_roi = BBox {
            x0: x0 + 5,
            y0: y0 + 5,
            x1: x0 + 9,
            y1: y0 + 15,
        };
        assert!(task.label(&[ped(in_roi, true)], res));
        assert!(!task.label(&[ped(in_roi, false)], res));
        // Red object above the ROI (e.g. on a facade) is a negative.
        let above = BBox {
            x0: 5,
            y0: 0,
            x1: 9,
            y1: y0.max(1),
        };
        assert!(!task.label(&[ped(above, true)], res));
    }

    #[test]
    fn paper_crop_fractions() {
        // Pedestrian: bottom half. People-with-red: 59 % of the frame.
        let p = Task::pedestrian().crop.unwrap();
        assert!((p.y0 - 0.499).abs() < 0.01);
        let r = Task::people_with_red().crop.unwrap();
        let coverage = (r.y1 - r.y0) * (r.x1 - r.x0);
        assert!((coverage - 0.59).abs() < 0.02, "coverage {coverage}");
    }

    #[test]
    fn crop_to_pixels_never_empty() {
        let tiny = CropRect {
            x0: 0.999,
            y0: 0.999,
            x1: 1.0,
            y1: 1.0,
        };
        let (x0, y0, x1, y1) = tiny.to_pixels(Resolution::new(10, 10));
        assert!(x1 > x0 && y1 > y0);
        assert!(x1 <= 10 && y1 <= 10);
    }

    #[test]
    fn empty_truth_is_negative() {
        let res = Resolution::new(192, 108);
        assert!(!Task::pedestrian().label(&[], res));
        assert!(!Task::people_with_red().label(&[], res));
    }
}
