//! Property-based tests for dataset generation and event extraction.

use ff_data::{events_from_labels, CropRect, DatasetSpec, Split};
use ff_video::Resolution;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Event extraction partitions the positive frames exactly.
    #[test]
    fn events_partition_positives(labels in proptest::collection::vec(any::<bool>(), 0..300)) {
        let events = events_from_labels(&labels);
        // Events are disjoint, ordered, non-empty.
        for w in events.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for e in &events {
            prop_assert!(!e.is_empty());
            for (f, &l) in labels.iter().enumerate().take(e.end).skip(e.start) {
                prop_assert!(l, "frame {}", f);
            }
            // Maximality: the frame before/after is negative or OOB.
            if e.start > 0 {
                prop_assert!(!labels[e.start - 1]);
            }
            if e.end < labels.len() {
                prop_assert!(!labels[e.end]);
            }
        }
        let total: usize = events.iter().map(|e| e.len()).sum();
        prop_assert_eq!(total, labels.iter().filter(|&&l| l).count());
    }

    /// Crop rectangles are valid at any resolution.
    #[test]
    fn crops_valid_at_any_resolution(w in 8usize..512, h in 8usize..512) {
        for crop in [
            ff_data::Task::pedestrian().crop.unwrap(),
            ff_data::Task::people_with_red().crop.unwrap(),
            CropRect { x0: 0.99, y0: 0.99, x1: 1.0, y1: 1.0 },
        ] {
            let (x0, y0, x1, y1) = crop.to_pixels(Resolution::new(w, h));
            prop_assert!(x0 < x1 && x1 <= w);
            prop_assert!(y0 < y1 && y1 <= h);
        }
    }

    /// Dataset label streams are deterministic and splits are independent
    /// of how much of the stream is consumed.
    #[test]
    fn label_prefix_stability(seed in 0u64..50, take in 10usize..60) {
        let long = DatasetSpec::jackson_like(20, 80, seed);
        let short = DatasetSpec::jackson_like(20, take, seed);
        let full = long.labels(Split::Train);
        let prefix = short.labels(Split::Train);
        prop_assert_eq!(&full[..take], prefix.as_slice());
    }
}

#[test]
fn both_datasets_have_positive_and_negative_frames() {
    for spec in [
        DatasetSpec::jackson_like(16, 4000, 42),
        DatasetSpec::roadway_like(16, 4000, 42),
    ] {
        for split in [Split::Train, Split::Test] {
            let labels = spec.labels(split);
            let pos = labels.iter().filter(|&&l| l).count();
            assert!(pos > 0, "{} {:?}: no positives", spec.name, split);
            assert!(
                pos < labels.len(),
                "{} {:?}: all positive",
                spec.name,
                split
            );
        }
    }
}
