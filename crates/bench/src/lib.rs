//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! FilterForward paper (see `DESIGN.md` §4 for the index) and writes both a
//! human-readable table to stdout and a CSV under `target/figures/`.

#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;

/// Returns the directory where figure CSVs are written, creating it.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()))
        .join("figures");
    std::fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

/// Writes CSV rows (first row = header) to `target/figures/<name>.csv`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = figures_dir().join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    path
}

/// Parses `--key value` style arguments with a default.
pub fn arg_usize(key: &str, default: usize) -> usize {
    arg_value(key).map_or(default, |v| v.parse().unwrap_or(default))
}

/// Parses a float argument.
pub fn arg_f64(key: &str, default: f64) -> f64 {
    arg_value(key).map_or(default, |v| v.parse().unwrap_or(default))
}

/// Whether a bare flag (e.g. `--quick`) is present.
pub fn arg_flag(key: &str) -> bool {
    std::env::args().any(|a| a == key)
}

fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Pretty-prints a ratio line used by the §4.3–§4.5 textual claims.
pub fn claim(label: &str, ours: f64, paper: &str) {
    println!("  {label}: measured {ours:.2} (paper: {paper})");
}

pub mod throughput;
