//! Development probe: verifies the end-to-end accuracy pathway — train a
//! localized MC on MobileNet taps and measure event F1 on the held-out
//! video. Not a paper figure; a fast sanity harness.

use ff_bench::{arg_f64, arg_flag, arg_usize};
use ff_core::evaluate::{mc_probs, score_probs};
use ff_core::pretrain::{pretrained_mobilenet, PretrainConfig};
use ff_core::train::{train_mc, TrainConfig};
use ff_core::{FeatureExtractor, McSpec};
use ff_data::{DatasetSpec, Split};
use ff_models::MobileNetConfig;

fn main() {
    let scale = arg_usize("--scale", 16);
    let frames = arg_usize("--frames", 1500);
    let alpha = arg_f64("--alpha", 0.5) as f32;
    let epochs = arg_usize("--epochs", 3);
    let lr = arg_f64("--lr", 1e-3) as f32;
    let pretrain_steps = arg_usize("--pretrain", 0);
    let tap = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--tap")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "conv4_2/sep".to_string());
    let t0 = std::time::Instant::now();

    let dataset = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--dataset")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "jackson".to_string());
    let arch = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--arch")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "localized".to_string());
    let data = if dataset == "roadway" {
        DatasetSpec::roadway_like(scale, frames, 42)
    } else {
        DatasetSpec::jackson_like(scale, frames, 42)
    };
    let mut spec = match arch.as_str() {
        "fullframe" => McSpec::full_frame("probe", 7),
        "windowed" => McSpec::windowed("probe", data.task.crop, 7),
        _ => McSpec::localized("probe", data.task.crop, 7),
    };
    if std::env::args().any(|a| a == "--tap") {
        spec.tap = tap.clone();
    }
    println!(
        "dataset={dataset} arch={arch} tap={} scale={scale} frames={frames} alpha={alpha}",
        spec.tap
    );

    let mn_cfg = MobileNetConfig::with_width(alpha);
    let mut extractor = if pretrain_steps > 0 {
        let net = pretrained_mobilenet(
            &mn_cfg,
            &PretrainConfig {
                steps: pretrain_steps,
                ..Default::default()
            },
        );
        println!(
            "pretrained {pretrain_steps} steps in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        FeatureExtractor::from_network(net, mn_cfg, vec![spec.tap.clone()])
    } else {
        FeatureExtractor::new(mn_cfg, vec![spec.tap.clone()])
    };

    // Calibrate folded batch-norms on a handful of unlabeled scene frames.
    let cal: Vec<_> = data
        .open(Split::Train)
        .take(8)
        .map(|lf| lf.frame.to_tensor())
        .collect();
    extractor.calibrate(&cal);
    println!("calibrated in {:.1}s", t0.elapsed().as_secs_f64());

    if arg_flag("--stats") {
        // Feature statistics: are different frames distinguishable?
        let mut video = data.open(Split::Train);
        let a = video.next().unwrap().frame.to_tensor();
        let b = video.nth(200).unwrap().frame.to_tensor();
        // extract() returns maps borrowing the extractor; clone the first
        // frame's tap to compare across two extractions.
        let ta = extractor.extract(&a).get(&spec.tap).clone();
        let fb = extractor.extract(&b);
        let (ta, tb) = (&ta, fb.get(&spec.tap));
        let mean = ta.mean();
        let max = ta.max();
        let diff: f32 = ta
            .data()
            .iter()
            .zip(tb.data())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / ta.len() as f32;
        let rel = diff / (mean.abs() + 1e-9);
        println!("tap {tap}: mean {mean:.4} max {max:.4} |Δ| {diff:.5} rel-Δ {rel:.4}");
    }

    let train_cfg = TrainConfig {
        epochs,
        lr,
        augment_shift_w: arg_usize("--aug", 0),
        max_cached: arg_usize("--cache", 1200),
        ..Default::default()
    };
    let trained = train_mc(&mut extractor, &spec, &data, &train_cfg);
    println!(
        "trained in {:.1}s, threshold {:.2}, losses {:?}",
        t0.elapsed().as_secs_f64(),
        trained.threshold,
        trained.loss_history
    );

    let mut model = trained.model;
    let eval_split = if arg_flag("--eval-train") {
        Split::Train
    } else {
        Split::Test
    };
    let test = data.open(eval_split).map(|lf| (lf.frame, lf.label));
    let (probs, labels) = mc_probs(&mut extractor, &spec, &mut model, test);
    if arg_flag("--dump") {
        let mut pos: Vec<f32> = probs
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l)
            .map(|(&p, _)| p)
            .collect();
        let mut neg: Vec<f32> = probs
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| !l)
            .map(|(&p, _)| p)
            .collect();
        pos.sort_by(f32::total_cmp);
        neg.sort_by(f32::total_cmp);
        let q = |v: &[f32], f: f64| {
            if v.is_empty() {
                f32::NAN
            } else {
                v[((v.len() - 1) as f64 * f) as usize]
            }
        };
        println!(
            "test probs: pos n={} q10={:.3} q50={:.3} q90={:.3} | neg n={} q50={:.3} q90={:.3} q99={:.3}",
            pos.len(), q(&pos, 0.1), q(&pos, 0.5), q(&pos, 0.9),
            neg.len(), q(&neg, 0.5), q(&neg, 0.9), q(&neg, 0.99)
        );
    }
    let score = score_probs(&probs, trained.threshold, spec.smoothing, &labels);
    println!(
        "test: events={} predicted_frames={} recall={:.3} precision={:.3} F1={:.3}  ({:.1}s total)",
        score.gt_events,
        score.predicted_frames,
        score.recall,
        score.precision,
        score.f1,
        t0.elapsed().as_secs_f64()
    );
}
