//! Regenerates Figure 4: average bandwidth use versus event F1 on the
//! Roadway dataset's People-with-red task, comparing:
//!
//! * **FilterForward** — filter on the edge against the *original* frames,
//!   re-encode only matched frames at a target bitrate, upload those.
//!   Sweeping the upload bitrate traces the FF curve (accuracy stays at
//!   the filter's F1; bandwidth scales with the re-encode quality).
//! * **Compress everything** — encode the *whole* stream at a low bitrate,
//!   upload it all, run the same microclassifier in the cloud on the
//!   *decoded* frames. Sweeping the stream bitrate traces the baseline
//!   curve (bandwidth is the full stream; accuracy degrades as
//!   quantization destroys the small red details).
//!
//! Prints the §4.3 claims: bandwidth reduction at the filter's operating
//! point and the F1 advantage at matched bandwidth. Bitrates are at
//! simulation scale; the paper-scale equivalents multiply by the pixel
//! ratio (DESIGN.md S6).
//!
//! Usage: `cargo run --release -p ff-bench --bin fig4_bandwidth
//!         [--scale 12] [--frames 3000] [--alpha 0.5] [--epochs 10] [--quick]`

use ff_bench::{arg_f64, arg_flag, arg_usize, claim, write_csv};
use ff_core::cloud::TranscodedStream;
use ff_core::evaluate::score_probs;
use ff_core::train::{train_mc, TrainConfig};
use ff_core::{FeatureExtractor, McKind, McModel, McSpec, SmoothingConfig};
use ff_data::{DatasetSpec, Split};
use ff_models::{MobileNetConfig, LAYER_FULL_FRAME_TAP, LAYER_LOCALIZED_TAP};
use ff_nn::Phase;
use ff_tensor::Tensor;

fn main() {
    let scale = arg_usize("--scale", 12);
    let frames = arg_usize("--frames", 3000);
    let alpha = arg_f64("--alpha", 0.5) as f32;
    let epochs = arg_usize("--epochs", 10);
    let quick = arg_flag("--quick");
    let frames = if quick { frames.min(1200) } else { frames };

    let data = DatasetSpec::roadway_like(scale, frames, 42);
    let res = data.resolution();
    let fps = data.scene.fps;
    // Pixel ratio to paper scale, for interpreting bitrates.
    let px_ratio = data.paper_resolution.pixels() as f64 / res.pixels() as f64;
    println!("Roadway {res} @ {fps} fps (paper-scale bitrate multiplier ≈ {px_ratio:.0}x)\n");

    let cfg = TrainConfig {
        epochs,
        lr: 2e-3,
        max_cached: 1600,
        augment_shift_w: 6,
        ..Default::default()
    };

    let mut rows = Vec::new();
    for (arch_name, kind) in [
        ("full_frame", McKind::FullFrame),
        ("localized", McKind::Localized),
    ] {
        println!("== {arch_name} MC");
        let mut extractor = FeatureExtractor::new(
            MobileNetConfig::with_width(alpha),
            vec![LAYER_LOCALIZED_TAP.into(), LAYER_FULL_FRAME_TAP.into()],
        );
        let cal: Vec<Tensor> = data
            .open(Split::Train)
            .take(8)
            .map(|lf| lf.frame.to_tensor())
            .collect();
        extractor.calibrate(&cal);

        let spec = match kind {
            McKind::FullFrame => McSpec::full_frame("red", 7),
            _ => McSpec::localized("red", data.task.crop, 7),
        };
        let trained = train_mc(&mut extractor, &spec, &data, &cfg);
        println!(
            "  trained: threshold {:.2}, final loss {:?}",
            trained.threshold,
            trained.loss_history.last()
        );
        let mut model = trained.model;
        let threshold = trained.threshold;
        let smoothing = SmoothingConfig::default();

        // ---- FilterForward series: edge filtering on original frames.
        // Probabilities on the original stream (edge-side decisions).
        let mut probs = Vec::new();
        let mut gt = Vec::new();
        for lf in data.open(Split::Test) {
            probs.push(prob_for(&mut extractor, &spec, &mut model, &lf.frame));
            gt.push(lf.label);
        }
        let ff_score = score_probs(&probs, threshold, smoothing, &gt);
        let decisions = ff_core::evaluate::smooth_decisions(&probs, threshold, smoothing);
        println!(
            "  edge filter: F1 {:.3} (recall {:.3}, precision {:.3}), {} of {} frames matched",
            ff_score.f1,
            ff_score.recall,
            ff_score.precision,
            decisions.iter().filter(|&&d| d).count(),
            decisions.len()
        );

        let upload_bitrates: &[f64] = if quick {
            &[30_000.0, 120_000.0]
        } else {
            &[15_000.0, 30_000.0, 60_000.0, 120_000.0, 240_000.0]
        };
        for &bps in upload_bitrates {
            let bw = measure_ff_upload(&data, &decisions, bps);
            println!(
                "    FF upload target {:>7.0} bps → avg {:>9.0} bps, F1 {:.3}",
                bps, bw, ff_score.f1
            );
            rows.push(format!(
                "{arch_name},filterforward,{bps},{bw:.0},{:.4}",
                ff_score.f1
            ));
        }

        // ---- Compress-everything series: decode low-bitrate stream, run
        // the same MC in the cloud.
        let stream_bitrates: &[f64] = if quick {
            &[40_000.0, 400_000.0]
        } else {
            &[
                20_000.0, 40_000.0, 80_000.0, 160_000.0, 320_000.0, 640_000.0,
            ]
        };
        for &bps in stream_bitrates {
            let src = data.open(Split::Test).map(|lf| (lf.frame, lf.label));
            let mut ts = TranscodedStream::new(src, res, fps, bps);
            let mut probs = Vec::new();
            let mut gt = Vec::new();
            for (frame, label) in ts.by_ref() {
                probs.push(prob_for(&mut extractor, &spec, &mut model, &frame));
                gt.push(label);
            }
            let bw = ts.average_bps();
            let score = score_probs(&probs, threshold, smoothing, &gt);
            println!(
                "    CE stream target {:>7.0} bps → avg {:>9.0} bps, F1 {:.3}",
                bps, bw, score.f1
            );
            rows.push(format!(
                "{arch_name},compress_everything,{bps},{bw:.0},{:.4}",
                score.f1
            ));
        }
    }

    let path = write_csv(
        "fig4_bandwidth",
        "mc_arch,strategy,target_bps,avg_bandwidth_bps,event_f1",
        &rows,
    );
    print_claims(&rows);
    println!("\nCSV: {}", path.display());
}

/// Re-encodes exactly the matched frames at `bitrate` and reports the
/// achieved average bandwidth over the whole stream duration.
fn measure_ff_upload(data: &DatasetSpec, decisions: &[bool], bitrate: f64) -> f64 {
    let res = data.resolution();
    let fps = data.scene.fps;
    let mut enc = ff_video::codec::Encoder::new(ff_video::codec::EncoderConfig::with_bitrate(
        res, fps, bitrate,
    ));
    let mut last: Option<usize> = None;
    let mut bytes = 0u64;
    for (lf, &matched) in data.open(Split::Test).zip(decisions) {
        if !matched {
            continue;
        }
        if last != Some(lf.index.wrapping_sub(1)) {
            enc.force_keyframe();
        }
        bytes += enc.encode(&lf.frame).data.len() as u64;
        last = Some(lf.index);
    }
    bytes as f64 * 8.0 * fps / decisions.len() as f64
}

fn prob_for(
    extractor: &mut FeatureExtractor,
    spec: &McSpec,
    model: &mut McModel,
    frame: &ff_video::Frame,
) -> f32 {
    let t = frame.to_tensor();
    let maps = extractor.extract(&t);
    let fm = maps.get(&spec.tap);
    let input = match &spec.crop {
        None => fm.clone(),
        Some(c) => ff_core::extractor::crop_feature_map(fm, c),
    };
    match model {
        McModel::Plain(net) => ff_nn::sigmoid(net.forward(&input, Phase::Inference).data()[0]),
        McModel::Windowed(_) => unreachable!("figure 4 uses plain MCs"),
    }
}

fn print_claims(rows: &[String]) {
    // Parse back the rows for the §4.3 ratios, per architecture.
    println!("\n§4.3 claims:");
    for arch in ["full_frame", "localized"] {
        let parse = |r: &String| {
            let f: Vec<&str> = r.split(',').collect();
            (
                f[1].to_string(),
                f[3].parse::<f64>().unwrap_or(0.0),
                f[4].parse::<f64>().unwrap_or(0.0),
            )
        };
        let ff_points: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.starts_with(&format!("{arch},filterforward")))
            .map(|r| {
                let (_, bw, f1) = parse(r);
                (bw, f1)
            })
            .collect();
        let ce_points: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.starts_with(&format!("{arch},compress_everything")))
            .map(|r| {
                let (_, bw, f1) = parse(r);
                (bw, f1)
            })
            .collect();
        if ff_points.is_empty() || ce_points.is_empty() {
            continue;
        }
        // Bandwidth reduction: cheapest CE point matching FF's F1 vs the
        // FF point of comparable F1 (FF F1 is constant across bitrates).
        let ff_f1 = ff_points[0].1;
        let ff_bw_mid = ff_points[ff_points.len() / 2].0;
        let ce_match = ce_points
            .iter()
            .filter(|(_, f1)| *f1 >= ff_f1 * 0.95)
            .map(|(bw, _)| *bw)
            .fold(f64::INFINITY, f64::min);
        if ce_match.is_finite() {
            claim(
                &format!("{arch}: bandwidth reduction at matched F1"),
                ce_match / ff_bw_mid,
                if arch == "full_frame" { "6.3x" } else { "13x" },
            );
        } else {
            println!(
                "  {arch}: compress-everything never reaches the FF F1 ({ff_f1:.3}) in this sweep"
            );
        }
        // F1 advantage at matched bandwidth: CE point closest to FF's bw.
        let ce_at_bw = ce_points
            .iter()
            .min_by(|a, b| (a.0 - ff_bw_mid).abs().total_cmp(&(b.0 - ff_bw_mid).abs()));
        if let Some((_, ce_f1)) = ce_at_bw {
            claim(
                &format!("{arch}: F1 gain at comparable bandwidth"),
                ff_f1 / ce_f1.max(1e-9),
                if arch == "full_frame" { "1.5x" } else { "1.9x" },
            );
        }
    }
}
