//! Multi-stream scaling: aggregate frames/sec of the [`EdgeNode`] runtime
//! over streams × shard layouts — sharded per-stream mode **and**
//! gather-batch mode (one shared batched base-DNN pass per round) —
//! against the serial single-stream loop on the same thread budget: the
//! node-scale counterpart of Figure 5.
//!
//! Every run's per-stream verdicts are checked **bit-for-bit** against the
//! serial `FilterForward::process` path (run at the same weight-panel
//! precision — the `*_f16` / `*_int8` rows sweep `ff_tensor::Precision`
//! through the gather-batched mode) before its throughput is reported, so a
//! number only lands in the JSON if the sharded, pipelined, or batched
//! execution is provably equivalent.
//!
//! Results are spliced into `BENCH_throughput.json` (next to the
//! single-stream rows emitted by `bench_throughput`) under a
//! `"multistream"` key. The config block records the container's
//! `available_parallelism` and whether the thread budget saturates it:
//! when it does (e.g. a 1-core CI container), the sharded speedups are
//! bounded near 1× by hardware, not by the runtime — don't read them as
//! regressions.
//!
//! Usage: `cargo run --release -p ff-bench --bin bench_multistream`
//! (override the output path with `BENCH_OUT=/path/file.json`, per-stream
//! frame count with `BENCH_FRAMES=n`).

use std::io::Write;
use std::time::{Duration, Instant};

use ff_core::control::{BatchPolicy, ControlConfig, RebalancePolicy};
use ff_core::faults::{FaultPlan, FaultsReport, FleetFaultPlan, RecoveryConfig, RetryPolicy};
use ff_core::fleet::{Fleet, FleetConfig, FleetReport};
use ff_core::pipeline::{FilterForward, FrameVerdict, PipelineConfig};
use ff_core::query::Query;
use ff_core::runtime::{EdgeNode, EdgeNodeConfig, GatherBatch, ObsConfig, ShardLayout};
use ff_core::{McId, McSpec};
use ff_models::MobileNetConfig;
use ff_tensor::Precision;
use ff_video::scene::{Scene, SceneConfig};
use ff_video::{DutyCycleSource, FrameSource, Resolution, SceneSource};

/// Scale-16 geometry (1920/16 × ~1080/16), the single-stream bench size.
const RES: Resolution = Resolution::new(120, 67);
const STREAM_SEEDS: [u64; 4] = [41, 42, 43, 44];
/// Fastest-of-repeats, the convention of the single-stream harness.
const REPEATS: usize = 2;

fn scene_cfg(seed: u64) -> SceneConfig {
    SceneConfig {
        resolution: RES,
        seed,
        pedestrian_rate: 0.03,
        car_rate: 0.02,
        ..Default::default()
    }
}

fn pipeline_cfg(precision: Precision) -> PipelineConfig {
    let mut cfg = PipelineConfig::new(RES, 15.0);
    cfg.mobilenet = MobileNetConfig::with_width(0.5).with_precision(precision);
    cfg.archive = None; // isolate filtering cost, as in the Figure 5 runs
    cfg
}

fn deploy_mc(ff: &mut FilterForward, stream: usize) {
    ff.deploy(McSpec::full_frame(
        format!("s{stream}"),
        200 + stream as u64,
    ));
}

/// Serial gold: verdicts of one stream through the plain `process` loop at
/// the given weight-panel precision.
fn serial_verdicts(
    stream: usize,
    frames: &[ff_video::Frame],
    precision: Precision,
) -> Vec<FrameVerdict> {
    let mut ff = FilterForward::new(pipeline_cfg(precision));
    deploy_mc(&mut ff, stream);
    let mut verdicts = Vec::new();
    for f in frames {
        verdicts.extend(ff.process(f));
    }
    let (tail, ..) = ff.finish();
    verdicts.extend(tail);
    verdicts
}

/// Single-stream serial fps on the full thread budget (warm-up frame, then
/// fastest of repeats — the single-stream harness convention).
fn serial_fps(frames: &[ff_video::Frame]) -> f64 {
    let mut ff = FilterForward::new(pipeline_cfg(Precision::F32));
    deploy_mc(&mut ff, 0);
    let _ = ff.process(&frames[0]);
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        for f in &frames[1..] {
            let _ = ff.process(f);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (frames.len() - 1) as f64 / best
}

/// One `EdgeNode` configuration: `streams` scene streams over `layout`,
/// optionally in gather-batch mode, at the given weight-panel precision.
/// Returns the best aggregate fps across repeats after asserting every
/// stream's verdicts match the serial gold **of the same precision**.
fn measure_node(
    streams: usize,
    layout: &ShardLayout,
    gather: Option<GatherBatch>,
    precision: Precision,
    n_frames: u64,
    gold: &[Vec<FrameVerdict>],
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPEATS {
        let mut cfg = EdgeNodeConfig::new(layout.clone());
        cfg.gather_batch = gather;
        let mut node = EdgeNode::new(cfg);
        for (s, &seed) in STREAM_SEEDS.iter().enumerate().take(streams) {
            let src = Box::new(SceneSource::new(scene_cfg(seed), n_frames));
            let id = node.add_stream(src, pipeline_cfg(precision));
            deploy_mc(node.pipeline_mut(id), s);
        }
        let report = node.run();
        for (s, sr) in report.streams.iter().enumerate() {
            assert_eq!(
                sr.verdicts,
                gold[s],
                "{streams} streams / {:?}: stream {s} verdicts diverged from serial",
                layout.widths()
            );
        }
        best = best.max(report.node.aggregate_fps());
    }
    best
}

/// Skewed diurnal load for the control-plane sweep: stream 0 always on,
/// streams 1.. motion-gated night cameras (8 active ticks, 24 idle). The
/// frame *contents* are the plain scene streams, so per-stream verdicts
/// must still match the serial golds bit-for-bit.
fn skewed_sources(n_frames: u64) -> Vec<Box<dyn FrameSource>> {
    STREAM_SEEDS
        .iter()
        .enumerate()
        .map(|(s, &seed)| {
            let inner = SceneSource::new(scene_cfg(seed), n_frames);
            if s == 0 {
                Box::new(inner) as Box<dyn FrameSource>
            } else {
                Box::new(DutyCycleSource::new(inner, 8, 24)) as Box<dyn FrameSource>
            }
        })
        .collect()
}

/// One controlled-executor run over the skewed load: `adaptive` arms the
/// style's policy (batch sizing in gather style, shard rebalancing in
/// sharded style); fixed runs use `ControlConfig::observe_only` — the
/// identical virtual-time executor with every policy off, so the
/// comparison isolates adaptation itself. Verdicts are asserted against
/// the serial golds either way (these policies move compute, never
/// results).
fn measure_controlled(
    gather: bool,
    adaptive: bool,
    budget: usize,
    n_frames: u64,
    gold: &[Vec<FrameVerdict>],
) -> f64 {
    let n_streams = STREAM_SEEDS.len();
    let mut best = 0.0f64;
    for _ in 0..REPEATS {
        let mut cfg = EdgeNodeConfig::new(if gather {
            ShardLayout::single(budget)
        } else {
            ShardLayout::even(budget, n_streams.min(budget))
        });
        if gather {
            cfg.gather_batch = Some(GatherBatch {
                max_batch: 8,
                gather_wait: Duration::from_millis(1),
            });
        }
        let mut node = EdgeNode::new(cfg);
        for (s, src) in skewed_sources(n_frames).into_iter().enumerate() {
            let id = node.add_stream(src, pipeline_cfg(Precision::F32));
            deploy_mc(node.pipeline_mut(id), s);
        }
        let ctl = if adaptive {
            ControlConfig {
                tick_frames: 8,
                arrival_alpha: 0.5,
                batch: if gather {
                    Some(BatchPolicy::default())
                } else {
                    None
                },
                rebalance: if gather {
                    None
                } else {
                    Some(RebalancePolicy::default())
                },
                degrade: None, // degradation changes verdicts; keep the A/B pure
                watchdog: None,
            }
        } else {
            ControlConfig::observe_only(8)
        };
        let report = node.run_controlled(ctl);
        for (s, sr) in report.streams.iter().enumerate() {
            assert_eq!(
                sr.verdicts,
                gold[s],
                "skewed {} {}: stream {s} verdicts diverged from serial",
                if gather { "gather" } else { "sharded" },
                if adaptive { "adaptive" } else { "fixed" },
            );
        }
        best = best.max(report.node.aggregate_fps());
    }
    best
}

/// The fault sweep: the same 4-stream gather node with and without a
/// scripted uplink outage + seeded packet loss, through the recovery
/// layer (default retry/spill). Uplink faults delay *delivery*, never
/// inference, so both runs' verdicts are still asserted bit-for-bit
/// against the serial golds; the throughput cost of riding out the chaos
/// and the final segment ledger are the measured outputs. The fault
/// report is deterministic, so one run's report speaks for all repeats.
fn measure_faults(
    budget: usize,
    n_frames: u64,
    gold: &[Vec<FrameVerdict>],
) -> (f64, f64, FaultsReport) {
    let outage_at = n_frames / 3;
    let loss_at = 2 * n_frames / 3;
    let plan = FaultPlan::new()
        .uplink_outage(outage_at, 12)
        .packet_loss(loss_at, 8, 0.25);
    let run = |with_faults: bool| {
        let mut cfg =
            EdgeNodeConfig::new(ShardLayout::single(budget)).with_gather_batch(GatherBatch {
                max_batch: 8,
                gather_wait: Duration::from_millis(1),
            });
        if with_faults {
            // A snappy retry schedule fits the short bench window (the
            // defaults are tuned for long-lived nodes, where a retry can
            // afford to wait 16+ rounds; here that would just park the
            // tail of the backlog at end of run).
            cfg = cfg.with_faults(plan.clone()).with_recovery(RecoveryConfig {
                retry: RetryPolicy {
                    base_delay_rounds: 1,
                    max_delay_rounds: 4,
                    max_attempts: 8,
                    jitter_rounds: 1,
                    jitter_seed: 7,
                },
                ..RecoveryConfig::default()
            });
        }
        let mut node = EdgeNode::new(cfg);
        for (s, &seed) in STREAM_SEEDS.iter().enumerate() {
            let src = Box::new(SceneSource::new(scene_cfg(seed), n_frames));
            let id = node.add_stream(src, pipeline_cfg(Precision::F32));
            deploy_mc(node.pipeline_mut(id), s);
        }
        let report = node.run_controlled(ControlConfig::observe_only(8));
        for (s, sr) in report.streams.iter().enumerate() {
            assert_eq!(
                sr.verdicts, gold[s],
                "faults={with_faults}: stream {s} verdicts diverged — uplink \
                 faults must never touch inference"
            );
        }
        report
    };
    let mut clean_fps = 0.0f64;
    let mut chaos_fps = 0.0f64;
    let mut faults = None;
    for _ in 0..REPEATS {
        clean_fps = clean_fps.max(run(false).node.aggregate_fps());
        let r = run(true);
        chaos_fps = chaos_fps.max(r.node.aggregate_fps());
        let fr = r.faults.expect("a plan was scheduled");
        assert!(fr.ledger.conserves(), "{:?}", fr.ledger);
        if let Some(prev) = &faults {
            assert_eq!(prev, &fr, "the fault report must replay bit-for-bit");
        }
        faults = Some(fr);
    }
    (clean_fps, chaos_fps, faults.expect("at least one repeat"))
}

/// Geometry for the duty-cycled stream-count sweep: smaller than the
/// 4-stream rows so the 1000-camera row stays a bench, not a soak test.
const STREAMS_RES: Resolution = Resolution::new(64, 32);
/// 10% duty cycle: 1 active tick, 9 idle, phases spread over the period.
const STREAMS_PERIOD: u64 = 10;
const STREAMS_FRAMES: u64 = 2;

fn streams_scene(seed: u64) -> SceneConfig {
    SceneConfig {
        resolution: STREAMS_RES,
        seed,
        pedestrian_rate: 0.03,
        car_rate: 0.02,
        ..Default::default()
    }
}

fn streams_pipeline() -> PipelineConfig {
    let mut cfg = PipelineConfig::new(STREAMS_RES, 15.0);
    cfg.mobilenet = MobileNetConfig::with_width(0.25);
    cfg.archive = None;
    cfg
}

fn streams_mc(s: usize) -> McSpec {
    McSpec::full_frame(format!("st{s}"), 500 + s as u64)
}

/// One duty-cycled fleet at the given stream count: every camera is an
/// actor-style task on the shared pool (no per-stream threads), active 1
/// round in [`STREAMS_PERIOD`], with a **shared deferred backbone** so the
/// node builds one extractor, not `n`. Returns the best aggregate fps
/// across repeats after sanity-checking stream 0 against its serial gold.
fn measure_streams(n: usize, budget: usize, gold0: &[FrameVerdict]) -> f64 {
    measure_streams_inner(n, budget, gold0, false).0
}

/// [`measure_streams`] with the full observability layer on — span ring,
/// per-job shard timers, deterministic exports — returning the best fps
/// plus the spans emitted and metrics registered, so the bench can pin the
/// instrumentation overhead against the plain row.
fn measure_streams_obs(n: usize, budget: usize, gold0: &[FrameVerdict]) -> (f64, u64, u64) {
    measure_streams_inner(n, budget, gold0, true)
}

fn measure_streams_inner(
    n: usize,
    budget: usize,
    gold0: &[FrameVerdict],
    obs: bool,
) -> (f64, u64, u64) {
    let mut best = 0.0f64;
    let mut spans = 0u64;
    let mut metrics = 0u64;
    for _ in 0..REPEATS {
        let mut cfg = EdgeNodeConfig::new(ShardLayout::single(budget))
            .with_gather_batch(GatherBatch {
                max_batch: 64,
                gather_wait: Duration::from_millis(1),
            })
            .with_shared_backbone();
        if obs {
            cfg = cfg.with_obs(ObsConfig::default());
        }
        cfg.uplink_capacity_bps = 10_000_000.0;
        let mut node = EdgeNode::new(cfg);
        for s in 0..n {
            let inner = SceneSource::new(streams_scene(300 + s as u64), STREAMS_FRAMES);
            let src = Box::new(DutyCycleSource::with_phase(
                inner,
                1,
                STREAMS_PERIOD - 1,
                s as u64 % STREAMS_PERIOD,
            ));
            let id = node.add_stream(src, streams_pipeline());
            node.deploy(id, streams_mc(s));
        }
        let report = node.run_controlled(ControlConfig::observe_only(8));
        assert_eq!(
            report.node.pipeline.frames_out,
            n as u64 * STREAMS_FRAMES,
            "{n} streams: every duty-cycled frame must be served"
        );
        assert_eq!(
            report.streams[0].verdicts, gold0,
            "{n} streams: stream 0 diverged from its serial pipeline"
        );
        if let Some(o) = &report.obs {
            spans = o.emitted_spans;
            metrics = o.metrics.entries.len() as u64;
        }
        best = best.max(report.node.aggregate_fps());
    }
    (best, spans, metrics)
}

/// Cloud-tier rounds for the fleet sweep — long enough that every fault
/// window (crash + rejoin, dup storm, loss burst) fully plays out.
const FLEET_ROUNDS: u64 = 240;

/// One fleet chaos run at the given node count: wall-clock hub segment
/// throughput (fresh + duplicate + out-of-window arrivals ingested per
/// second) alongside the dedup and redelivery counters. The simulation is
/// pure virtual time, so the report must replay bit-for-bit across the
/// timing repeats — only the wall clock is allowed to vary.
fn measure_fleet(nodes: usize) -> (f64, FleetReport) {
    let cfg = FleetConfig {
        nodes,
        rounds: FLEET_ROUNDS,
        shards: 4,
        faults: FleetFaultPlan::new()
            .node_crash(3, 60, 20)
            .dup_storm(120, 30, 1)
            .message_loss(40, 30, 0.2),
        subscriptions: vec![Query::mc(McId(0)).or(Query::mc(McId(1)))],
        ..Default::default()
    };
    let mut best = f64::MAX;
    let mut report: Option<FleetReport> = None;
    for _ in 0..REPEATS {
        let t = Instant::now();
        let r = Fleet::new(cfg.clone()).expect("valid fleet config").run();
        best = best.min(t.elapsed().as_secs_f64().max(1e-9));
        if let Some(prev) = &report {
            assert_eq!(prev, &r, "fleet run must replay bit-for-bit");
        }
        report = Some(r);
    }
    let report = report.expect("at least one repeat");
    assert!(report.ledger.conserves(), "{}", report.ledger);
    assert_eq!(report.double_deliveries, 0, "exactly-once to subscribers");
    let ingested = report.accepted + report.dup_hits + report.out_of_window;
    (ingested as f64 / best, report)
}

fn main() {
    let n_frames: u64 = std::env::var("BENCH_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let budget = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Pre-render each stream's frames once for the serial gold/baseline.
    let rendered: Vec<Vec<ff_video::Frame>> = STREAM_SEEDS
        .iter()
        .map(|&seed| {
            Scene::new(scene_cfg(seed))
                .take(n_frames as usize)
                .map(|(f, _)| f)
                .collect()
        })
        .collect();
    // Per-precision serial golds: a reduced-precision node must reproduce
    // the serial loop run at the *same* precision bit-for-bit (quantization
    // changes the weights once, at pack time; execution mode never changes
    // a bit).
    let gold_for = |p: Precision| -> Vec<Vec<FrameVerdict>> {
        rendered
            .iter()
            .enumerate()
            .map(|(s, frames)| serial_verdicts(s, frames, p))
            .collect()
    };
    let gold = gold_for(Precision::F32);
    let gold_f16 = gold_for(Precision::F16);
    let gold_int8 = gold_for(Precision::Int8);
    let gold_int8act = gold_for(Precision::Int8Act);

    ff_tensor::parallel::set_threads(budget);
    let baseline = serial_fps(&rendered[0]);
    ff_tensor::parallel::set_threads(0);

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    // When the budget saturates the container (always true here, since the
    // budget *is* available_parallelism), sharded speedups are hardware-
    // bounded near 1× — the flag below keeps that from reading as a
    // runtime regression. Batched mode still gains from cache amortization
    // even on one core.
    let saturated = budget >= available;
    if saturated {
        println!(
            "note: budget ({budget} threads) saturates the container \
             (available_parallelism {available}); sharded speedups are \
             hardware-bounded on this machine"
        );
    }

    // streams × shard layouts. Shard counts are capped at the budget
    // (ShardLayout::even's width-≥1 floor would otherwise oversubscribe
    // on machines with fewer cores than streams, which would invalidate
    // the "same thread budget" comparison against the serial baseline);
    // streams beyond the shard count share shards round-robin. The
    // `*_batched` rows run gather-batch mode: one shared batched base-DNN
    // pass per round over the whole thread budget.
    let gather = |b: usize| {
        Some(GatherBatch {
            max_batch: b,
            gather_wait: Duration::from_millis(2),
        })
    };
    type Case = (
        &'static str,
        usize,
        ShardLayout,
        Option<GatherBatch>,
        Precision,
    );
    let f32p = Precision::F32;
    let cases: Vec<Case> = vec![
        ("1s_1shard", 1, ShardLayout::single(budget), None, f32p),
        (
            "2s_sharded",
            2,
            ShardLayout::even(budget, 2.min(budget)),
            None,
            f32p,
        ),
        (
            "4s_sharded",
            4,
            ShardLayout::even(budget, 4.min(budget)),
            None,
            f32p,
        ),
        ("4s_1shard", 4, ShardLayout::single(budget), None, f32p),
        (
            "1s_batched_b8",
            1,
            ShardLayout::single(budget),
            gather(8),
            f32p,
        ),
        (
            "2s_batched_b2",
            2,
            ShardLayout::single(budget),
            gather(2),
            f32p,
        ),
        (
            "4s_batched_b4",
            4,
            ShardLayout::single(budget),
            gather(4),
            f32p,
        ),
        (
            "4s_batched_b8",
            4,
            ShardLayout::single(budget),
            gather(8),
            f32p,
        ),
        // Precision sweep at the strongest batched operating point: f16
        // halves, int8 quarters the weight panels streamed per shared pass.
        (
            "4s_batched_b8_f16",
            4,
            ShardLayout::single(budget),
            gather(8),
            Precision::F16,
        ),
        (
            "4s_batched_b8_int8",
            4,
            ShardLayout::single(budget),
            gather(8),
            Precision::Int8,
        ),
        // Whole-int8: weights *and* activations quantized, the u8 gather +
        // vpmaddubsw GEMM path.
        (
            "4s_batched_b8_int8act",
            4,
            ShardLayout::single(budget),
            gather(8),
            Precision::Int8Act,
        ),
    ];
    let mut rows: Vec<(String, f64)> = vec![(format!("serial_1s_t{budget}"), baseline)];
    println!(
        "{:<24} {baseline:>10.2} fps",
        format!("serial_1s_t{budget}")
    );
    let mut fps_4s_sharded = 0.0;
    let mut fps_4s_batched = 0.0;
    for (name, streams, layout, gb, precision) in &cases {
        let gold_p = match precision {
            Precision::F32 => &gold,
            Precision::F16 => &gold_f16,
            Precision::Int8 => &gold_int8,
            Precision::Int8Act => &gold_int8act,
        };
        let fps = measure_node(*streams, layout, *gb, *precision, n_frames, gold_p);
        if *name == "4s_sharded" {
            fps_4s_sharded = fps;
        }
        if *name == "4s_batched_b4" {
            fps_4s_batched = fps;
        }
        let mode = match gb {
            Some(g) => format!("gather-batch ≤{}", g.max_batch),
            None => format!("shards {:?}", layout.widths()),
        };
        println!("{name:<24} {fps:>10.2} fps  (aggregate, {mode})");
        rows.push((name.to_string(), fps));
    }
    let speedup = fps_4s_sharded / baseline;
    let speedup_batched = fps_4s_batched / baseline;
    println!("4-stream aggregate vs serial single-stream: {speedup:.2}x sharded, {speedup_batched:.2}x batched (budget {budget} threads)");
    println!(
        "verdicts: bit-for-bit identical to the serial pipeline for every layout and batch mode"
    );

    // Control-plane sweep: the same skewed diurnal load (1 busy camera, 3
    // night cameras) through the controlled virtual-time executor, fixed
    // layouts vs adaptive policies, both styles. Verdict-checked against
    // the serial golds like every other row.
    println!();
    println!("control sweep (skewed diurnal load: 1 always-on + 3 night cameras):");
    let mut control_rows: Vec<(String, f64)> = Vec::new();
    for (name, gather, adaptive) in [
        ("skewed_fixed_sharded", false, false),
        ("skewed_adaptive_sharded", false, true),
        ("skewed_fixed_gather_b8", true, false),
        ("skewed_adaptive_gather", true, true),
    ] {
        let fps = measure_controlled(gather, adaptive, budget, n_frames, &gold);
        println!("{name:<24} {fps:>10.2} fps  (aggregate)");
        control_rows.push((name.to_string(), fps));
    }
    let best_fixed = control_rows[0].1.max(control_rows[2].1);
    let best_adaptive = control_rows[1].1.max(control_rows[3].1);
    let adaptive_vs_fixed = best_adaptive / best_fixed;
    println!(
        "adaptive vs best fixed layout on skewed load: {adaptive_vs_fixed:.2}x \
         (budget {budget} threads)"
    );

    // Fault sweep: the recovery layer riding out a scripted uplink outage
    // and seeded packet loss, verdicts still bit-identical to serial.
    println!();
    println!("fault sweep (12-round outage + 25% seeded loss through the recovery layer):");
    let (clean_fps, chaos_fps, fault_report) = measure_faults(budget, n_frames, &gold);
    let chaos_ratio = chaos_fps / clean_fps;
    let fl = fault_report.ledger;
    println!("fault_free               {clean_fps:>10.2} fps  (aggregate, observe-only executor)");
    println!("under_faults             {chaos_fps:>10.2} fps  (aggregate, {chaos_ratio:.2}x of fault-free)");
    println!(
        "segments: {} offered = {} delivered + {} late + {} dropped (conserves: {}); recovery {} rounds",
        fl.offered,
        fl.delivered,
        fl.delivered_late,
        fl.dropped,
        fl.conserves(),
        fault_report
            .recovery_rounds
            .map_or_else(|| "n/a".to_string(), |r| r.to_string()),
    );

    // Stream-count sweep: 10 → 1000 duty-cycled cameras as actor-style
    // tasks on one shared pool. The invariant that must hold is that the
    // *per-frame service rate* stays flat: 1000 cameras at 10% duty are
    // 100 active streams' work, and carrying the other 900 sleeping tasks
    // must cost (nearly) nothing — aggregate fps within ~10% of the
    // 10-camera row. The raw per-active-stream rate divides the fixed
    // budget across the active set, so it falls as 1/active by
    // construction; both are reported.
    println!();
    println!(
        "stream-count sweep ({STREAMS_RES} frames, 10% duty cycle, shared deferred backbone):"
    );
    let gold_stream0: Vec<FrameVerdict> = {
        let mut ff = FilterForward::new(streams_pipeline());
        ff.deploy(streams_mc(0));
        let mut verdicts = Vec::new();
        let mut src = SceneSource::new(streams_scene(300), STREAMS_FRAMES);
        while let Some(f) = src.next_frame() {
            verdicts.extend(ff.process(&f));
        }
        let (tail, ..) = ff.finish();
        verdicts.extend(tail);
        verdicts
    };
    let stream_rows: Vec<(usize, f64, f64)> = [10usize, 100, 1000]
        .iter()
        .map(|&n| {
            let fps = measure_streams(n, budget, &gold_stream0);
            let active = n as f64 / STREAMS_PERIOD as f64;
            let per_active = fps / active;
            println!(
                "{:<24} {fps:>10.2} fps  (aggregate, {per_active:.2} per active stream)",
                format!("streams_{n}")
            );
            (n, fps, per_active)
        })
        .collect();
    let streams_scaling = stream_rows[2].1 / stream_rows[0].1;
    println!(
        "per-frame service rate at 1000 cameras: {streams_scaling:.2}x of the 10-camera row \
         (990 more sleeping tasks; flat = free idle cameras)"
    );

    // Observability overhead on the 1000-camera row: the same sweep with
    // the span ring and per-job shard timers on. The registry itself is
    // always on, so this measures exactly what the obs knob adds.
    println!();
    println!("obs overhead (1000 duty-cycled cameras, span ring + shard timers on):");
    let obs_base_fps = stream_rows[2].1;
    let (obs_fps, obs_spans, obs_metrics) = measure_streams_obs(1000, budget, &gold_stream0);
    let obs_overhead = (1.0 - obs_fps / obs_base_fps).max(0.0);
    println!(
        "{:<24} {obs_fps:>10.2} fps  ({obs_spans} spans, {obs_metrics} metrics, overhead {:.1}%)",
        "streams_1000_obs",
        obs_overhead * 100.0,
    );
    assert!(
        obs_overhead <= 0.02,
        "instrumentation overhead {:.2}% exceeds the 2% budget",
        obs_overhead * 100.0,
    );

    // Fleet sweep: the cloud tier at 10/50/200 nodes, same per-node chaos
    // script (crash + rejoin, dup storm, seeded loss) at every size.
    println!();
    println!(
        "fleet sweep (cloud hub, {FLEET_ROUNDS} virtual rounds, crash + dup storm + 20% loss):"
    );
    let fleet_rows: Vec<(usize, f64, FleetReport)> = [10usize, 50, 200]
        .iter()
        .map(|&nodes| {
            let (segs_per_sec, report) = measure_fleet(nodes);
            println!(
                "{:<24} {segs_per_sec:>10.0} segs/s  (accepted {}, dedup hits {}, redeliveries {})",
                format!("fleet_{nodes}n"),
                report.accepted,
                report.dup_hits,
                report.redeliveries,
            );
            (nodes, segs_per_sec, report)
        })
        .collect();

    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_throughput.json".into());
    let mut section = String::from("  \"multistream\": {\n");
    section.push_str(&format!(
        "    \"config\": {{\"resolution\": \"{RES}\", \"frames_per_stream\": {n_frames}, \"budget_threads\": {budget}, \"available_parallelism\": {available}, \"budget_saturates_container\": {saturated}}},\n"
    ));
    section.push_str("    \"aggregate_fps\": {\n");
    for (i, (name, fps)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        section.push_str(&format!("      \"{name}\": {fps:.2}{comma}\n"));
    }
    section.push_str("    },\n");
    section.push_str(&format!("    \"speedup_4s_vs_serial\": {speedup:.2},\n"));
    section.push_str(&format!(
        "    \"speedup_4s_batched_vs_serial\": {speedup_batched:.2},\n"
    ));
    section.push_str("    \"verdicts_identical\": true\n  },\n");

    // The control-plane A/B, spliced as its own top-level section.
    section.push_str("  \"control\": {\n");
    section.push_str(&format!(
        "    \"config\": {{\"resolution\": \"{RES}\", \"frames_per_stream\": {n_frames}, \"budget_threads\": {budget}, \"available_parallelism\": {available}, \"load\": \"1 always-on + 3 duty-cycled 8/24 cameras\", \"policies\": \"rebalance (sharded) / batch sizing (gather); degrade off to keep verdicts comparable\"}},\n"
    ));
    section.push_str("    \"aggregate_fps\": {\n");
    for (i, (name, fps)) in control_rows.iter().enumerate() {
        let comma = if i + 1 == control_rows.len() { "" } else { "," };
        section.push_str(&format!("      \"{name}\": {fps:.2}{comma}\n"));
    }
    section.push_str("    },\n");
    section.push_str(&format!(
        "    \"adaptive_vs_best_fixed\": {adaptive_vs_fixed:.2},\n"
    ));
    let control_note = if budget <= STREAM_SEEDS.len() {
        "this container's budget leaves nothing for adaptation to move: with <= 1 thread per stream every shard is already at the width-1 floor (rebalancing is an identity) and batch sizing only changes cache amortization, which the huge shared LLC already hides (same class of container limit as the sharded/batched rows above); the structural win appears when budget > streams, where the rebalancer concentrates real cores on the busy camera while the night cameras sleep"
    } else {
        "adaptive rebalancing concentrates the thread budget on the busy camera while the night cameras sleep"
    };
    section.push_str(&format!("    \"note\": \"{control_note}\",\n"));
    section.push_str("    \"verdicts_identical\": true\n  },\n");

    // The fault sweep, spliced as its own top-level section.
    section.push_str("  \"faults\": {\n");
    section.push_str(&format!(
        "    \"config\": {{\"resolution\": \"{RES}\", \"frames_per_stream\": {n_frames}, \"budget_threads\": {budget}, \"plan\": \"12-round uplink outage at round {}, 25% seeded packet loss for 8 rounds at round {}; default retry/spill policy\"}},\n",
        n_frames / 3,
        2 * n_frames / 3,
    ));
    section.push_str(&format!(
        "    \"aggregate_fps_fault_free\": {clean_fps:.2},\n"
    ));
    section.push_str(&format!(
        "    \"aggregate_fps_under_faults\": {chaos_fps:.2},\n"
    ));
    section.push_str(&format!(
        "    \"fps_ratio_under_faults\": {chaos_ratio:.2},\n"
    ));
    section.push_str(&format!(
        "    \"segments\": {{\"offered\": {}, \"delivered\": {}, \"delivered_late\": {}, \"dropped\": {}, \"conserves\": {}}},\n",
        fl.offered,
        fl.delivered,
        fl.delivered_late,
        fl.dropped,
        fl.conserves(),
    ));
    section.push_str(&format!(
        "    \"recovery_rounds\": {},\n",
        fault_report
            .recovery_rounds
            .map_or_else(|| "null".to_string(), |r| r.to_string()),
    ));
    section.push_str(
        "    \"note\": \"uplink faults delay delivery, never inference: both runs' verdicts are asserted bit-for-bit against the serial golds, and the fault report itself replays bit-for-bit across repeats\",\n",
    );
    section.push_str("    \"verdicts_identical\": true\n  },\n");

    // The duty-cycled stream-count sweep, spliced as its own section.
    section.push_str("  \"streams\": {\n");
    section.push_str(&format!(
        "    \"config\": {{\"resolution\": \"{STREAMS_RES}\", \"frames_per_stream\": {STREAMS_FRAMES}, \"duty_cycle\": \"1 active / {} idle rounds, phases spread\", \"budget_threads\": {budget}, \"runtime\": \"actor-style tasks on one shared pool, shared deferred backbone, zero per-stream threads\"}},\n",
        STREAMS_PERIOD - 1,
    ));
    for (n, fps, per_active) in &stream_rows {
        section.push_str(&format!(
            "    \"streams_{n}\": {{\"aggregate_fps\": {fps:.2}, \"per_active_stream_fps\": {per_active:.2}}},\n"
        ));
    }
    section.push_str(&format!(
        "    \"aggregate_ratio_1000_vs_10\": {streams_scaling:.2},\n"
    ));
    section.push_str(
        "    \"note\": \"the invariant: serving an active frame must cost the same whether the node hosts 10 cameras or 1000 (aggregate fps within ~10% of the 10-stream row — a sleeping task is a poll and a counter, not a thread). Raw per_active_stream_fps divides the fixed thread budget across the active set, so it falls as 1/active by construction on one machine.\",\n",
    );
    section.push_str("    \"verdicts_identical\": true\n  },\n");

    // The observability overhead row, spliced as its own section.
    section.push_str("  \"obs\": {\n");
    section.push_str(
        "    \"config\": {\"load\": \"1000 duty-cycled cameras, same sweep as streams_1000\", \"instrumentation\": \"span ring + per-job shard timers on top of the always-on registry\"},\n",
    );
    section.push_str(&format!("    \"aggregate_fps_base\": {obs_base_fps:.2},\n"));
    section.push_str(&format!("    \"aggregate_fps_obs\": {obs_fps:.2},\n"));
    section.push_str(&format!("    \"overhead_fraction\": {obs_overhead:.4},\n"));
    section.push_str("    \"max_overhead_fraction\": 0.02,\n");
    section.push_str(&format!("    \"spans_emitted\": {obs_spans},\n"));
    section.push_str(&format!("    \"metrics_registered\": {obs_metrics},\n"));
    section.push_str(
        "    \"note\": \"the bench asserts the overhead budget itself; the trace and snapshot exports are byte-stable across runs, threads, and shard widths, so they can gate CI\"\n  },\n",
    );

    // The cloud-tier fleet sweep, spliced as its own top-level section.
    section.push_str("  \"fleet\": {\n");
    section.push_str(&format!(
        "    \"config\": {{\"rounds\": {FLEET_ROUNDS}, \"hub_shards\": 4, \"plan\": \"node 3 crashes for 20 rounds at round 60 and rejoins from its checkpoint journal; a dup storm doubles every wire message for rounds 120-150; 20% seeded loss for rounds 40-70\"}},\n"
    ));
    for (nodes, segs_per_sec, report) in &fleet_rows {
        section.push_str(&format!(
            "    \"nodes_{nodes}\": {{\"hub_segments_per_sec\": {segs_per_sec:.0}, \"accepted\": {}, \"dedup_hits\": {}, \"redeliveries\": {}, \"double_deliveries\": {}, \"ledger_conserves\": {}}},\n",
            report.accepted,
            report.dup_hits,
            report.redeliveries,
            report.double_deliveries,
            report.ledger.conserves(),
        ));
    }
    section.push_str(
        "    \"note\": \"pure virtual-time simulation: each report replays bit-for-bit across the timing repeats and across hub shard widths; only the wall clock varies. Redeliveries are the at-least-once transport doing its job; dedup hits are the hub absorbing them (and the storm) so subscribers see exactly-once.\"\n  }\n}\n",
    );

    // Splice after the single-stream rows: replace an existing
    // "multistream" section, else insert before the closing brace.
    let base = std::fs::read_to_string(&out_path).unwrap_or_else(|_| "{\n}\n".to_string());
    let head = match base.find(",\n  \"multistream\"") {
        Some(i) => base[..i].to_string(),
        None => {
            let close = base.rfind('}').expect("existing json must be an object");
            base[..close].trim_end().to_string()
        }
    };
    let mut f = std::fs::File::create(&out_path).expect("create bench json");
    if head.trim() == "{" {
        write!(f, "{{\n{section}").expect("write bench json");
    } else {
        write!(f, "{head},\n{section}").expect("write bench json");
    }
    println!("wrote {out_path}");
}
