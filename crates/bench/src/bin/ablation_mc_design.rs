//! Ablation of the paper's §3.4 design choices for microclassifiers:
//!
//! * **Tap layer** — "too late a layer may not be able to observe small
//!   details … too early a layer could be computationally expensive":
//!   trains the localized MC against three base-DNN depths and reports
//!   accuracy and extraction + marginal cost.
//! * **Spatial crop** — "constraining an MC's spatial scope increases
//!   accuracy (for certain applications)": trains with and without the
//!   Figure-3c crop.
//!
//! Usage: `cargo run --release -p ff-bench --bin ablation_mc_design
//!         [--scale 16] [--frames 1500] [--alpha 0.25] [--epochs 5]`

use ff_bench::{arg_f64, arg_usize, write_csv};
use ff_core::evaluate::{mc_probs, score_probs};
use ff_core::train::{train_mc, TrainConfig};
use ff_core::{FeatureExtractor, McSpec};
use ff_data::{DatasetSpec, Split};
use ff_models::MobileNetConfig;
use ff_video::Resolution;

fn main() {
    let scale = arg_usize("--scale", 16);
    let frames = arg_usize("--frames", 1500);
    let alpha = arg_f64("--alpha", 0.25) as f32;
    let epochs = arg_usize("--epochs", 5);

    let data = DatasetSpec::jackson_like(scale, frames, 42);
    let cfg = TrainConfig {
        epochs,
        max_cached: 1200,
        ..Default::default()
    };
    let mut rows = Vec::new();

    println!("Tap-layer ablation (localized MC, Pedestrian task, crop on):");
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>7}",
        "tap", "stride", "extract MAdds", "MC MAdds", "F1"
    );
    for tap in ["conv3_2/sep", "conv4_2/sep", "conv5_6/sep"] {
        let mut spec = McSpec::localized("ablate", data.task.crop, 7);
        spec.tap = tap.to_string();
        let (f1, extract_madds, mc_madds) = run(&data, &spec, alpha, &cfg);
        let mn = MobileNetConfig::with_width(alpha);
        println!(
            "{:<14} {:>10} {:>14} {:>14} {:>7.3}",
            tap,
            mn.tap_stride(tap),
            extract_madds,
            mc_madds,
            f1
        );
        rows.push(format!("tap,{tap},{extract_madds},{mc_madds},{f1:.4}"));
    }

    println!("\nCrop ablation (localized MC @ conv4_2/sep):");
    for (name, crop) in [("with_crop", data.task.crop), ("no_crop", None)] {
        let spec = McSpec::localized("ablate", crop, 7);
        let (f1, _, mc_madds) = run(&data, &spec, alpha, &cfg);
        println!("  {name:<10}: F1 {f1:.3}, MC marginal {mc_madds} MAdds");
        rows.push(format!("crop,{name},0,{mc_madds},{f1:.4}"));
    }

    let path = write_csv(
        "ablation_mc_design",
        "ablation,variant,extract_madds,mc_madds,f1",
        &rows,
    );
    println!("\nCSV: {}", path.display());
}

fn run(data: &DatasetSpec, spec: &McSpec, alpha: f32, cfg: &TrainConfig) -> (f64, u64, u64) {
    let mut extractor =
        FeatureExtractor::new(MobileNetConfig::with_width(alpha), vec![spec.tap.clone()]);
    let cal: Vec<_> = data
        .open(Split::Train)
        .take(8)
        .map(|lf| lf.frame.to_tensor())
        .collect();
    extractor.calibrate(&cal);
    let trained = train_mc(&mut extractor, spec, data, cfg);
    let mut model = trained.model;
    let test = data.open(Split::Test).map(|lf| (lf.frame, lf.label));
    let (probs, labels) = mc_probs(&mut extractor, spec, &mut model, test);
    let score = score_probs(&probs, trained.threshold, spec.smoothing, &labels);
    let res: Resolution = data.resolution();
    let extract_madds = extractor.multiply_adds(res);
    let mc_madds = model.multiply_adds(&spec.input_shape(&extractor, res));
    (score.f1, extract_madds, mc_madds)
}
