//! Regenerates Figure 6: per-frame execution time split between the base
//! DNN and the microclassifiers, for each MC architecture, as the number
//! of concurrent MCs grows.
//!
//! The paper's observation: "the base DNN's CPU time is equivalent to that
//! of 15–40 MCs" — printed here as the measured equivalence point.
//!
//! Usage: `cargo run --release -p ff-bench --bin fig6_breakdown
//!         [--scale 12] [--frames 9] [--alpha 0.5] [--quick]`

use ff_bench::throughput::{bench_frames, figure5_counts, measure_ff, single_threaded};
use ff_bench::{arg_f64, arg_flag, arg_usize, write_csv};
use ff_core::spec::McKind;

fn main() {
    single_threaded();
    let scale = arg_usize("--scale", 12);
    let n_frames = arg_usize("--frames", 9);
    let alpha = arg_f64("--alpha", 0.5) as f32;
    let quick = arg_flag("--quick");

    let frames = bench_frames(scale, n_frames.max(3));
    let counts = figure5_counts(quick);

    let archs = [
        ("full_frame", McKind::FullFrame),
        ("localized", McKind::Localized),
        ("windowed", McKind::Windowed),
    ];

    let mut rows = Vec::new();
    for (name, kind) in archs {
        println!("\nFigure 6 ({name}): seconds per frame");
        println!(
            "{:>4} {:>12} {:>12} {:>12}",
            "N", "base DNN", "MCs", "total"
        );
        let mut base_eq = None;
        for &n in &counts {
            let p = measure_ff(kind, n, &frames, alpha);
            println!(
                "{:>4} {:>12.4} {:>12.4} {:>12.4}",
                n,
                p.base_per_frame,
                p.classifiers_per_frame,
                p.base_per_frame + p.classifiers_per_frame
            );
            rows.push(format!(
                "{name},{n},{:.6},{:.6}",
                p.base_per_frame, p.classifiers_per_frame
            ));
            // Equivalence point: N at which total MC time ≈ base time.
            if base_eq.is_none() && p.classifiers_per_frame >= p.base_per_frame {
                let per_mc = p.classifiers_per_frame / n as f64;
                base_eq = Some(p.base_per_frame / per_mc);
            }
        }
        match base_eq {
            Some(e) => println!("  base DNN ≈ {e:.0} {name} MCs (paper: 15–40 depending on arch)"),
            None => {
                // Never crossed: extrapolate from the largest N measured.
                if let Some(&n) = counts.last() {
                    let p = measure_ff(kind, n, &frames, alpha);
                    let per_mc = p.classifiers_per_frame / n as f64;
                    println!(
                        "  base DNN ≈ {:.0} {name} MCs (extrapolated; paper: 15–40)",
                        p.base_per_frame / per_mc
                    );
                }
            }
        }
    }
    let path = write_csv(
        "fig6_breakdown",
        "arch,n,base_dnn_s_per_frame,mcs_s_per_frame",
        &rows,
    );
    println!("\nCSV: {}", path.display());
}
