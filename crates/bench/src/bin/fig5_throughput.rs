//! Regenerates Figure 5: filtering throughput (fps) vs number of
//! concurrent classifiers for FilterForward's three MC architectures,
//! NoScope-style discrete classifiers, and multiple full MobileNets.
//!
//! Also prints the §4.4 textual claims: FF relative speed at N = 1, the
//! FF-vs-DC crossover point, and the speedup at 50 classifiers. Multiple
//! MobileNets are cut off at the paper-scale OOM limit (32 GB node model).
//!
//! Usage: `cargo run --release -p ff-bench --bin fig5_throughput
//!         [--scale 12] [--frames 9] [--alpha 0.5] [--quick]`

use ff_bench::throughput::{
    bench_frames, figure5_counts, measure_dcs, measure_ff, measure_mobilenets, single_threaded,
};
use ff_bench::{arg_f64, arg_flag, arg_usize, claim, write_csv};
use ff_core::node::{max_mobilenet_instances, EdgeNodeSpec};
use ff_core::spec::McKind;
use ff_models::MobileNetConfig;
use ff_video::Resolution;

fn main() {
    single_threaded();
    let scale = arg_usize("--scale", 12);
    let n_frames = arg_usize("--frames", 9);
    let alpha = arg_f64("--alpha", 0.5) as f32;
    let quick = arg_flag("--quick");

    let frames = bench_frames(scale, n_frames.max(3));
    let counts = figure5_counts(quick);

    // Paper-scale OOM limit for the multiple-MobileNets strategy.
    let oom_limit = max_mobilenet_instances(
        &EdgeNodeSpec::paper_testbed(),
        &MobileNetConfig::default(),
        Resolution::new(1920, 1080),
    );
    println!("multiple-MobileNets OOM limit (paper-scale memory model): {oom_limit} instances");
    println!(
        "measuring on {} frames at scale 1/{scale}, alpha {alpha}\n",
        frames.len()
    );

    let mut rows = Vec::new();
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>10} {:>12}",
        "N", "full-frame fps", "localized fps", "windowed fps", "DC fps", "mobilenets"
    );
    let mut series: Vec<(usize, [f64; 5])> = Vec::new();
    for &n in &counts {
        let ff_full = measure_ff(McKind::FullFrame, n, &frames, alpha);
        let ff_loc = measure_ff(McKind::Localized, n, &frames, alpha);
        let ff_win = measure_ff(McKind::Windowed, n, &frames, alpha);
        let dc = measure_dcs(n, &frames, 9);
        let mn = if n <= oom_limit {
            measure_mobilenets(n, &frames, alpha).fps
        } else {
            f64::NAN // OOM at paper scale
        };
        println!(
            "{:>4} {:>14.2} {:>14.2} {:>14.2} {:>10.2} {:>12}",
            n,
            ff_full.fps,
            ff_loc.fps,
            ff_win.fps,
            dc.fps,
            if mn.is_nan() {
                "OOM".to_string()
            } else {
                format!("{mn:.2}")
            }
        );
        rows.push(format!(
            "{n},{:.4},{:.4},{:.4},{:.4},{}",
            ff_full.fps,
            ff_loc.fps,
            ff_win.fps,
            dc.fps,
            if mn.is_nan() {
                "OOM".to_string()
            } else {
                format!("{mn:.4}")
            }
        ));
        series.push((n, [ff_full.fps, ff_loc.fps, ff_win.fps, dc.fps, mn]));
    }
    let path = write_csv(
        "fig5_throughput",
        "n,ff_full_frame_fps,ff_localized_fps,ff_windowed_fps,dc_fps,mobilenets_fps",
        &rows,
    );

    // §4.4 textual claims.
    println!("\n§4.4 claims:");
    if let Some((_, first)) = series.first() {
        let best_ff1 = first[0].max(first[1]).min(first[0].min(first[1])); // midline
        let _ = best_ff1;
        claim(
            "FF/DC speed at N=1 (localized)",
            first[1] / first[3],
            "0.32–0.34x",
        );
        if !first[4].is_nan() {
            claim(
                "FF/MobileNet speed at N=1 (localized)",
                first[1] / first[4],
                "0.83–0.90x",
            );
        }
    }
    // Crossover: first N where the slowest FF arch beats the DCs.
    let crossover = series
        .iter()
        .find(|(_, s)| s[0].min(s[1]) > s[3])
        .map(|(n, _)| *n);
    match crossover {
        Some(n) => claim("FF-vs-DC crossover (classifiers)", n as f64, "3–4"),
        None => println!("  FF never crossed the DCs in this sweep"),
    }
    if let Some((_, last)) = series.iter().find(|(n, _)| *n == 50) {
        claim(
            "FF/DC speedup at N=50 (best arch)",
            last[0].max(last[1]) / last[3],
            "up to 6.1x",
        );
    }
    println!("\nCSV: {}", path.display());
}
