//! Emits `BENCH_throughput.json`: frames/sec for the Figure 5 strategies
//! plus the raw single-threaded base-DNN forward rate, so successive PRs
//! can track the perf trajectory of the hot path — plus a `"batched"`
//! section sweeping micro-batch sizes B ∈ {1, 2, 4, 8} through the batched
//! extraction path (one GEMM over the stacked im2col matrix per layer; see
//! `FeatureExtractor::extract_batch`) and a `"precision"` section sweeping
//! the weight-panel storage precision (f32 / f16 / int8 / int8act — see
//! `ff_tensor::Precision`) at B ∈ {1, 8}, and a `"panel_bound"` section
//! sweeping the same precisions through an α=1 backbone at 480×270 —
//! the geometry whose weight set and activation buffers dwarf the
//! per-core L2, where the reduced-precision panels (and the
//! whole-int8 `vpmaddubsw` kernel) actually pay (override its frame count
//! with `BENCH_PANEL_FRAMES=n`).
//!
//! All numbers are single-threaded (see
//! [`ff_bench::throughput::single_threaded`]) — the Figure 5 framing — and
//! use the fastest-of-repeats convention of the shared harness. The config
//! block records the container's `available_parallelism` so single-core
//! containers can't be mistaken for multi-core results.
//!
//! Usage: `cargo run --release -p ff-bench --bin bench_throughput`
//! (override the output path with `BENCH_OUT=/path/file.json`, frame count
//! with `BENCH_FRAMES=n`).

use std::io::Write;
use std::time::Instant;

use ff_bench::throughput::{
    bench_frames, measure_dcs, measure_ff, measure_mobilenets, single_threaded,
};
use ff_core::spec::McKind;
use ff_core::FeatureExtractor;
use ff_models::{MobileNetConfig, LAYER_FULL_FRAME_TAP, LAYER_LOCALIZED_TAP};
use ff_tensor::{Precision, Tensor};
use ff_video::Frame;

/// Classifier count for the per-strategy points (a mid-curve Figure 5
/// operating point: enough classifiers that per-MC marginal cost shows).
const N_CLASSIFIERS: usize = 4;

/// Micro-batch sizes swept through the batched extraction path.
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];

/// Weight-panel precisions swept through the batched extraction path
/// (f32 baseline, f16 half-byte panels, int8 quarter-byte panels, and
/// whole-int8 — weights *and* activations quantized).
const PRECISIONS: [Precision; 4] = [
    Precision::F32,
    Precision::F16,
    Precision::Int8,
    Precision::Int8Act,
];

/// Panel-bound geometry: an α=1 backbone at the largest frame the
/// pure-Rust inference budget admits (scale 4 ⇒ 480×270). What makes the
/// sweep panel-bound is the α=1 weight set — ~17 MB of f32 panels, 8× the
/// 2 MB per-core L2, streamed in full by every GEMM — not the frame size;
/// the bigger frames just amortize dispatch overhead and push the im2col
/// working set past L2 as well.
const PANEL_ALPHA: f32 = 1.0;
const PANEL_SCALE: usize = 4;

fn main() {
    single_threaded();
    let scale = 16; // 120×67, the components.rs bench geometry
    let n_frames: usize = std::env::var("BENCH_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let frames = bench_frames(scale, n_frames);
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());

    let extractor_fps = measure_extractor_fps(&frames, 0.5);

    let mut rows: Vec<(String, f64)> = vec![("extractor_base_dnn_a0.5".into(), extractor_fps)];
    for (name, kind) in [
        ("ff_full_frame", McKind::FullFrame),
        ("ff_localized", McKind::Localized),
        ("ff_windowed", McKind::Windowed),
    ] {
        let p = measure_ff(kind, N_CLASSIFIERS, &frames, 0.5);
        rows.push((name.to_string(), p.fps));
    }
    rows.push((
        "discrete_classifiers".into(),
        measure_dcs(N_CLASSIFIERS, &frames, 7).fps,
    ));
    rows.push((
        "mobilenet_per_filter".into(),
        measure_mobilenets(1, &frames, 0.5).fps,
    ));

    // Batch-size sweep: the same extraction through the batched path. B=1
    // exercises the batched machinery at serial geometry (its fps may
    // differ slightly from the per-frame row above — same GEMMs, plus the
    // stack/split copies); the B=8 / B=1 ratio is the panel-streaming
    // amortization batching buys on this container.
    let batched: Vec<(usize, f64)> = BATCH_SIZES
        .iter()
        .map(|&b| {
            (
                b,
                measure_batched_extractor_fps(&frames, 0.5, b, Precision::F32),
            )
        })
        .collect();
    let b1 = batched[0].1;
    let b8 = batched[batched.len() - 1].1;
    let speedup = b8 / b1;

    // Precision sweep: the same batched extraction with the weight panels
    // stored at f32 / f16 / int8 (arithmetic stays f32; only the panel
    // bytes streamed per GEMM change), at B = 1 and B = 8.
    let precision: Vec<(String, f64)> = PRECISIONS
        .iter()
        .flat_map(|&p| {
            [1usize, 8].map(|b| {
                (
                    format!("{}_b{b}", p.label()),
                    measure_batched_extractor_fps(&frames, 0.5, b, p),
                )
            })
        })
        .collect();
    let lookup = |name: &str| {
        precision
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, f)| f)
            .expect("swept")
    };
    let f16_speedup_b1 = lookup("f16_b1") / lookup("f32_b1");
    let f16_speedup_b8 = lookup("f16_b8") / lookup("f32_b8");

    // Panel-bound sweep: the α=1 backbone at 1080p-class resolution runs
    // every precision through the serial batched path (B=1: at this
    // geometry a single frame's GEMMs are already panel-scale). Few frames
    // — each forward is ~256× the scale-16 cost.
    let panel_frames: usize = std::env::var("BENCH_PANEL_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let pframes = bench_frames(PANEL_SCALE, panel_frames);
    let panel_bound: Vec<(String, f64)> = PRECISIONS
        .iter()
        .map(|&p| {
            let fps = measure_batched_extractor_fps(&pframes, PANEL_ALPHA, 1, p);
            println!("panel_bound_{:<15} {fps:>10.3} fps", p.label());
            (p.label().to_string(), fps)
        })
        .collect();
    let panel_lookup = |name: &str| {
        panel_bound
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, f)| f)
            .expect("swept")
    };
    let int8act_vs_f32 = panel_lookup("int8act") / panel_lookup("f32");
    let f16_vs_f32_panel = panel_lookup("f16") / panel_lookup("f32");

    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_throughput.json".into());
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"frames\": {n_frames}, \"classifiers\": {N_CLASSIFIERS}, \"threads\": 1, \"available_parallelism\": {available}}},\n"
    ));
    json.push_str("  \"fps\": {\n");
    for (i, (name, fps)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {fps:.2}{comma}\n"));
        println!("{name:<28} {fps:>10.2} fps");
    }
    json.push_str("  },\n");
    json.push_str("  \"batched\": {\n");
    json.push_str(&format!(
        "    \"config\": {{\"scale\": {scale}, \"frames\": {n_frames}, \"threads\": 1, \"available_parallelism\": {available}}},\n"
    ));
    json.push_str("    \"extractor_fps\": {\n");
    for (i, (b, fps)) in batched.iter().enumerate() {
        let comma = if i + 1 == batched.len() { "" } else { "," };
        json.push_str(&format!("      \"b{b}\": {fps:.2}{comma}\n"));
        println!("extractor_batched_b{b:<10} {fps:>10.2} fps");
    }
    json.push_str("    },\n");
    json.push_str(&format!("    \"speedup_b8_vs_b1\": {speedup:.2},\n"));
    json.push_str(
        "    \"note\": \"speedup is hardware-bounded on this container: the packed weight \
         panels (~2 MB at this geometry) stay resident in the very large shared LLC, and the \
         B=1 micro-kernel already runs near FMA peak, so there is no panel streaming left to \
         amortize; the batched path's gains appear when the weight set exceeds the LLC or when \
         B*positions crosses the parallel-dispatch threshold on multi-core parts\"\n  },\n",
    );
    json.push_str("  \"precision\": {\n");
    json.push_str(&format!(
        "    \"config\": {{\"scale\": {scale}, \"frames\": {n_frames}, \"threads\": 1, \"available_parallelism\": {available}}},\n"
    ));
    json.push_str("    \"extractor_fps\": {\n");
    for (i, (name, fps)) in precision.iter().enumerate() {
        let comma = if i + 1 == precision.len() { "" } else { "," };
        json.push_str(&format!("      \"{name}\": {fps:.2}{comma}\n"));
        println!("extractor_{name:<14} {fps:>10.2} fps");
    }
    json.push_str("    },\n");
    json.push_str(&format!(
        "    \"speedup_f16_vs_f32_b1\": {f16_speedup_b1:.2},\n"
    ));
    json.push_str(&format!(
        "    \"speedup_f16_vs_f32_b8\": {f16_speedup_b8:.2},\n"
    ));
    json.push_str(
        "    \"note\": \"panel bytes halve (f16) / quarter (int8) but throughput is \
         compute-bound on this container: the f32 weight set (~2 MB at this geometry) already \
         fits the very large shared LLC, so shrinking it buys no bandwidth back, and the \
         widening adds a vcvtph2ps/vpmovsxbd per panel load on a kernel that was at ~89% FMA \
         peak; expect the f16/int8 win where the working set exceeds the LLC (many streams, \
         alpha=1 models, small-LLC edge parts) exactly as batching's panel-streaming \
         amortization does\"\n  },\n",
    );
    json.push_str("  \"panel_bound\": {\n");
    json.push_str(&format!(
        "    \"config\": {{\"scale\": {PANEL_SCALE}, \"alpha\": {PANEL_ALPHA}, \"frames\": {panel_frames}, \"threads\": 1, \"available_parallelism\": {available}}},\n"
    ));
    json.push_str("    \"extractor_fps\": {\n");
    for (i, (name, fps)) in panel_bound.iter().enumerate() {
        let comma = if i + 1 == panel_bound.len() { "" } else { "," };
        json.push_str(&format!("      \"{name}\": {fps:.3}{comma}\n"));
    }
    json.push_str("    },\n");
    json.push_str(&format!(
        "    \"speedup_int8act_vs_f32\": {int8act_vs_f32:.2},\n"
    ));
    json.push_str(&format!(
        "    \"speedup_f16_vs_f32\": {f16_vs_f32_panel:.2},\n"
    ));
    json.push_str(
        "    \"note\": \"alpha=1 at 480x270 (the largest frame the pure-Rust budget admits): \
         the weight panels (~17 MB f32) and im2col buffers overflow this container's 2 MB L2 \
         by an order of magnitude, so every GEMM streams its panels — the geometry the scale-16 sections \
         above cannot reach; the whole-int8 rung additionally swaps the widen-to-f32 panel \
         loads for vpmaddubsw/vpmaddwd integer MACs (2 multiply-adds per byte lane per \
         instruction vs 1 per f32 FMA lane), so its win here combines streamed-byte \
         reduction (4x fewer panel bytes than f32) with integer-kernel arithmetic density; \
         the 260 MB shared LLC still backstops DRAM traffic on this container, bounding the \
         bandwidth half of the win\"\n  }\n",
    );
    json.push('}');
    json.push('\n');
    println!("batched extraction B=8 vs B=1: {speedup:.2}x (single-threaded)");
    println!(
        "f16 vs f32 extraction: {f16_speedup_b1:.2}x at B=1, {f16_speedup_b8:.2}x at B=8 (single-threaded)"
    );
    println!(
        "panel-bound (alpha={PANEL_ALPHA}, scale {PANEL_SCALE}): int8act vs f32 {int8act_vs_f32:.2}x, f16 vs f32 {f16_vs_f32_panel:.2}x (single-threaded)"
    );
    let mut f = std::fs::File::create(&out_path).expect("create BENCH_throughput.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out_path}");
}

/// Frames/sec of the bare shared feature extraction (both paper taps) —
/// the single-threaded MobileNet forward that gates every strategy.
fn measure_extractor_fps(frames: &[Frame], alpha: f32) -> f64 {
    let mut extractor = FeatureExtractor::new(
        MobileNetConfig::with_width(alpha),
        vec![LAYER_LOCALIZED_TAP.into(), LAYER_FULL_FRAME_TAP.into()],
    );
    let tensors: Vec<_> = frames.iter().map(Frame::to_tensor).collect();
    let _ = extractor.extract(&tensors[0]);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for t in &tensors[1..] {
            let _ = std::hint::black_box(extractor.extract(t));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (tensors.len() - 1) as f64 / best
}

/// Frames/sec of batched extraction at micro-batch size `batch` with the
/// weight panels stored at `precision`: the frame set is processed in
/// `batch`-sized gathers through [`FeatureExtractor::extract_batch`] (one
/// GEMM per layer per gather).
fn measure_batched_extractor_fps(
    frames: &[Frame],
    alpha: f32,
    batch: usize,
    precision: Precision,
) -> f64 {
    let mut extractor = FeatureExtractor::new(
        MobileNetConfig::with_width(alpha).with_precision(precision),
        vec![LAYER_LOCALIZED_TAP.into(), LAYER_FULL_FRAME_TAP.into()],
    );
    let tensors: Vec<Tensor> = frames.iter().map(Frame::to_tensor).collect();
    // Warm-up: one full batch grows the workspace to its steady-state set.
    let _ = extractor.extract_batch(&tensors[..batch.min(tensors.len())]);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for chunk in tensors.chunks(batch) {
            let _ = std::hint::black_box(extractor.extract_batch(chunk));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    tensors.len() as f64 / best
}
