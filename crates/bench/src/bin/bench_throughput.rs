//! Emits `BENCH_throughput.json`: frames/sec for the Figure 5 strategies
//! plus the raw single-threaded base-DNN forward rate, so successive PRs
//! can track the perf trajectory of the hot path.
//!
//! All numbers are single-threaded (see
//! [`ff_bench::throughput::single_threaded`]) — the Figure 5 framing — and
//! use the fastest-of-repeats convention of the shared harness.
//!
//! Usage: `cargo run --release -p ff-bench --bin bench_throughput`
//! (override the output path with `BENCH_OUT=/path/file.json`, frame count
//! with `BENCH_FRAMES=n`).

use std::io::Write;
use std::time::Instant;

use ff_bench::throughput::{
    bench_frames, measure_dcs, measure_ff, measure_mobilenets, single_threaded,
};
use ff_core::spec::McKind;
use ff_core::FeatureExtractor;
use ff_models::{MobileNetConfig, LAYER_FULL_FRAME_TAP, LAYER_LOCALIZED_TAP};
use ff_video::Frame;

/// Classifier count for the per-strategy points (a mid-curve Figure 5
/// operating point: enough classifiers that per-MC marginal cost shows).
const N_CLASSIFIERS: usize = 4;

fn main() {
    single_threaded();
    let scale = 16; // 120×67, the components.rs bench geometry
    let n_frames: usize = std::env::var("BENCH_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let frames = bench_frames(scale, n_frames);

    let extractor_fps = measure_extractor_fps(&frames, 0.5);

    let mut rows: Vec<(String, f64)> = vec![("extractor_base_dnn_a0.5".into(), extractor_fps)];
    for (name, kind) in [
        ("ff_full_frame", McKind::FullFrame),
        ("ff_localized", McKind::Localized),
        ("ff_windowed", McKind::Windowed),
    ] {
        let p = measure_ff(kind, N_CLASSIFIERS, &frames, 0.5);
        rows.push((name.to_string(), p.fps));
    }
    rows.push((
        "discrete_classifiers".into(),
        measure_dcs(N_CLASSIFIERS, &frames, 7).fps,
    ));
    rows.push((
        "mobilenet_per_filter".into(),
        measure_mobilenets(1, &frames, 0.5).fps,
    ));

    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_throughput.json".into());
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"frames\": {n_frames}, \"classifiers\": {N_CLASSIFIERS}, \"threads\": 1}},\n"
    ));
    json.push_str("  \"fps\": {\n");
    for (i, (name, fps)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {fps:.2}{comma}\n"));
        println!("{name:<28} {fps:>10.2} fps");
    }
    json.push_str("  }\n}\n");
    let mut f = std::fs::File::create(&out_path).expect("create BENCH_throughput.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out_path}");
}

/// Frames/sec of the bare shared feature extraction (both paper taps) —
/// the single-threaded MobileNet forward that gates every strategy.
fn measure_extractor_fps(frames: &[Frame], alpha: f32) -> f64 {
    let mut extractor = FeatureExtractor::new(
        MobileNetConfig::with_width(alpha),
        vec![LAYER_LOCALIZED_TAP.into(), LAYER_FULL_FRAME_TAP.into()],
    );
    let tensors: Vec<_> = frames.iter().map(Frame::to_tensor).collect();
    let _ = extractor.extract(&tensors[0]);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for t in &tensors[1..] {
            let _ = std::hint::black_box(extractor.extract(t));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (tensors.len() - 1) as f64 / best
}
