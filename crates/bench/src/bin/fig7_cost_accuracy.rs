//! Regenerates Figure 7: marginal compute cost (multiply-adds, projected
//! to the paper's full input resolution) versus event F1 score, for the
//! full-frame and localized microclassifiers and a sweep of discrete
//! classifiers, on both datasets.
//!
//! Prints the §4.5 claims: MC-vs-DC accuracy ratio and marginal-cost
//! ratio per dataset.
//!
//! Usage: `cargo run --release -p ff-bench --bin fig7_cost_accuracy
//!         [--scale 12] [--frames 3000] [--alpha 0.5] [--epochs 10] [--quick]`

use ff_bench::{arg_f64, arg_flag, arg_usize, claim, write_csv};
use ff_core::evaluate::score_probs;
use ff_core::train::{train_dc, train_plain_from_features, TrainConfig};
use ff_core::{FeatureExtractor, McModel, McSpec, SmoothingConfig};
use ff_data::{DatasetSpec, Split};
use ff_models::{DcConfig, MobileNetConfig, LAYER_FULL_FRAME_TAP, LAYER_LOCALIZED_TAP};
use ff_nn::Phase;
use ff_tensor::Tensor;

struct Row {
    dataset: &'static str,
    model: String,
    paper_madds_m: f64,
    f1: f64,
    recall: f64,
    precision: f64,
}

fn main() {
    let scale = arg_usize("--scale", 12);
    let frames = arg_usize("--frames", 3000);
    let alpha = arg_f64("--alpha", 0.5) as f32;
    let epochs = arg_usize("--epochs", 10);
    let quick = arg_flag("--quick");
    let frames = if quick { frames.min(1200) } else { frames };

    let mut rows: Vec<Row> = Vec::new();
    for dataset in ["jackson", "roadway"] {
        let data = if dataset == "roadway" {
            DatasetSpec::roadway_like(scale, frames, 42)
        } else {
            DatasetSpec::jackson_like(scale, frames, 42)
        };
        // Shift augmentation is valid only for the translation-invariant
        // People-with-red task (see TrainConfig docs).
        let aug = if dataset == "roadway" { 6 } else { 0 };
        let cfg = TrainConfig {
            epochs,
            lr: 2e-3,
            max_cached: 1600,
            augment_shift_w: aug,
            ..Default::default()
        };
        println!("== {dataset}: training MCs and DC sweep ({frames} frames/split)");
        rows.extend(run_dataset(dataset, &data, alpha, &cfg, quick));
    }

    println!("\nFigure 7 — millions of multiply-adds (paper scale) vs event F1");
    println!(
        "{:<10} {:<22} {:>12} {:>7} {:>7} {:>7}",
        "dataset", "model", "madds (M)", "F1", "recall", "prec"
    );
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "{:<10} {:<22} {:>12.1} {:>7.3} {:>7.3} {:>7.3}",
            r.dataset, r.model, r.paper_madds_m, r.f1, r.recall, r.precision
        );
        csv.push(format!(
            "{},{},{:.2},{:.4},{:.4},{:.4}",
            r.dataset, r.model, r.paper_madds_m, r.f1, r.recall, r.precision
        ));
    }
    let path = write_csv(
        "fig7_cost_accuracy",
        "dataset,model,paper_madds_millions,f1,recall,precision",
        &csv,
    );

    println!("\n§4.5 claims:");
    for dataset in ["jackson", "roadway"] {
        let mc_best = rows
            .iter()
            .filter(|r| r.dataset == dataset && r.model.starts_with("mc_"))
            .max_by(|a, b| a.f1.total_cmp(&b.f1));
        let dc_best = rows
            .iter()
            .filter(|r| r.dataset == dataset && r.model.starts_with("dc_"))
            .max_by(|a, b| a.f1.total_cmp(&b.f1));
        if let (Some(mc), Some(dc)) = (mc_best, dc_best) {
            claim(
                &format!("{dataset}: best-MC F1 / best-DC F1"),
                mc.f1 / dc.f1.max(1e-9),
                if dataset == "jackson" {
                    "up to 1.3x"
                } else {
                    "1.1x"
                },
            );
            claim(
                &format!("{dataset}: best-DC cost / best-MC cost"),
                dc.paper_madds_m / mc.paper_madds_m.max(1e-9),
                if dataset == "jackson" { "23x" } else { "11x" },
            );
        }
    }
    println!("\nCSV: {}", path.display());
}

fn run_dataset(
    dataset: &'static str,
    data: &DatasetSpec,
    alpha: f32,
    cfg: &TrainConfig,
    quick: bool,
) -> Vec<Row> {
    let res = data.resolution();
    let mn = MobileNetConfig::with_width(alpha);
    let mut extractor = FeatureExtractor::new(
        mn,
        vec![LAYER_LOCALIZED_TAP.into(), LAYER_FULL_FRAME_TAP.into()],
    );
    // Calibrate folded batch-norms on unlabeled frames.
    let cal: Vec<Tensor> = data
        .open(Split::Train)
        .take(8)
        .map(|lf| lf.frame.to_tensor())
        .collect();
    extractor.calibrate(&cal);

    let loc_spec = McSpec::localized("loc", data.task.crop, 7);
    let ff_spec = McSpec::full_frame("ff", 8);

    // One extraction pass over the training video caches both taps.
    let stride = (data.train_frames).div_ceil(cfg.max_cached).max(1);
    let mut loc_feats = Vec::new();
    let mut ff_feats = Vec::new();
    let mut labels = Vec::new();
    for lf in data.open(Split::Train) {
        if lf.index % stride != 0 {
            continue;
        }
        let t = lf.frame.to_tensor();
        let maps = extractor.extract(&t);
        let loc_fm = maps.get(&loc_spec.tap);
        loc_feats.push(match &loc_spec.crop {
            None => loc_fm.clone(),
            Some(c) => ff_core::extractor::crop_feature_map(loc_fm, c),
        });
        ff_feats.push(maps.get(&ff_spec.tap).clone());
        labels.push(lf.label);
    }
    println!(
        "  cached {} samples ({} positive)",
        labels.len(),
        labels.iter().filter(|&&l| l).count()
    );

    let loc_model = loc_spec
        .build(&extractor, res, ff_core::McId(0))
        .into_model();
    let ff_model = ff_spec
        .build(&extractor, res, ff_core::McId(1))
        .into_model();
    let mut trained_loc = train_plain_from_features(loc_model, &loc_feats, &labels, cfg);
    // The full-frame detector sees the whole frame; augmentation-by-shift
    // is sound for it on either task (its grid-max is shift-invariant).
    let ff_cfg = TrainConfig {
        augment_shift_w: 3,
        ..*cfg
    };
    let mut trained_ff = train_plain_from_features(ff_model, &ff_feats, &labels, &ff_cfg);
    println!(
        "  localized: thr {:.2} loss {:?}",
        trained_loc.threshold,
        trained_loc.loss_history.last()
    );
    println!(
        "  full-frame: thr {:.2} loss {:?}",
        trained_ff.threshold,
        trained_ff.loss_history.last()
    );

    // One extraction pass over the test video evaluates both MCs.
    let mut loc_probs = Vec::new();
    let mut ff_probs = Vec::new();
    let mut gt = Vec::new();
    for lf in data.open(Split::Test) {
        let t = lf.frame.to_tensor();
        let maps = extractor.extract(&t);
        let loc_fm = maps.get(&loc_spec.tap);
        let loc_in = match &loc_spec.crop {
            None => loc_fm.clone(),
            Some(c) => ff_core::extractor::crop_feature_map(loc_fm, c),
        };
        loc_probs.push(plain_prob(&mut trained_loc.model, &loc_in));
        ff_probs.push(plain_prob(&mut trained_ff.model, maps.get(&ff_spec.tap)));
        gt.push(lf.label);
    }
    let smoothing = SmoothingConfig::default();
    let loc_score = score_probs(&loc_probs, trained_loc.threshold, smoothing, &gt);
    let ff_score = score_probs(&ff_probs, trained_ff.threshold, smoothing, &gt);

    // Paper-scale marginal costs: the same MC architectures instantiated
    // at the paper-resolution tap shapes (α = 1 channels).
    let paper_extractor_shapes = paper_tap_shapes(data);
    let loc_madds = loc_cost(&loc_spec, paper_extractor_shapes.0);
    let ff_shape = paper_extractor_shapes.1;
    let ff_madds = ff_models::FullFrameConfig::new(ff_shape[2], ff_spec.seed)
        .build()
        .multiply_adds(&ff_shape);

    let mut rows = vec![
        Row {
            dataset,
            model: "mc_localized".into(),
            paper_madds_m: loc_madds as f64 / 1e6,
            f1: loc_score.f1,
            recall: loc_score.recall,
            precision: loc_score.precision,
        },
        Row {
            dataset,
            model: "mc_full_frame".into(),
            paper_madds_m: ff_madds as f64 / 1e6,
            f1: ff_score.f1,
            recall: ff_score.recall,
            precision: ff_score.precision,
        },
    ];

    // Discrete-classifier sweep: a cost-spread subset of the §4.4 grid.
    let dc_configs = dc_sweep(res.height, res.width, quick);
    for (i, dc_cfg) in dc_configs.iter().enumerate() {
        let mut dc = dc_cfg.build();
        let (threshold, history) = train_dc(&mut dc, data, cfg);
        let mut probs = Vec::new();
        for lf in data.open(Split::Test) {
            let z = dc.forward(&lf.frame.to_tensor(), Phase::Inference);
            probs.push(ff_nn::sigmoid(z.data()[0]));
        }
        let score = score_probs(&probs, threshold, smoothing, &gt);
        // Cost at paper resolution for the same architecture.
        let paper_cfg = DcConfig {
            in_h: data.paper_resolution.height,
            in_w: data.paper_resolution.width,
            ..*dc_cfg
        };
        println!(
            "  dc{i} ({}L k{} s{} {}): thr {threshold:.2} loss {:?} F1 {:.3}",
            dc_cfg.conv_layers,
            dc_cfg.kernels,
            dc_cfg.stride,
            if dc_cfg.separable { "sep" } else { "std" },
            history.last(),
            score.f1
        );
        rows.push(Row {
            dataset,
            model: format!(
                "dc_{}l_k{}_s{}{}",
                dc_cfg.conv_layers,
                dc_cfg.kernels,
                dc_cfg.stride,
                if dc_cfg.separable { "_sep" } else { "" }
            ),
            paper_madds_m: paper_cfg.multiply_adds() as f64 / 1e6,
            f1: score.f1,
            recall: score.recall,
            precision: score.precision,
        });
    }
    rows
}

/// Tap shapes at paper resolution: (localized tap cropped, full-frame tap).
fn paper_tap_shapes(data: &DatasetSpec) -> (Vec<usize>, Vec<usize>) {
    let mn = MobileNetConfig::default(); // α = 1 at paper scale
    let net = mn.build();
    let pr = data.paper_resolution;
    let loc = net.shape_at(&[pr.height, pr.width, 3], LAYER_LOCALIZED_TAP);
    let ff = net.shape_at(&[pr.height, pr.width, 3], LAYER_FULL_FRAME_TAP);
    let loc = match &data.task.crop {
        None => loc,
        Some(c) => {
            let (h0, h1, w0, w1) = ff_core::extractor::crop_to_grid(c, loc[0], loc[1]);
            vec![h1 - h0, w1 - w0, loc[2]]
        }
    };
    (loc, ff)
}

/// Paper-scale cost of a localized MC over the given (cropped) tap shape.
fn loc_cost(spec: &McSpec, tap_shape: Vec<usize>) -> u64 {
    // Rebuild the architecture at paper dimensions (α = 1 channels).
    let cfg = ff_models::LocalizedConfig::new(tap_shape[0], tap_shape[1], tap_shape[2], spec.seed);
    cfg.build().multiply_adds(&tap_shape)
}

fn plain_prob(model: &mut McModel, fm: &Tensor) -> f32 {
    match model {
        McModel::Plain(net) => ff_nn::sigmoid(net.forward(fm, Phase::Inference).data()[0]),
        McModel::Windowed(_) => unreachable!("figure 7 uses plain MCs"),
    }
}

fn dc_sweep(h: usize, w: usize, quick: bool) -> Vec<DcConfig> {
    let base = DcConfig::representative(h, w, 31);
    let mut out = vec![
        DcConfig {
            conv_layers: 2,
            kernels: 16,
            stride: 2,
            pooling_layers: 1,
            separable: false,
            ..base
        },
        DcConfig {
            conv_layers: 3,
            kernels: 32,
            stride: 2,
            pooling_layers: 1,
            separable: false,
            ..base
        },
        DcConfig {
            conv_layers: 4,
            kernels: 64,
            stride: 2,
            pooling_layers: 0,
            separable: false,
            ..base
        },
    ];
    if !quick {
        out.push(DcConfig {
            conv_layers: 3,
            kernels: 32,
            stride: 2,
            pooling_layers: 1,
            separable: true,
            ..base
        });
        out.push(DcConfig {
            conv_layers: 2,
            kernels: 64,
            stride: 3,
            pooling_layers: 0,
            separable: false,
            ..base
        });
    }
    out.retain(|c| c.fits());
    out
}
