//! Regenerates Figure 3b/3c: dataset details and task crop regions.
//!
//! Usage: `cargo run --release -p ff-bench --bin table3_datasets [--scale 12] [--frames 8000]`

use ff_bench::{arg_usize, write_csv};
use ff_data::{DatasetSpec, DatasetStats, Split};

fn main() {
    let scale = arg_usize("--scale", 12);
    let frames = arg_usize("--frames", 8000);
    let seed = arg_usize("--seed", 42) as u64;

    let specs = [
        DatasetSpec::jackson_like(scale, frames, seed),
        DatasetSpec::roadway_like(scale, frames, seed),
    ];

    println!("Figure 3b — dataset details (simulation scale 1/{scale}, both splits)\n");
    println!(
        "{:<10} {:<7} {:<12} {:<12} {:>6} {:>9} {:<16} {:>12} {:>13} {:>8}",
        "dataset",
        "split",
        "resolution",
        "paper res",
        "fps",
        "frames",
        "task",
        "event frames",
        "unique events",
        "pos frac"
    );
    let mut rows = Vec::new();
    for spec in &specs {
        for split in [Split::Train, Split::Test] {
            let s = DatasetStats::compute(spec, split);
            println!(
                "{:<10} {:<7} {:<12} {:<12} {:>6} {:>9} {:<16} {:>12} {:>13} {:>8.3}",
                s.name,
                format!("{split:?}"),
                s.resolution,
                s.paper_resolution,
                s.fps,
                s.frames,
                s.task,
                s.event_frames,
                s.unique_events,
                s.positive_fraction()
            );
            rows.push(format!(
                "{},{:?},{},{},{},{},{},{},{},{:.4}",
                s.name,
                split,
                s.resolution,
                s.paper_resolution,
                s.fps,
                s.frames,
                s.task,
                s.event_frames,
                s.unique_events,
                s.positive_fraction()
            ));
        }
    }
    let path = write_csv(
        "table3_datasets",
        "dataset,split,resolution,paper_resolution,fps,frames,task,event_frames,unique_events,positive_fraction",
        &rows,
    );

    println!("\nPaper reference (Figure 3b): Jackson 1920x1080@15, 600000 frames, Pedestrian,");
    println!("  95238 event frames, 506 events (15.9% positive);");
    println!("  Roadway 2048x850@15, 324009 frames, People with red, 71296 event frames,");
    println!("  326 events (22.0% positive).");

    println!(
        "\nFigure 3c — task crop regions (fractions of frame; paper pixel coords at paper res)"
    );
    for spec in &specs {
        if let Some(c) = spec.task.crop {
            let (px0, py0) = (
                c.x0 * spec.paper_resolution.width as f64,
                c.y0 * spec.paper_resolution.height as f64,
            );
            let (px1, py1) = (
                c.x1 * spec.paper_resolution.width as f64 - 1.0,
                c.y1 * spec.paper_resolution.height as f64 - 1.0,
            );
            println!(
                "  {:<16} upper-left ({:.0}, {:.0})  lower-right ({:.0}, {:.0})",
                spec.task.name(),
                px0,
                py0,
                px1,
                py1
            );
        }
    }
    println!("\nCSV: {}", path.display());
}
