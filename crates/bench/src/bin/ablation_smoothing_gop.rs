//! Ablation of the paper's §3.5 smoothing choice (K-of-N voting, default
//! N = 5, K = 2) and the codec's GOP-length knob.
//!
//! * **K/N sweep** — trains one MC, then re-scores the same probability
//!   stream under different voting configurations, isolating the
//!   smoother's contribution to event F1.
//! * **GOP sweep** — encodes the same clip at several GOP lengths and
//!   reports bitrate and quality, the trade the archive/upload paths make
//!   between random access and compression.
//!
//! Usage: `cargo run --release -p ff-bench --bin ablation_smoothing_gop
//!         [--scale 16] [--frames 1500] [--alpha 0.25]`

use ff_bench::{arg_f64, arg_usize, write_csv};
use ff_core::evaluate::{mc_probs, score_probs};
use ff_core::train::{train_mc, TrainConfig};
use ff_core::{FeatureExtractor, McSpec, SmoothingConfig};
use ff_data::{DatasetSpec, Split};
use ff_models::MobileNetConfig;
use ff_video::codec::{Decoder, Encoder, EncoderConfig};

fn main() {
    let scale = arg_usize("--scale", 16);
    let frames = arg_usize("--frames", 1500);
    let alpha = arg_f64("--alpha", 0.25) as f32;
    let mut rows = Vec::new();

    // ---- K/N voting sweep on a fixed probability stream.
    let data = DatasetSpec::jackson_like(scale, frames, 42);
    let spec = McSpec::localized("ped", data.task.crop, 7);
    let mut extractor =
        FeatureExtractor::new(MobileNetConfig::with_width(alpha), vec![spec.tap.clone()]);
    let cal: Vec<_> = data
        .open(Split::Train)
        .take(8)
        .map(|lf| lf.frame.to_tensor())
        .collect();
    extractor.calibrate(&cal);
    let trained = train_mc(
        &mut extractor,
        &spec,
        &data,
        &TrainConfig {
            epochs: 5,
            ..Default::default()
        },
    );
    let mut model = trained.model;
    let test = data.open(Split::Test).map(|lf| (lf.frame, lf.label));
    let (probs, labels) = mc_probs(&mut extractor, &spec, &mut model, test);

    println!("K-voting ablation (same probabilities, Pedestrian task):");
    println!(
        "{:>3} {:>3} {:>8} {:>8} {:>8}",
        "N", "K", "F1", "recall", "prec"
    );
    for (n, k) in [
        (1, 1),
        (3, 1),
        (3, 2),
        (5, 1),
        (5, 2),
        (5, 3),
        (5, 5),
        (9, 3),
    ] {
        let s = score_probs(&probs, trained.threshold, SmoothingConfig { n, k }, &labels);
        println!(
            "{n:>3} {k:>3} {:>8.3} {:>8.3} {:>8.3}",
            s.f1, s.recall, s.precision
        );
        rows.push(format!(
            "voting,{n},{k},{:.4},{:.4},{:.4}",
            s.f1, s.recall, s.precision
        ));
    }
    println!("(paper default: N=5, K=2 — aggressive false-negative masking)");

    // ---- GOP length vs bitrate/quality.
    let clip: Vec<_> = data.open(Split::Test).take(90).map(|lf| lf.frame).collect();
    let res = clip[0].resolution();
    println!(
        "\nGOP-length ablation (QP 24, {} frames at {res}):",
        clip.len()
    );
    println!("{:>5} {:>12} {:>10}", "GOP", "kbit/s", "PSNR dB");
    for gop in [1usize, 5, 15, 45, 90] {
        let mut enc_cfg = EncoderConfig::with_qp(res, 15.0, 24);
        enc_cfg.gop = gop;
        let mut enc = Encoder::new(enc_cfg);
        let mut dec = Decoder::new();
        let mut bits = 0usize;
        let mut psnr = 0.0;
        for f in &clip {
            let e = enc.encode(f);
            bits += e.bits();
            psnr += dec.decode(&e).unwrap().psnr(f).min(60.0);
        }
        let kbps = bits as f64 * 15.0 / clip.len() as f64 / 1000.0;
        let psnr = psnr / clip.len() as f64;
        println!("{gop:>5} {kbps:>12.1} {psnr:>10.1}");
        rows.push(format!("gop,{gop},0,{kbps:.2},{psnr:.2},0"));
    }
    println!("(GOP 1 = all-intra: random access everywhere, most bits;");
    println!(" long GOPs compress best but coarsen demand-fetch granularity)");

    let path = write_csv("ablation_smoothing_gop", "ablation,a,b,x,y,z", &rows);
    println!("\nCSV: {}", path.display());
}
