//! Shared throughput measurement for Figures 5 and 6.
//!
//! All strategies process the same simulator frames; wall-clock is measured
//! in-process. Per the paper (§4.4): "Because our testbed software stack is
//! not heavily optimized, the magnitude of our performance measurements
//! matters less than the trends in how the different architectures scale."

use std::time::Instant;

use ff_core::baselines::{DcBank, MobileNetBank};
use ff_core::pipeline::{FilterForward, PipelineConfig};
use ff_core::smoothing::SmoothingConfig;
use ff_core::spec::{McKind, McSpec};
use ff_data::DatasetSpec;
use ff_models::{DcConfig, MobileNetConfig};
use ff_tensor::parallel::set_threads;
use ff_video::Frame;

/// One throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Number of concurrent classifiers.
    pub n: usize,
    /// Frames per second achieved.
    pub fps: f64,
    /// Mean seconds/frame in the base DNN (FF strategies only).
    pub base_per_frame: f64,
    /// Mean seconds/frame in the classifiers.
    pub classifiers_per_frame: f64,
}

/// Renders `n` frames of the Jackson-like scene at the given scale.
pub fn bench_frames(scale: usize, n: usize) -> Vec<Frame> {
    let spec = DatasetSpec::jackson_like(scale, n, 1234);
    spec.open(ff_data::Split::Train)
        .map(|lf| lf.frame)
        .collect()
}

/// Pins all tensor kernels to one thread for the duration of throughput
/// measurements.
///
/// The layer-size-adaptive threading that speeds up interactive runs would
/// bias the Figure 5 comparison: FilterForward's large base-DNN GEMMs
/// parallelize while the small DC layers do not. Single-threaded execution
/// makes all five strategies' wall-clock proportional to their arithmetic,
/// which is the paper's own framing ("the magnitude ... matters less than
/// the trends").
pub fn single_threaded() {
    set_threads(1);
}

/// Measures a FilterForward pipeline with `n` copies of one MC
/// architecture (untrained weights — §4.4 measures execution, not
/// accuracy).
pub fn measure_ff(kind: McKind, n: usize, frames: &[Frame], alpha: f32) -> ThroughputPoint {
    let res = frames[0].resolution();
    let mut cfg = PipelineConfig::new(res, 15.0);
    cfg.mobilenet = MobileNetConfig::with_width(alpha);
    cfg.archive = None; // isolate filtering cost, as in §4.4's phased runs
    let mut ff = FilterForward::new(cfg);
    for i in 0..n {
        let spec = match kind {
            McKind::FullFrame => McSpec::full_frame(format!("mc{i}"), 100 + i as u64),
            McKind::Localized => McSpec::localized(format!("mc{i}"), None, 100 + i as u64),
            McKind::Windowed => McSpec::windowed(format!("mc{i}"), None, 100 + i as u64),
        };
        let spec = McSpec {
            smoothing: SmoothingConfig::default(),
            ..spec
        };
        ff.deploy(spec);
    }
    // Warm-up frame (first-touch allocations), then take the fastest of
    // `REPEATS` passes — the standard defense against scheduler noise.
    let _ = ff.process(&frames[0]);
    let mut best_wall = f64::INFINITY;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        for f in &frames[1..] {
            let _ = ff.process(f);
        }
        best_wall = best_wall.min(t0.elapsed().as_secs_f64());
    }
    let timers = *ff.timers();
    let measured = (frames.len() - 1) as f64;
    ThroughputPoint {
        n,
        fps: measured / best_wall,
        base_per_frame: timers.base_dnn.as_secs_f64() / timers.frames as f64,
        classifiers_per_frame: timers.microclassifiers.as_secs_f64() / timers.frames as f64,
    }
}

/// Timing repetitions per point (fastest pass wins).
const REPEATS: usize = 3;

/// Measures a bank of `n` discrete classifiers.
pub fn measure_dcs(n: usize, frames: &[Frame], seed: u64) -> ThroughputPoint {
    let res = frames[0].resolution();
    let cfg = DcConfig::representative(res.height, res.width, seed);
    let mut bank = DcBank::new(cfg, n);
    let tensors: Vec<_> = frames.iter().map(Frame::to_tensor).collect();
    let _ = bank.classify_all(&tensors[0]);
    let mut best_wall = f64::INFINITY;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        for t in &tensors[1..] {
            let _ = bank.classify_all(t);
        }
        best_wall = best_wall.min(t0.elapsed().as_secs_f64());
    }
    let measured = (tensors.len() - 1) as f64;
    ThroughputPoint {
        n,
        fps: measured / best_wall,
        base_per_frame: 0.0,
        classifiers_per_frame: best_wall / measured,
    }
}

/// Measures a bank of `n` full MobileNets.
pub fn measure_mobilenets(n: usize, frames: &[Frame], alpha: f32) -> ThroughputPoint {
    let res = frames[0].resolution();
    let mut bank = MobileNetBank::new(MobileNetConfig::with_width(alpha), res, n);
    let tensors: Vec<_> = frames.iter().map(Frame::to_tensor).collect();
    let _ = bank.classify_all(&tensors[0]);
    let mut best_wall = f64::INFINITY;
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        for t in &tensors[1..] {
            let _ = bank.classify_all(t);
        }
        best_wall = best_wall.min(t0.elapsed().as_secs_f64());
    }
    let measured = (tensors.len() - 1) as f64;
    ThroughputPoint {
        n,
        fps: measured / best_wall,
        base_per_frame: 0.0,
        classifiers_per_frame: best_wall / measured,
    }
}

/// The classifier counts Figure 5/6 sweep over.
pub fn figure5_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2, 4, 8, 16, 32, 50]
    } else {
        vec![
            1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20, 25, 30, 35, 40, 45, 50,
        ]
    }
}
