//! Criterion micro-benchmarks for the reproduction's hot components:
//! GEMM, convolution lowering, codec encode/decode, scene rendering,
//! feature extraction, and per-MC marginal cost.
//!
//! These complement the figure binaries: the figures measure end-to-end
//! trends; these pin the per-component costs those trends are built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ff_core::spec::{McKind, McSpec};
use ff_core::FeatureExtractor;
use ff_models::{DcConfig, MobileNetConfig, LAYER_FULL_FRAME_TAP, LAYER_LOCALIZED_TAP};
use ff_nn::Phase;
use ff_tensor::Tensor;
use ff_video::codec::{Decoder, Encoder, EncoderConfig};
use ff_video::scene::{Scene, SceneConfig};
use ff_video::Resolution;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[32usize, 128] {
        let a = Tensor::filled(vec![n, n], 0.5);
        let b = Tensor::filled(vec![n, n], 0.25);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(ff_tensor::matmul(&a, &b)));
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let res = Resolution::new(160, 90);
    let frames: Vec<_> = Scene::new(SceneConfig {
        resolution: res,
        seed: 1,
        pedestrian_rate: 0.05,
        ..Default::default()
    })
    .take(4)
    .map(|(f, _)| f)
    .collect();

    c.bench_function("codec/encode_4_frames_160x90", |b| {
        b.iter(|| {
            let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, 24));
            for f in &frames {
                std::hint::black_box(enc.encode(f));
            }
        });
    });
    c.bench_function("codec/roundtrip_4_frames_160x90", |b| {
        b.iter(|| {
            let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, 24));
            let mut dec = Decoder::new();
            for f in &frames {
                let e = enc.encode(f);
                std::hint::black_box(dec.decode(&e).unwrap());
            }
        });
    });
}

fn bench_scene(c: &mut Criterion) {
    c.bench_function("scene/render_frame_192x108", |b| {
        let mut scene = Scene::new(SceneConfig {
            pedestrian_rate: 0.05,
            car_rate: 0.03,
            ..Default::default()
        });
        b.iter(|| std::hint::black_box(scene.step()));
    });
}

fn bench_extraction_and_mcs(c: &mut Criterion) {
    let res = Resolution::new(120, 67); // scale 16
    let mut extractor = FeatureExtractor::new(
        MobileNetConfig::with_width(0.5),
        vec![LAYER_LOCALIZED_TAP.into(), LAYER_FULL_FRAME_TAP.into()],
    );
    let frame = Tensor::filled(vec![res.height, res.width, 3], 0.4);
    c.bench_function("extractor/base_dnn_120x67_a0.5", |b| {
        b.iter(|| {
            let maps = extractor.extract(&frame);
            std::hint::black_box(maps.taps().count())
        });
    });

    // extract() returns maps borrowing the extractor; clone to keep them
    // across the MC constructions below.
    let maps = extractor.extract(&frame).clone();
    for (name, kind) in [
        ("full_frame", McKind::FullFrame),
        ("localized", McKind::Localized),
    ] {
        let spec = match kind {
            McKind::FullFrame => McSpec::full_frame("m", 1),
            _ => McSpec::localized("m", None, 1),
        };
        let mut rt = spec.build(&extractor, res, ff_core::McId(0));
        let fm = maps.get(&rt.spec().tap.clone()).clone();
        c.bench_function(&format!("mc/{name}_marginal"), |b| {
            b.iter(|| std::hint::black_box(rt.prob_single(&fm)));
        });
    }

    let dc_cfg = DcConfig::representative(res.height, res.width, 1);
    let mut dc = dc_cfg.build();
    let pixels = Tensor::filled(vec![res.height, res.width, 3], 0.4);
    c.bench_function("dc/representative_full_cost", |b| {
        b.iter(|| std::hint::black_box(dc.forward(&pixels, Phase::Inference)));
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gemm, bench_codec, bench_scene, bench_extraction_and_mcs
}
criterion_main!(benches);
