//! Video substrate for the FilterForward reproduction: frames, a synthetic
//! wide-angle surveillance scene simulator, and a from-scratch block video
//! codec.
//!
//! The paper's evaluation needs three things from its video stack, none of
//! which require H.264 itself (DESIGN.md substitutions S3/S4):
//!
//! 1. **Real frames with ground truth** — the [`scene`] module renders a
//!    deterministic perspective street scene (pedestrians, cars, cyclists,
//!    dogs; clothing-color attributes; Poisson arrivals) and emits exact
//!    per-frame object annotations, standing in for the hand-labeled
//!    Jackson/Roadway camera datasets.
//! 2. **Bits on the wire for a target bitrate** — the [`codec`] module is a
//!    complete motion-compensated transform codec (YCbCr 4:2:0, 8×8 DCT,
//!    QP-driven quantization, 16×16 motion search, I/P GOPs, Exp-Golomb
//!    entropy coding, closed-loop rate control) whose encoder output is the
//!    bandwidth FilterForward accounts for.
//! 3. **Real quality loss at low bitrate** — the same codec's decoder feeds
//!    the "compress everything" baseline of Figure 4, so heavy compression
//!    genuinely destroys the small details the paper's argument hinges on.

#![warn(missing_docs)]

pub mod codec;
mod frame;
pub mod io;
pub mod scene;
pub mod source;

pub use frame::{Frame, Resolution};
pub use source::{
    DutyCycleSource, FaultySource, FrameSource, RecordedSource, SceneSource, SourceFault,
    SourceFaultKind, SourcePoll,
};
