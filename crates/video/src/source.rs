//! [`FrameSource`]: the pull interface camera streams present to the
//! multi-stream runtime.
//!
//! The paper's edge node ingests many live camera feeds; in this
//! reproduction a feed can be the deterministic [`Scene`](crate::scene::Scene)
//! simulator, a pre-rendered/recorded clip, or anything else that yields
//! frames in order. The runtime's per-stream decode stage pulls from a
//! `FrameSource` on its own thread, so implementations only need `Send`,
//! not `Sync`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scene::{Scene, SceneConfig};
use crate::{Frame, Resolution};

/// What a source produced for one virtual-time tick (one frame interval);
/// see [`FrameSource::poll_frame`].
#[derive(Debug)]
pub enum SourcePoll {
    /// A frame arrived this tick.
    Frame(Frame),
    /// The camera produced nothing this tick but the stream is still live
    /// (a night-time camera, a motion-gated feed). The stream's clock still
    /// advances.
    Idle,
    /// End of stream; no further ticks will produce frames.
    End,
}

/// An ordered stream of frames with fixed geometry and rate.
pub trait FrameSource: Send {
    /// The stream's frame size (constant for the stream's lifetime).
    fn resolution(&self) -> Resolution;

    /// The stream's nominal frames per second.
    fn fps(&self) -> f64;

    /// Produces the next frame, or `None` at end of stream.
    fn next_frame(&mut self) -> Option<Frame>;

    /// Polls the source for one virtual-time tick (one frame interval) —
    /// the interface the controlled edge-node runtime drives, where a
    /// source may be **idle** for a tick without ending (see
    /// [`SourcePoll`]). The default maps straight onto [`Self::next_frame`]:
    /// ordinary sources are never idle.
    ///
    /// Implementations must be consistent with `next_frame`: interleaving
    /// the two calls is unspecified, but a pure `poll_frame` run must yield
    /// the same frames, in the same order, as a pure `next_frame` run with
    /// the idle ticks deleted.
    fn poll_frame(&mut self) -> SourcePoll {
        match self.next_frame() {
            Some(f) => SourcePoll::Frame(f),
            None => SourcePoll::End,
        }
    }

    /// The fraction of ticks this source is expected to produce a frame —
    /// the **duty fraction** admission control prices a stream at. An
    /// always-on source is 1.0; a [`DutyCycleSource`] reports
    /// `active / (active + idle)`. Wrappers forward the inner value:
    /// fault windows shift timing, not the long-run schedule.
    fn duty_fraction(&self) -> f64 {
        1.0
    }
}

// Boxed sources are sources too, so adapters like [`FaultySource`] can wrap
// an already type-erased stream (the runtime stores `Box<dyn FrameSource>`).
impl FrameSource for Box<dyn FrameSource> {
    fn resolution(&self) -> Resolution {
        (**self).resolution()
    }

    fn fps(&self) -> f64 {
        (**self).fps()
    }

    fn next_frame(&mut self) -> Option<Frame> {
        (**self).next_frame()
    }

    fn poll_frame(&mut self) -> SourcePoll {
        (**self).poll_frame()
    }

    fn duty_fraction(&self) -> f64 {
        (**self).duty_fraction()
    }
}

/// A [`Scene`] simulator bounded to a fixed number of frames — the
/// "synthetic decode" stage of the multi-stream runtime.
#[derive(Debug)]
pub struct SceneSource {
    scene: Scene,
    remaining: u64,
}

impl SceneSource {
    /// Creates a source that renders `frames` frames of the given scene.
    pub fn new(cfg: SceneConfig, frames: u64) -> Self {
        SceneSource {
            scene: Scene::new(cfg),
            remaining: frames,
        }
    }

    /// Frames not yet rendered.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl FrameSource for SceneSource {
    fn resolution(&self) -> Resolution {
        self.scene.config().resolution
    }

    fn fps(&self) -> f64 {
        self.scene.config().fps
    }

    fn next_frame(&mut self) -> Option<Frame> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.scene.step().0)
    }
}

/// A pre-rendered (or previously recorded) clip replayed as a stream.
#[derive(Debug)]
pub struct RecordedSource {
    frames: std::vec::IntoIter<Frame>,
    resolution: Resolution,
    fps: f64,
}

impl RecordedSource {
    /// Wraps a clip; all frames must share the first frame's resolution.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or frame sizes vary.
    pub fn new(frames: Vec<Frame>, fps: f64) -> Self {
        let resolution = frames
            .first()
            .expect("recorded source needs at least one frame")
            .resolution();
        assert!(
            frames.iter().all(|f| f.resolution() == resolution),
            "recorded source frames must share one resolution"
        );
        RecordedSource {
            frames: frames.into_iter(),
            resolution,
            fps,
        }
    }
}

impl FrameSource for RecordedSource {
    fn resolution(&self) -> Resolution {
        self.resolution
    }

    fn fps(&self) -> f64 {
        self.fps
    }

    fn next_frame(&mut self) -> Option<Frame> {
        self.frames.next()
    }
}

/// A diurnal-load wrapper: replays an inner source through a repeating
/// *duty cycle* of `active` frame ticks followed by `idle` ticks — a street
/// camera that goes quiet at night and returns at dawn. During active
/// phases each tick pulls one inner frame; during idle phases
/// [`FrameSource::poll_frame`] reports [`SourcePoll::Idle`] while the inner
/// source is untouched, so the *content* of the stream is exactly the inner
/// stream — only its timing changes.
///
/// The pull interface ([`FrameSource::next_frame`]) has no idle notion, so
/// it silently skips idle ticks and plays the inner frames back to back;
/// drivers that care about load shape must use `poll_frame`.
#[derive(Debug)]
pub struct DutyCycleSource<S> {
    inner: S,
    active: u64,
    idle: u64,
    tick: u64,
}

impl<S: FrameSource> DutyCycleSource<S> {
    /// Wraps `inner` with a repeating schedule of `active` frame-producing
    /// ticks followed by `idle` silent ticks. `idle = 0` is the identity
    /// wrapper.
    ///
    /// # Panics
    ///
    /// Panics if `active` is 0 (the source would never produce a frame).
    pub fn new(inner: S, active: u64, idle: u64) -> Self {
        assert!(active > 0, "duty cycle needs at least one active tick");
        DutyCycleSource {
            inner,
            active,
            idle,
            tick: 0,
        }
    }

    /// Like [`Self::new`] but starting `phase` ticks into the cycle, so a
    /// fleet of cameras on the same schedule can stagger their wake times
    /// (phase `active` puts the first poll at the start of the idle span).
    /// `phase` is taken modulo the period.
    pub fn with_phase(inner: S, active: u64, idle: u64, phase: u64) -> Self {
        let mut src = Self::new(inner, active, idle);
        src.tick = phase % (active + idle);
        src
    }

    /// Ticks polled so far (idle ones included).
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: FrameSource> FrameSource for DutyCycleSource<S> {
    fn resolution(&self) -> Resolution {
        self.inner.resolution()
    }

    fn fps(&self) -> f64 {
        self.inner.fps()
    }

    fn next_frame(&mut self) -> Option<Frame> {
        // The pull interface cannot express "idle now": skip silent ticks.
        loop {
            match self.poll_frame() {
                SourcePoll::Frame(f) => return Some(f),
                SourcePoll::Idle => continue,
                SourcePoll::End => return None,
            }
        }
    }

    fn poll_frame(&mut self) -> SourcePoll {
        let phase = self.tick % (self.active + self.idle);
        self.tick += 1;
        if phase < self.active {
            match self.inner.next_frame() {
                Some(f) => SourcePoll::Frame(f),
                None => SourcePoll::End,
            }
        } else {
            SourcePoll::Idle
        }
    }

    fn duty_fraction(&self) -> f64 {
        // The inner source may itself be duty-cycled; fractions compose.
        self.inner.duty_fraction() * self.active as f64 / (self.active + self.idle) as f64
    }
}

/// What a [`FaultySource`] does to the stream during a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceFaultKind {
    /// The camera stalls: polls report [`SourcePoll::Idle`] and the inner
    /// source is untouched, so stream **content is preserved** — the frames
    /// simply arrive after the stall (like [`DutyCycleSource`] idling).
    Stall,
    /// The camera blacks out: it keeps producing frames on schedule, but
    /// every frame in the window is replaced by an all-black one (the inner
    /// frame is consumed — content in the window is lost).
    Blackout,
    /// The sensor corrupts: frames in the window pass through with a
    /// deterministic noise band overwritten into their pixels, seeded by
    /// `seed ^ tick` so every run corrupts identically.
    Corrupt {
        /// Seed for the deterministic corruption noise.
        seed: u64,
    },
}

/// One scheduled camera fault: `kind` applies for `ticks` consecutive polls
/// starting at poll number `at_tick` (0-based, idle polls included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceFault {
    /// First poll tick the fault covers.
    pub at_tick: u64,
    /// Poll ticks the fault lasts.
    pub ticks: u64,
    /// What happens during the window.
    pub kind: SourceFaultKind,
}

impl SourceFault {
    /// Whether this fault covers poll tick `t`.
    pub fn covers(&self, t: u64) -> bool {
        t >= self.at_tick && t - self.at_tick < self.ticks
    }
}

/// Deterministic camera-fault injection: wraps an inner source with a
/// schedule of [`SourceFault`] windows keyed to the wrapper's own poll
/// tick counter. Outside every window the wrapper is the identity.
///
/// Stalls preserve content (only timing shifts — verdicts downstream stay
/// bit-identical to the fault-free stream); blackouts and corruption
/// deterministically alter the covered frames, so downstream effects are
/// confined to exactly the scheduled window. Like [`DutyCycleSource`], the
/// pull interface ([`FrameSource::next_frame`]) cannot express a stall and
/// silently skips those ticks; drivers that care use `poll_frame`.
#[derive(Debug)]
pub struct FaultySource<S> {
    inner: S,
    faults: Vec<SourceFault>,
    tick: u64,
}

impl<S: FrameSource> FaultySource<S> {
    /// Wraps `inner` with the given fault schedule. Overlapping windows
    /// resolve to the **first** covering fault in `faults` order.
    pub fn new(inner: S, faults: Vec<SourceFault>) -> Self {
        FaultySource {
            inner,
            faults,
            tick: 0,
        }
    }

    /// Ticks polled so far (stalled ones included).
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Overwrites a horizontal noise band (seeded by `seed ^ tick`) into
    /// the frame — roughly an eighth of the rows, starting at a
    /// seed-dependent offset.
    fn corrupt(frame: &mut Frame, seed: u64, tick: u64) {
        let mut rng = StdRng::seed_from_u64(seed ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let res = frame.resolution();
        let rows = (res.height / 8).max(1);
        let y0 = rng.gen_range(0..res.height.saturating_sub(rows).max(1));
        let row_bytes = res.width * 3;
        let data = frame.data_mut();
        for y in y0..(y0 + rows).min(res.height) {
            for b in &mut data[y * row_bytes..(y + 1) * row_bytes] {
                *b = rng.gen_range(0..=255u32) as u8;
            }
        }
    }
}

impl<S: FrameSource> FrameSource for FaultySource<S> {
    fn resolution(&self) -> Resolution {
        self.inner.resolution()
    }

    fn fps(&self) -> f64 {
        self.inner.fps()
    }

    fn next_frame(&mut self) -> Option<Frame> {
        // The pull interface cannot express a stall: skip stalled ticks.
        loop {
            match self.poll_frame() {
                SourcePoll::Frame(f) => return Some(f),
                SourcePoll::Idle => continue,
                SourcePoll::End => return None,
            }
        }
    }

    fn poll_frame(&mut self) -> SourcePoll {
        let t = self.tick;
        self.tick += 1;
        let active = self.faults.iter().find(|f| f.covers(t)).map(|f| f.kind);
        match active {
            None => self.inner.poll_frame(),
            Some(SourceFaultKind::Stall) => SourcePoll::Idle,
            Some(SourceFaultKind::Blackout) => match self.inner.poll_frame() {
                SourcePoll::Frame(f) => SourcePoll::Frame(Frame::black(f.resolution())),
                other => other,
            },
            Some(SourceFaultKind::Corrupt { seed }) => match self.inner.poll_frame() {
                SourcePoll::Frame(mut f) => {
                    Self::corrupt(&mut f, seed, t);
                    SourcePoll::Frame(f)
                }
                other => other,
            },
        }
    }

    fn duty_fraction(&self) -> f64 {
        // Fault windows are transient; the long-run schedule is the inner's.
        self.inner.duty_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_source_is_bounded_and_matches_scene() {
        let cfg = SceneConfig {
            resolution: Resolution::new(48, 27),
            seed: 5,
            ..Default::default()
        };
        let mut src = SceneSource::new(cfg, 3);
        let mut scene = Scene::new(cfg);
        for _ in 0..3 {
            let a = src.next_frame().expect("within bound");
            let b = scene.step().0;
            assert_eq!(a.data(), b.data(), "source must replay the scene");
        }
        assert!(src.next_frame().is_none());
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn recorded_source_replays_in_order() {
        let res = Resolution::new(8, 4);
        let mut f1 = Frame::black(res);
        f1.set_pixel(0, 0, [1, 2, 3]);
        let mut src = RecordedSource::new(vec![Frame::black(res), f1.clone()], 15.0);
        assert_eq!(src.resolution(), res);
        assert_eq!(src.next_frame().unwrap().pixel(0, 0), [0, 0, 0]);
        assert_eq!(src.next_frame().unwrap().pixel(0, 0), [1, 2, 3]);
        assert!(src.next_frame().is_none());
    }

    #[test]
    fn duty_cycle_idles_on_schedule_and_preserves_content() {
        let cfg = SceneConfig {
            resolution: Resolution::new(48, 27),
            seed: 9,
            ..Default::default()
        };
        // 2 active, 3 idle, repeating; inner bounded to 5 frames.
        let mut duty = DutyCycleSource::new(SceneSource::new(cfg, 5), 2, 3);
        let mut plain = SceneSource::new(cfg, 5);
        let mut produced = Vec::new();
        let mut pattern = Vec::new();
        loop {
            match duty.poll_frame() {
                SourcePoll::Frame(f) => {
                    pattern.push('F');
                    produced.push(f);
                }
                SourcePoll::Idle => pattern.push('.'),
                SourcePoll::End => break,
            }
        }
        // FF...FF...F then End on the 5th active tick's sibling.
        assert_eq!(pattern.iter().collect::<String>(), "FF...FF...F");
        for f in &produced {
            let want = plain.next_frame().expect("same count");
            assert_eq!(f.data(), want.data(), "content must be the inner stream");
        }
        assert!(plain.next_frame().is_none());
    }

    #[test]
    fn duty_cycle_next_frame_skips_idle_ticks() {
        let cfg = SceneConfig {
            resolution: Resolution::new(48, 27),
            seed: 11,
            ..Default::default()
        };
        let mut duty = DutyCycleSource::new(SceneSource::new(cfg, 4), 1, 7);
        let mut plain = SceneSource::new(cfg, 4);
        for _ in 0..4 {
            assert_eq!(
                duty.next_frame().unwrap().data(),
                plain.next_frame().unwrap().data()
            );
        }
        assert!(duty.next_frame().is_none());
    }

    #[test]
    fn stall_preserves_content_and_only_shifts_timing() {
        let cfg = SceneConfig {
            resolution: Resolution::new(48, 27),
            seed: 13,
            ..Default::default()
        };
        let fault = SourceFault {
            at_tick: 2,
            ticks: 3,
            kind: SourceFaultKind::Stall,
        };
        let mut faulty = FaultySource::new(SceneSource::new(cfg, 4), vec![fault]);
        let mut plain = SceneSource::new(cfg, 4);
        let mut pattern = Vec::new();
        let mut produced = Vec::new();
        loop {
            match faulty.poll_frame() {
                SourcePoll::Frame(f) => {
                    pattern.push('F');
                    produced.push(f);
                }
                SourcePoll::Idle => pattern.push('.'),
                SourcePoll::End => break,
            }
        }
        assert_eq!(pattern.iter().collect::<String>(), "FF...FF");
        for f in &produced {
            let want = plain.next_frame().expect("same count");
            assert_eq!(f.data(), want.data(), "stall must preserve content");
        }
        assert!(plain.next_frame().is_none());
    }

    #[test]
    fn blackout_and_corruption_are_deterministic_and_windowed() {
        let cfg = SceneConfig {
            resolution: Resolution::new(48, 27),
            seed: 17,
            ..Default::default()
        };
        let faults = vec![
            SourceFault {
                at_tick: 1,
                ticks: 1,
                kind: SourceFaultKind::Blackout,
            },
            SourceFault {
                at_tick: 3,
                ticks: 1,
                kind: SourceFaultKind::Corrupt { seed: 99 },
            },
        ];
        let run = || {
            let mut src = FaultySource::new(SceneSource::new(cfg, 5), faults.clone());
            let mut out = Vec::new();
            while let Some(f) = src.next_frame() {
                out.push(f);
            }
            out
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 5);
        let mut plain = SceneSource::new(cfg, 5);
        for (i, f) in a.iter().enumerate() {
            let want = plain.next_frame().unwrap();
            match i {
                1 => assert!(f.data().iter().all(|&b| b == 0), "blacked out"),
                3 => assert_ne!(f.data(), want.data(), "corrupted"),
                _ => assert_eq!(f.data(), want.data(), "outside windows: identity"),
            }
            // Bit-replayable across runs, faulted frames included.
            assert_eq!(f.data(), b[i].data(), "frame {i} must replay identically");
        }
    }

    #[test]
    fn boxed_sources_are_sources() {
        let cfg = SceneConfig {
            resolution: Resolution::new(48, 27),
            seed: 19,
            ..Default::default()
        };
        let boxed: Box<dyn FrameSource> = Box::new(SceneSource::new(cfg, 2));
        // A boxed source can be wrapped like any other (the runtime's
        // type-erased streams go through exactly this path).
        let mut wrapped = FaultySource::new(
            boxed,
            vec![SourceFault {
                at_tick: 0,
                ticks: 1,
                kind: SourceFaultKind::Stall,
            }],
        );
        assert!(matches!(wrapped.poll_frame(), SourcePoll::Idle));
        assert!(matches!(wrapped.poll_frame(), SourcePoll::Frame(_)));
        assert!(matches!(wrapped.poll_frame(), SourcePoll::Frame(_)));
        assert!(matches!(wrapped.poll_frame(), SourcePoll::End));
    }

    #[test]
    fn duty_fraction_reflects_the_schedule() {
        let cfg = SceneConfig {
            resolution: Resolution::new(48, 27),
            seed: 23,
            ..Default::default()
        };
        let plain = SceneSource::new(cfg, 4);
        assert_eq!(plain.duty_fraction(), 1.0);
        let duty = DutyCycleSource::new(SceneSource::new(cfg, 4), 2, 6);
        assert_eq!(duty.duty_fraction(), 0.25);
        // Wrappers forward: a boxed faulty duty-cycled source still prices
        // at the schedule's fraction.
        let boxed: Box<dyn FrameSource> = Box::new(duty);
        let faulty = FaultySource::new(boxed, Vec::new());
        assert_eq!(faulty.duty_fraction(), 0.25);
        // Nested duty cycles compose multiplicatively.
        let nested =
            DutyCycleSource::new(DutyCycleSource::new(SceneSource::new(cfg, 4), 1, 1), 1, 1);
        assert_eq!(nested.duty_fraction(), 0.25);
    }

    #[test]
    fn phase_offset_shifts_the_wake_schedule() {
        let cfg = SceneConfig {
            resolution: Resolution::new(48, 27),
            seed: 29,
            ..Default::default()
        };
        // Phase 2 on a (2 active, 3 idle) cycle starts mid-idle: the first
        // frame waits out the remaining idle ticks, then content replays
        // the inner stream unchanged.
        let mut duty = DutyCycleSource::with_phase(SceneSource::new(cfg, 3), 2, 3, 2);
        let mut plain = SceneSource::new(cfg, 3);
        let mut pattern = Vec::new();
        let mut produced = Vec::new();
        loop {
            match duty.poll_frame() {
                SourcePoll::Frame(f) => {
                    pattern.push('F');
                    produced.push(f);
                }
                SourcePoll::Idle => pattern.push('.'),
                SourcePoll::End => break,
            }
        }
        assert_eq!(pattern.iter().collect::<String>(), "...FF...F");
        for f in &produced {
            let want = plain.next_frame().expect("same count");
            assert_eq!(f.data(), want.data(), "phase must not change content");
        }
        // Phase is taken modulo the period: a full-period offset is the
        // unshifted schedule.
        let mut wrapped = DutyCycleSource::with_phase(SceneSource::new(cfg, 2), 2, 3, 5);
        assert!(matches!(wrapped.poll_frame(), SourcePoll::Frame(_)));
    }

    #[test]
    #[should_panic(expected = "at least one active tick")]
    fn zero_active_duty_cycle_rejected() {
        let cfg = SceneConfig::default();
        let _ = DutyCycleSource::new(SceneSource::new(cfg, 1), 0, 3);
    }

    #[test]
    #[should_panic(expected = "share one resolution")]
    fn recorded_source_rejects_mixed_sizes() {
        let _ = RecordedSource::new(
            vec![
                Frame::black(Resolution::new(8, 4)),
                Frame::black(Resolution::new(4, 4)),
            ],
            15.0,
        );
    }
}
