//! [`FrameSource`]: the pull interface camera streams present to the
//! multi-stream runtime.
//!
//! The paper's edge node ingests many live camera feeds; in this
//! reproduction a feed can be the deterministic [`Scene`](crate::scene::Scene)
//! simulator, a pre-rendered/recorded clip, or anything else that yields
//! frames in order. The runtime's per-stream decode stage pulls from a
//! `FrameSource` on its own thread, so implementations only need `Send`,
//! not `Sync`.

use crate::scene::{Scene, SceneConfig};
use crate::{Frame, Resolution};

/// An ordered stream of frames with fixed geometry and rate.
pub trait FrameSource: Send {
    /// The stream's frame size (constant for the stream's lifetime).
    fn resolution(&self) -> Resolution;

    /// The stream's nominal frames per second.
    fn fps(&self) -> f64;

    /// Produces the next frame, or `None` at end of stream.
    fn next_frame(&mut self) -> Option<Frame>;
}

/// A [`Scene`] simulator bounded to a fixed number of frames — the
/// "synthetic decode" stage of the multi-stream runtime.
#[derive(Debug)]
pub struct SceneSource {
    scene: Scene,
    remaining: u64,
}

impl SceneSource {
    /// Creates a source that renders `frames` frames of the given scene.
    pub fn new(cfg: SceneConfig, frames: u64) -> Self {
        SceneSource {
            scene: Scene::new(cfg),
            remaining: frames,
        }
    }

    /// Frames not yet rendered.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl FrameSource for SceneSource {
    fn resolution(&self) -> Resolution {
        self.scene.config().resolution
    }

    fn fps(&self) -> f64 {
        self.scene.config().fps
    }

    fn next_frame(&mut self) -> Option<Frame> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.scene.step().0)
    }
}

/// A pre-rendered (or previously recorded) clip replayed as a stream.
#[derive(Debug)]
pub struct RecordedSource {
    frames: std::vec::IntoIter<Frame>,
    resolution: Resolution,
    fps: f64,
}

impl RecordedSource {
    /// Wraps a clip; all frames must share the first frame's resolution.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or frame sizes vary.
    pub fn new(frames: Vec<Frame>, fps: f64) -> Self {
        let resolution = frames
            .first()
            .expect("recorded source needs at least one frame")
            .resolution();
        assert!(
            frames.iter().all(|f| f.resolution() == resolution),
            "recorded source frames must share one resolution"
        );
        RecordedSource {
            frames: frames.into_iter(),
            resolution,
            fps,
        }
    }
}

impl FrameSource for RecordedSource {
    fn resolution(&self) -> Resolution {
        self.resolution
    }

    fn fps(&self) -> f64 {
        self.fps
    }

    fn next_frame(&mut self) -> Option<Frame> {
        self.frames.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_source_is_bounded_and_matches_scene() {
        let cfg = SceneConfig {
            resolution: Resolution::new(48, 27),
            seed: 5,
            ..Default::default()
        };
        let mut src = SceneSource::new(cfg, 3);
        let mut scene = Scene::new(cfg);
        for _ in 0..3 {
            let a = src.next_frame().expect("within bound");
            let b = scene.step().0;
            assert_eq!(a.data(), b.data(), "source must replay the scene");
        }
        assert!(src.next_frame().is_none());
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn recorded_source_replays_in_order() {
        let res = Resolution::new(8, 4);
        let mut f1 = Frame::black(res);
        f1.set_pixel(0, 0, [1, 2, 3]);
        let mut src = RecordedSource::new(vec![Frame::black(res), f1.clone()], 15.0);
        assert_eq!(src.resolution(), res);
        assert_eq!(src.next_frame().unwrap().pixel(0, 0), [0, 0, 0]);
        assert_eq!(src.next_frame().unwrap().pixel(0, 0), [1, 2, 3]);
        assert!(src.next_frame().is_none());
    }

    #[test]
    #[should_panic(expected = "share one resolution")]
    fn recorded_source_rejects_mixed_sizes() {
        let _ = RecordedSource::new(
            vec![
                Frame::black(Resolution::new(8, 4)),
                Frame::black(Resolution::new(4, 4)),
            ],
            15.0,
        );
    }
}
