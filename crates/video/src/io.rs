//! Frame export: binary PPM stills and Y4M clips, for eyeballing the
//! simulator's output and any decoded stream.
//!
//! ```sh
//! cargo run --release --example quickstart   # then view /tmp/*.ppm with any image tool
//! ```

use std::io::Write;

use crate::Frame;

/// Writes a frame as binary PPM (P6).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_ppm<W: Write>(frame: &Frame, mut w: W) -> std::io::Result<()> {
    writeln!(w, "P6\n{} {}\n255", frame.width(), frame.height())?;
    w.write_all(frame.data())
}

/// Writes frames as an uncompressed Y4M (YUV4MPEG2, C444) clip playable by
/// common tools.
///
/// # Errors
///
/// Returns any I/O error; also errors if `frames` is empty or sizes vary.
pub fn write_y4m<W: Write>(frames: &[Frame], fps: usize, mut w: W) -> std::io::Result<()> {
    let first = frames.first().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "no frames to write")
    })?;
    let (fw, fh) = (first.width(), first.height());
    writeln!(w, "YUV4MPEG2 W{fw} H{fh} F{fps}:1 Ip A1:1 C444")?;
    for f in frames {
        if f.width() != fw || f.height() != fh {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "frame size changed mid-clip",
            ));
        }
        writeln!(w, "FRAME")?;
        // Planar YCbCr 4:4:4 (BT.601 full range).
        let mut planes: Vec<Vec<u8>> = (0..3).map(|_| Vec::with_capacity(fw * fh)).collect();
        for px in f.data().chunks(3) {
            let (r, g, b) = (px[0] as f32, px[1] as f32, px[2] as f32);
            let y = 0.299 * r + 0.587 * g + 0.114 * b;
            let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
            let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
            planes[0].push(y.round().clamp(0.0, 255.0) as u8);
            planes[1].push(cb.round().clamp(0.0, 255.0) as u8);
            planes[2].push(cr.round().clamp(0.0, 255.0) as u8);
        }
        for p in &planes {
            w.write_all(p)?;
        }
    }
    Ok(())
}

/// Draws a 1-px rectangle outline onto a frame (annotation overlay for
/// detections and ground-truth boxes).
pub fn draw_box(frame: &mut Frame, x0: usize, y0: usize, x1: usize, y1: usize, color: [u8; 3]) {
    let (w, h) = (frame.width(), frame.height());
    let x1 = x1.min(w);
    let y1 = y1.min(h);
    if x0 >= x1 || y0 >= y1 {
        return;
    }
    for x in x0..x1 {
        frame.set_pixel(x, y0, color);
        frame.set_pixel(x, y1 - 1, color);
    }
    for y in y0..y1 {
        frame.set_pixel(x0, y, color);
        frame.set_pixel(x1 - 1, y, color);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Resolution;

    #[test]
    fn ppm_has_header_and_payload() {
        let f = Frame::black(Resolution::new(4, 3));
        let mut buf = Vec::new();
        write_ppm(&f, &mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(buf.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn y4m_frame_sizes() {
        let frames = vec![Frame::black(Resolution::new(8, 4)); 3];
        let mut buf = Vec::new();
        write_y4m(&frames, 15, &mut buf).unwrap();
        let header_end = buf.iter().position(|&b| b == b'\n').unwrap() + 1;
        // 3 × ("FRAME\n" + 3 planes of 32 bytes).
        assert_eq!(buf.len() - header_end, 3 * (6 + 3 * 32));
    }

    #[test]
    fn y4m_rejects_empty_and_mixed() {
        let mut buf = Vec::new();
        assert!(write_y4m(&[], 15, &mut buf).is_err());
        let mixed = vec![
            Frame::black(Resolution::new(8, 4)),
            Frame::black(Resolution::new(4, 4)),
        ];
        assert!(write_y4m(&mixed, 15, &mut buf).is_err());
    }

    #[test]
    fn draw_box_outlines_only() {
        let mut f = Frame::black(Resolution::new(6, 6));
        draw_box(&mut f, 1, 1, 5, 5, [255, 0, 0]);
        assert_eq!(f.pixel(1, 1), [255, 0, 0]); // corner
        assert_eq!(f.pixel(4, 1), [255, 0, 0]); // top edge
        assert_eq!(f.pixel(2, 2), [0, 0, 0]); // interior untouched
        assert_eq!(f.pixel(5, 5), [0, 0, 0]); // outside
    }
}
