//! Frame export: binary PPM stills and Y4M clips, for eyeballing the
//! simulator's output and any decoded stream.
//!
//! ```sh
//! cargo run --release --example quickstart   # then view /tmp/*.ppm with any image tool
//! ```

use std::io::Write;

use crate::Frame;

/// Writes a frame as binary PPM (P6).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_ppm<W: Write>(frame: &Frame, mut w: W) -> std::io::Result<()> {
    writeln!(w, "P6\n{} {}\n255", frame.width(), frame.height())?;
    w.write_all(frame.data())
}

/// Incremental Y4M (YUV4MPEG2, C444) writer: header once on the first
/// frame, then one `FRAME` block per [`Y4mWriter::push`].
///
/// Unlike [`write_y4m`] (which takes a `&[Frame]`), long or live captures
/// never need all frames resident: the multi-stream runtime can append each
/// frame as it is finalized. Plane conversion buffers are reused across
/// frames, so steady-state pushes allocate nothing.
#[derive(Debug)]
pub struct Y4mWriter<W: Write> {
    w: W,
    fps: usize,
    /// `(width, height)` fixed by the first pushed frame.
    dims: Option<(usize, usize)>,
    /// Reused planar YCbCr conversion buffers.
    planes: [Vec<u8>; 3],
    frames: u64,
}

impl<W: Write> Y4mWriter<W> {
    /// Creates a writer; nothing is written until the first [`Self::push`].
    pub fn new(w: W, fps: usize) -> Self {
        Y4mWriter {
            w,
            fps,
            dims: None,
            planes: [Vec::new(), Vec::new(), Vec::new()],
            frames: 0,
        }
    }

    /// Appends one frame, writing the stream header first if this is the
    /// first frame.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer, or `InvalidInput` if the
    /// frame's size differs from the first frame's.
    pub fn push(&mut self, frame: &Frame) -> std::io::Result<()> {
        let (fw, fh) = (frame.width(), frame.height());
        match self.dims {
            None => {
                let fps = self.fps;
                writeln!(self.w, "YUV4MPEG2 W{fw} H{fh} F{fps}:1 Ip A1:1 C444")?;
                self.dims = Some((fw, fh));
            }
            Some(dims) if dims != (fw, fh) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "frame size changed mid-clip",
                ));
            }
            Some(_) => {}
        }
        writeln!(self.w, "FRAME")?;
        // Planar YCbCr 4:4:4 (BT.601 full range).
        for p in &mut self.planes {
            p.clear();
            p.reserve(fw * fh);
        }
        for px in frame.data().chunks(3) {
            let (r, g, b) = (px[0] as f32, px[1] as f32, px[2] as f32);
            let y = 0.299 * r + 0.587 * g + 0.114 * b;
            let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
            let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
            self.planes[0].push(y.round().clamp(0.0, 255.0) as u8);
            self.planes[1].push(cb.round().clamp(0.0, 255.0) as u8);
            self.planes[2].push(cr.round().clamp(0.0, 255.0) as u8);
        }
        for p in &self.planes {
            self.w.write_all(p)?;
        }
        self.frames += 1;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Consumes the writer, returning the underlying sink.
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Writes frames as an uncompressed Y4M (YUV4MPEG2, C444) clip playable by
/// common tools. Convenience wrapper over [`Y4mWriter`] for fully-resident
/// clips.
///
/// # Errors
///
/// Returns any I/O error; also errors if `frames` is empty or sizes vary.
pub fn write_y4m<W: Write>(frames: &[Frame], fps: usize, w: W) -> std::io::Result<()> {
    if frames.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "no frames to write",
        ));
    }
    let mut writer = Y4mWriter::new(w, fps);
    for f in frames {
        writer.push(f)?;
    }
    Ok(())
}

/// Draws a 1-px rectangle outline onto a frame (annotation overlay for
/// detections and ground-truth boxes).
pub fn draw_box(frame: &mut Frame, x0: usize, y0: usize, x1: usize, y1: usize, color: [u8; 3]) {
    let (w, h) = (frame.width(), frame.height());
    let x1 = x1.min(w);
    let y1 = y1.min(h);
    if x0 >= x1 || y0 >= y1 {
        return;
    }
    for x in x0..x1 {
        frame.set_pixel(x, y0, color);
        frame.set_pixel(x, y1 - 1, color);
    }
    for y in y0..y1 {
        frame.set_pixel(x0, y, color);
        frame.set_pixel(x1 - 1, y, color);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Resolution;

    #[test]
    fn ppm_has_header_and_payload() {
        let f = Frame::black(Resolution::new(4, 3));
        let mut buf = Vec::new();
        write_ppm(&f, &mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(buf.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn y4m_frame_sizes() {
        let frames = vec![Frame::black(Resolution::new(8, 4)); 3];
        let mut buf = Vec::new();
        write_y4m(&frames, 15, &mut buf).unwrap();
        let header_end = buf.iter().position(|&b| b == b'\n').unwrap() + 1;
        // 3 × ("FRAME\n" + 3 planes of 32 bytes).
        assert_eq!(buf.len() - header_end, 3 * (6 + 3 * 32));
    }

    #[test]
    fn incremental_writer_matches_batch_output() {
        let frames: Vec<Frame> = (0..3)
            .map(|i| {
                let mut f = Frame::black(Resolution::new(8, 4));
                f.set_pixel(i, 0, [200, 10, 60]);
                f
            })
            .collect();
        let mut batch = Vec::new();
        write_y4m(&frames, 15, &mut batch).unwrap();
        let mut writer = Y4mWriter::new(Vec::new(), 15);
        for f in &frames {
            writer.push(f).unwrap();
        }
        assert_eq!(writer.frames(), 3);
        assert_eq!(writer.into_inner(), batch);
    }

    #[test]
    fn incremental_writer_rejects_size_change() {
        let mut writer = Y4mWriter::new(Vec::new(), 15);
        writer.push(&Frame::black(Resolution::new(8, 4))).unwrap();
        let err = writer
            .push(&Frame::black(Resolution::new(4, 4)))
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn y4m_rejects_empty_and_mixed() {
        let mut buf = Vec::new();
        assert!(write_y4m(&[], 15, &mut buf).is_err());
        let mixed = vec![
            Frame::black(Resolution::new(8, 4)),
            Frame::black(Resolution::new(4, 4)),
        ];
        assert!(write_y4m(&mixed, 15, &mut buf).is_err());
    }

    #[test]
    fn draw_box_outlines_only() {
        let mut f = Frame::black(Resolution::new(6, 6));
        draw_box(&mut f, 1, 1, 5, 5, [255, 0, 0]);
        assert_eq!(f.pixel(1, 1), [255, 0, 0]); // corner
        assert_eq!(f.pixel(4, 1), [255, 0, 0]); // top edge
        assert_eq!(f.pixel(2, 2), [0, 0, 0]); // interior untouched
        assert_eq!(f.pixel(5, 5), [0, 0, 0]); // outside
    }
}
