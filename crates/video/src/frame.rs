//! RGB frames.

use serde::{Deserialize, Serialize};

/// A frame size in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resolution {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Resolution {
    /// Creates a resolution.
    pub const fn new(width: usize, height: usize) -> Self {
        Resolution { width, height }
    }

    /// Total pixels.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// An 8-bit RGB frame, interleaved row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    resolution: Resolution,
    data: Vec<u8>,
}

impl Frame {
    /// Creates a black frame.
    pub fn black(resolution: Resolution) -> Self {
        Frame {
            resolution,
            data: vec![0; resolution.pixels() * 3],
        }
    }

    /// Wraps raw interleaved RGB data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width · height · 3`.
    pub fn from_rgb(resolution: Resolution, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), resolution.pixels() * 3, "bad RGB buffer size");
        Frame { resolution, data }
    }

    /// Frame size.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.resolution.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.resolution.height
    }

    /// Interleaved RGB bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable interleaved RGB bytes.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Pixel at `(x, y)`.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.resolution.width + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Sets the pixel at `(x, y)`.
    #[inline]
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        let i = (y * self.resolution.width + x) * 3;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Converts to an HWC `f32` tensor scaled to `[0, 1]` — the input format
    /// of every network in the reproduction.
    pub fn to_tensor(&self) -> ff_tensor::Tensor {
        ff_tensor::Tensor::from_vec(
            vec![self.resolution.height, self.resolution.width, 3],
            self.data.iter().map(|&b| b as f32 / 255.0).collect(),
        )
    }

    /// FNV-1a digest over the resolution and RGB bytes: a cheap stable
    /// fingerprint for asserting that fetched or replayed frame content
    /// is byte-identical (used by the fleet demand-fetch path).
    pub fn digest64(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for v in [self.resolution.width as u64, self.resolution.height as u64] {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        }
        for &b in &self.data {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
        h
    }

    /// Mean absolute per-channel difference to another frame, in 8-bit
    /// levels. Useful as a cheap change detector and in tests.
    ///
    /// # Panics
    ///
    /// Panics if resolutions differ.
    pub fn mean_abs_diff(&self, other: &Frame) -> f64 {
        assert_eq!(self.resolution, other.resolution, "frame size mismatch");
        let sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
            .sum();
        sum as f64 / self.data.len() as f64
    }

    /// Peak signal-to-noise ratio versus a reference frame, in dB over all
    /// RGB samples. Returns `f64::INFINITY` for identical frames.
    ///
    /// # Panics
    ///
    /// Panics if resolutions differ.
    pub fn psnr(&self, reference: &Frame) -> f64 {
        assert_eq!(self.resolution, reference.resolution, "frame size mismatch");
        let mse: f64 = self
            .data
            .iter()
            .zip(&reference.data)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_roundtrip() {
        let mut f = Frame::black(Resolution::new(4, 3));
        f.set_pixel(2, 1, [10, 20, 30]);
        assert_eq!(f.pixel(2, 1), [10, 20, 30]);
        assert_eq!(f.pixel(0, 0), [0, 0, 0]);
    }

    #[test]
    fn tensor_conversion_scales() {
        let mut f = Frame::black(Resolution::new(2, 2));
        f.set_pixel(0, 0, [255, 0, 128]);
        let t = f.to_tensor();
        assert_eq!(t.dims(), &[2, 2, 3]);
        assert!((t.at3(0, 0, 0) - 1.0).abs() < 1e-6);
        assert!((t.at3(0, 0, 2) - 128.0 / 255.0).abs() < 1e-3);
    }

    #[test]
    fn psnr_identity_is_infinite() {
        let f = Frame::black(Resolution::new(8, 8));
        assert!(f.psnr(&f).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let a = Frame::black(Resolution::new(8, 8));
        let mut small = a.clone();
        small.set_pixel(0, 0, [8, 8, 8]);
        let mut big = a.clone();
        for y in 0..8 {
            for x in 0..8 {
                big.set_pixel(x, y, [64, 64, 64]);
            }
        }
        assert!(a.psnr(&small) > a.psnr(&big));
    }

    #[test]
    #[should_panic(expected = "bad RGB buffer size")]
    fn from_rgb_validates_len() {
        let _ = Frame::from_rgb(Resolution::new(2, 2), vec![0; 5]);
    }

    #[test]
    fn digest_distinguishes_content_and_shape() {
        let a = Frame::black(Resolution::new(4, 3));
        assert_eq!(a.digest64(), a.clone().digest64(), "stable per content");
        let mut b = a.clone();
        b.set_pixel(1, 1, [0, 0, 1]);
        assert_ne!(a.digest64(), b.digest64(), "one-bit content change");
        // Same zeroed bytes, different shape.
        let c = Frame::black(Resolution::new(3, 4));
        assert_ne!(a.digest64(), c.digest64(), "shape is part of the digest");
    }
}
