//! Deterministic synthetic wide-angle surveillance scene (DESIGN.md S3).
//!
//! Stands in for the paper's Jackson Hole and Roadway camera feeds: a
//! fixed, wide-angle view of a street with a crosswalk, where pedestrians
//! (some wearing red), cars, cyclists and dogs enter, move through, and
//! leave. The renderer emits RGB frames *and* exact per-frame object
//! annotations, which become the ground-truth event labels the paper's
//! annotators produced by hand.
//!
//! Scene layout (fractions of frame height):
//!
//! ```text
//! 0.00 ─ sky
//! 0.22 ─ building facade band
//! 0.38 ─ road (two lanes, vertical crosswalk band mid-frame)
//! 0.74 ─ sidewalk (pedestrian path)
//! 0.88 ─ curb / foreground
//! ```
//!
//! Everything is driven by a seeded RNG: the same config produces the same
//! video and the same labels, bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Frame, Resolution};

/// Kinds of moving objects in the scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// A person walking on the sidewalk or crossing at the crosswalk.
    Pedestrian,
    /// A car driving in one of the two lanes.
    Car,
    /// A cyclist riding along the road edge.
    Cyclist,
    /// A dog trotting along the sidewalk.
    Dog,
}

/// An axis-aligned pixel bounding box (half-open: `x0..x1`, `y0..y1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x0: usize,
    /// Top edge.
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Bottom edge (exclusive).
    pub y1: usize,
}

impl BBox {
    /// Box area in pixels.
    pub fn area(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }

    /// Intersection area with another box.
    pub fn intersect_area(&self, other: &BBox) -> usize {
        let x0 = self.x0.max(other.x0);
        let x1 = self.x1.min(other.x1);
        let y0 = self.y0.max(other.y0);
        let y1 = self.y1.min(other.y1);
        if x0 < x1 && y0 < y1 {
            (x1 - x0) * (y1 - y0)
        } else {
            0
        }
    }

    /// Center point.
    pub fn center(&self) -> (usize, usize) {
        ((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }
}

/// Ground-truth annotation of one object in one frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectState {
    /// Stable per-object id (survives across frames).
    pub id: u64,
    /// Object kind.
    pub kind: ObjectKind,
    /// Pixel bounding box, clipped to the frame.
    pub bbox: BBox,
    /// Whether the object wears/carries something red (pedestrians only).
    pub wearing_red: bool,
    /// Whether a pedestrian is on a crosswalk trajectory.
    pub crossing: bool,
}

/// Scene configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Frame size.
    pub resolution: Resolution,
    /// Frames per second (drives object speeds).
    pub fps: f64,
    /// RNG seed.
    pub seed: u64,
    /// Expected pedestrian spawns per frame (Poisson-thinned Bernoulli).
    pub pedestrian_rate: f64,
    /// Fraction of pedestrians that cross the road at the crosswalk.
    pub crossing_fraction: f64,
    /// Fraction of pedestrians wearing red.
    pub red_fraction: f64,
    /// Expected car spawns per frame.
    pub car_rate: f64,
    /// Expected cyclist spawns per frame.
    pub cyclist_rate: f64,
    /// Expected dog spawns per frame.
    pub dog_rate: f64,
    /// Uniform sensor noise amplitude in 8-bit levels (0 disables).
    pub noise_level: f64,
    /// Multiplier on all object speeds (1.0 = defaults). Datasets use this
    /// to tune event durations toward the paper's statistics.
    pub speed_multiplier: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            resolution: Resolution::new(192, 108),
            fps: 15.0,
            seed: 7,
            pedestrian_rate: 0.01,
            crossing_fraction: 0.35,
            red_fraction: 0.2,
            car_rate: 0.008,
            cyclist_rate: 0.002,
            dog_rate: 0.001,
            noise_level: 1.5,
            speed_multiplier: 1.0,
        }
    }
}

/// Vertical scene bands as fractions of frame height.
mod layout {
    pub const BUILDINGS_TOP: f64 = 0.22;
    pub const ROAD_TOP: f64 = 0.38;
    pub const LANE_SPLIT: f64 = 0.56;
    pub const ROAD_BOTTOM: f64 = 0.74;
    pub const SIDEWALK_BOTTOM: f64 = 0.88;
    /// Crosswalk horizontal band, as fractions of frame width.
    pub const CROSSWALK_X0: f64 = 0.44;
    pub const CROSSWALK_X1: f64 = 0.56;
}

#[derive(Debug, Clone)]
struct Obj {
    id: u64,
    kind: ObjectKind,
    /// Position of the object's anchor (feet / wheel line), in pixels.
    x: f64,
    y: f64,
    /// Velocity in pixels per frame.
    vx: f64,
    vy: f64,
    wearing_red: bool,
    crossing: bool,
    /// Base color of the body/torso.
    color: [u8; 3],
    /// Gait phase for pedestrians/dogs.
    phase: f64,
}

/// The scene simulator. Produces `(Frame, Vec<ObjectState>)` per step.
#[derive(Debug)]
pub struct Scene {
    cfg: SceneConfig,
    rng: StdRng,
    background: Frame,
    objects: Vec<Obj>,
    frame_index: u64,
    next_id: u64,
}

impl Scene {
    /// Creates a scene; the static background is rendered once here.
    pub fn new(cfg: SceneConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let background = render_background(cfg.resolution, &mut rng);
        Scene {
            cfg,
            rng,
            background,
            objects: Vec::new(),
            frame_index: 0,
            next_id: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.cfg
    }

    /// Frames rendered so far.
    pub fn frame_index(&self) -> u64 {
        self.frame_index
    }

    /// Renders the current frame and its ground truth, then advances the
    /// simulation by one frame time.
    pub fn step(&mut self) -> (Frame, Vec<ObjectState>) {
        self.spawn();
        let mut frame = self.background.clone();
        self.apply_illumination(&mut frame);

        // Painter's order: farther (smaller y) first.
        let mut order: Vec<usize> = (0..self.objects.len()).collect();
        order.sort_by(|&a, &b| self.objects[a].y.total_cmp(&self.objects[b].y));
        let mut truth = Vec::new();
        for i in order {
            let obj = self.objects[i].clone();
            if let Some(bbox) = draw_object(&mut frame, &obj, self.cfg.resolution) {
                truth.push(ObjectState {
                    id: obj.id,
                    kind: obj.kind,
                    bbox,
                    wearing_red: obj.wearing_red,
                    crossing: obj.crossing,
                });
            }
        }
        truth.sort_by_key(|o| o.id);
        self.apply_noise(&mut frame);

        self.advance();
        self.frame_index += 1;
        (frame, truth)
    }

    fn spawn(&mut self) {
        let (w, h) = (
            self.cfg.resolution.width as f64,
            self.cfg.resolution.height as f64,
        );
        // Poisson(λ) with small λ ≈ Bernoulli(λ); fine for the rates used.
        if self.rng.gen_bool(self.cfg.pedestrian_rate.min(1.0)) {
            let crossing = self.rng.gen_bool(self.cfg.crossing_fraction);
            let wearing_red = self.rng.gen_bool(self.cfg.red_fraction);
            let color = if wearing_red {
                [205, 30, 35]
            } else {
                *pick(
                    &mut self.rng,
                    &[
                        [40, 60, 150],
                        [40, 130, 60],
                        [110, 110, 115],
                        [180, 160, 40],
                        [90, 50, 120],
                    ],
                )
            };
            let id = self.bump_id();
            if crossing {
                // Walk up (or down) the crosswalk, through the road band.
                let going_up = self.rng.gen_bool(0.5);
                let x = w * self
                    .rng
                    .gen_range(layout::CROSSWALK_X0 + 0.02..layout::CROSSWALK_X1 - 0.02);
                let speed = h * self.rng.gen_range(0.0020..0.0035) * self.cfg.speed_multiplier;
                let (y, vy) = if going_up {
                    (h * (layout::SIDEWALK_BOTTOM - 0.04), -speed)
                } else {
                    (h * (layout::ROAD_TOP - 0.01), speed)
                };
                self.objects.push(Obj {
                    id,
                    kind: ObjectKind::Pedestrian,
                    x,
                    y,
                    vx: 0.0,
                    vy,
                    wearing_red,
                    crossing: true,
                    color,
                    phase: self.rng.gen_range(0.0..std::f64::consts::TAU),
                });
            } else {
                let ltr = self.rng.gen_bool(0.5);
                let speed = w * self.rng.gen_range(0.0018..0.0032) * self.cfg.speed_multiplier;
                self.objects.push(Obj {
                    id,
                    kind: ObjectKind::Pedestrian,
                    x: if ltr { -4.0 } else { w + 4.0 },
                    y: h * self
                        .rng
                        .gen_range(layout::ROAD_BOTTOM + 0.05..layout::SIDEWALK_BOTTOM - 0.02),
                    vx: if ltr { speed } else { -speed },
                    vy: 0.0,
                    wearing_red,
                    crossing: false,
                    color,
                    phase: self.rng.gen_range(0.0..std::f64::consts::TAU),
                });
            }
        }
        if self.rng.gen_bool(self.cfg.car_rate.min(1.0)) {
            let ltr = self.rng.gen_bool(0.5);
            let lane_frac = if ltr {
                self.rng
                    .gen_range(layout::LANE_SPLIT + 0.04..layout::ROAD_BOTTOM - 0.03)
            } else {
                self.rng
                    .gen_range(layout::ROAD_TOP + 0.05..layout::LANE_SPLIT - 0.02)
            };
            let speed = w * self.rng.gen_range(0.008..0.016) * self.cfg.speed_multiplier;
            let color = *pick(
                &mut self.rng,
                &[
                    [160, 30, 30],
                    [30, 30, 160],
                    [200, 200, 205],
                    [40, 40, 45],
                    [120, 120, 125],
                    [200, 170, 30],
                ],
            );
            let id = self.bump_id();
            self.objects.push(Obj {
                id,
                kind: ObjectKind::Car,
                x: if ltr { -30.0 } else { w + 30.0 },
                y: h * lane_frac,
                vx: if ltr { speed } else { -speed },
                vy: 0.0,
                wearing_red: false,
                crossing: false,
                color,
                phase: 0.0,
            });
        }
        if self.rng.gen_bool(self.cfg.cyclist_rate.min(1.0)) {
            let ltr = self.rng.gen_bool(0.5);
            let speed = w * self.rng.gen_range(0.004..0.008) * self.cfg.speed_multiplier;
            let id = self.bump_id();
            self.objects.push(Obj {
                id,
                kind: ObjectKind::Cyclist,
                x: if ltr { -8.0 } else { w + 8.0 },
                y: h * (layout::ROAD_BOTTOM - 0.02),
                vx: if ltr { speed } else { -speed },
                vy: 0.0,
                wearing_red: false,
                crossing: false,
                color: *pick(
                    &mut self.rng,
                    &[[60, 120, 60], [150, 90, 40], [70, 70, 160]],
                ),
                phase: 0.0,
            });
        }
        if self.rng.gen_bool(self.cfg.dog_rate.min(1.0)) {
            let ltr = self.rng.gen_bool(0.5);
            let speed = w * self.rng.gen_range(0.003..0.006) * self.cfg.speed_multiplier;
            let id = self.bump_id();
            self.objects.push(Obj {
                id,
                kind: ObjectKind::Dog,
                x: if ltr { -5.0 } else { w + 5.0 },
                y: h * (layout::SIDEWALK_BOTTOM - 0.015),
                vx: if ltr { speed } else { -speed },
                vy: 0.0,
                wearing_red: false,
                crossing: false,
                color: *pick(
                    &mut self.rng,
                    &[[120, 90, 60], [60, 50, 40], [190, 180, 160]],
                ),
                phase: self.rng.gen_range(0.0..std::f64::consts::TAU),
            });
        }
    }

    fn advance(&mut self) {
        let (w, h) = (
            self.cfg.resolution.width as f64,
            self.cfg.resolution.height as f64,
        );
        for o in &mut self.objects {
            o.x += o.vx;
            o.y += o.vy;
            o.phase += 0.35;
        }
        self.objects.retain(|o| {
            o.x > -60.0
                && o.x < w + 60.0
                && o.y > h * (layout::ROAD_TOP - 0.06)
                && o.y < h * (layout::SIDEWALK_BOTTOM + 0.06)
        });
    }

    fn apply_illumination(&mut self, frame: &mut Frame) {
        // Slow daylight drift: ±4% over ~10 minutes of video.
        let t = self.frame_index as f64 / (self.cfg.fps * 600.0);
        let gain = 1.0 + 0.04 * (std::f64::consts::TAU * t).sin();
        if (gain - 1.0).abs() < 1e-3 {
            return;
        }
        for v in frame.data_mut() {
            *v = (*v as f64 * gain).round().clamp(0.0, 255.0) as u8;
        }
    }

    fn apply_noise(&mut self, frame: &mut Frame) {
        if self.cfg.noise_level <= 0.0 {
            return;
        }
        let amp = self.cfg.noise_level;
        for v in frame.data_mut() {
            let n = self.rng.gen_range(-amp..=amp);
            *v = (*v as f64 + n).round().clamp(0.0, 255.0) as u8;
        }
    }

    fn bump_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }
}

impl Iterator for Scene {
    type Item = (Frame, Vec<ObjectState>);

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.step())
    }
}

fn pick<'a, T, R: Rng>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// Perspective size factor: 1.0 at the bottom of the frame, shrinking
/// toward the road's far edge.
fn perspective(y: f64, h: f64) -> f64 {
    (0.45 + 0.55 * (y / h)).clamp(0.3, 1.0)
}

fn render_background(res: Resolution, rng: &mut StdRng) -> Frame {
    let (w, h) = (res.width, res.height);
    let mut f = Frame::black(res);
    let hf = h as f64;
    for y in 0..h {
        let fy = y as f64 / hf;
        let base: [u8; 3] = if fy < layout::BUILDINGS_TOP {
            // Sky gradient.
            let t = fy / layout::BUILDINGS_TOP;
            [
                (150.0 + 40.0 * t) as u8,
                (185.0 + 25.0 * t) as u8,
                (230.0 - 10.0 * t) as u8,
            ]
        } else if fy < layout::ROAD_TOP {
            [126, 118, 110] // facades
        } else if fy < layout::ROAD_BOTTOM {
            [72, 72, 76] // asphalt
        } else if fy < layout::SIDEWALK_BOTTOM {
            [150, 146, 138] // pavement
        } else {
            [95, 92, 88] // curb/foreground
        };
        for x in 0..w {
            f.set_pixel(x, y, base);
        }
    }
    // Building windows.
    let facade_y0 = (hf * layout::BUILDINGS_TOP) as usize;
    let facade_y1 = (hf * layout::ROAD_TOP) as usize;
    let step = (w / 16).max(4);
    for bx in (2..w.saturating_sub(4)).step_by(step) {
        for by in (facade_y0 + 2..facade_y1.saturating_sub(3)).step_by(6) {
            fill_rect(
                &mut f,
                bx,
                by,
                (bx + 2).min(w),
                (by + 3).min(facade_y1),
                [60, 70, 90],
            );
        }
    }
    // Lane divider dashes.
    let lane_y = (hf * layout::LANE_SPLIT) as usize;
    for x in (0..w).step_by(8) {
        fill_rect(
            &mut f,
            x,
            lane_y,
            (x + 4).min(w),
            (lane_y + 1).min(h),
            [210, 205, 120],
        );
    }
    // Crosswalk stripes (vertical band of horizontal white bars).
    let cx0 = (w as f64 * layout::CROSSWALK_X0) as usize;
    let cx1 = (w as f64 * layout::CROSSWALK_X1) as usize;
    let ry0 = (hf * layout::ROAD_TOP) as usize;
    let ry1 = (hf * layout::ROAD_BOTTOM) as usize;
    let mut y = ry0 + 1;
    while y + 2 < ry1 {
        fill_rect(&mut f, cx0, y, cx1, y + 2, [205, 205, 205]);
        y += 5;
    }
    // Static pavement/asphalt texture.
    for y in (hf * layout::ROAD_TOP) as usize..h {
        for x in 0..w {
            if rng.gen_ratio(1, 7) {
                let [r, g, b] = f.pixel(x, y);
                let d = rng.gen_range(-9i16..=9);
                f.set_pixel(
                    x,
                    y,
                    [
                        (r as i16 + d).clamp(0, 255) as u8,
                        (g as i16 + d).clamp(0, 255) as u8,
                        (b as i16 + d).clamp(0, 255) as u8,
                    ],
                );
            }
        }
    }
    f
}

fn fill_rect(f: &mut Frame, x0: usize, y0: usize, x1: usize, y1: usize, color: [u8; 3]) {
    let (w, h) = (f.width(), f.height());
    for y in y0..y1.min(h) {
        for x in x0..x1.min(w) {
            f.set_pixel(x, y, color);
        }
    }
}

fn fill_ellipse(f: &mut Frame, cx: f64, cy: f64, rx: f64, ry: f64, color: [u8; 3]) {
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    let (w, h) = (f.width() as f64, f.height() as f64);
    let x0 = (cx - rx).max(0.0) as usize;
    let x1 = ((cx + rx).min(w - 1.0)) as usize;
    let y0 = (cy - ry).max(0.0) as usize;
    let y1 = ((cy + ry).min(h - 1.0)) as usize;
    for y in y0..=y1 {
        for x in x0..=x1 {
            let dx = (x as f64 - cx) / rx;
            let dy = (y as f64 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                f.set_pixel(x, y, color);
            }
        }
    }
}

/// Draws an object anchored at `(obj.x, obj.y)` (feet line). Returns the
/// clipped bounding box, or `None` if fully off-screen.
fn draw_object(frame: &mut Frame, obj: &Obj, res: Resolution) -> Option<BBox> {
    let (w, h) = (res.width as f64, res.height as f64);
    let p = perspective(obj.y, h);
    let (bw, bh) = match obj.kind {
        ObjectKind::Pedestrian => (0.022 * w, 0.16 * h),
        ObjectKind::Car => (0.16 * w, 0.085 * h),
        ObjectKind::Cyclist => (0.05 * w, 0.12 * h),
        ObjectKind::Dog => (0.045 * w, 0.045 * h),
    };
    let (bw, bh) = (bw * p, bh * p);
    let x0 = obj.x - bw / 2.0;
    let y0 = obj.y - bh;
    // Clip test.
    if x0 + bw < 0.0 || x0 > w || y0 + bh < 0.0 || y0 > h {
        return None;
    }

    match obj.kind {
        ObjectKind::Pedestrian => {
            let torso_h = bh * 0.42;
            let leg_h = bh * 0.38;
            let head_r = bh * 0.11;
            // Legs (dark, scissored by gait phase).
            let swing = (obj.phase.sin() * bw * 0.35).abs();
            fill_rect_f(
                frame,
                obj.x - bw * 0.3 - swing * 0.3,
                obj.y - leg_h,
                bw * 0.3,
                leg_h,
                [35, 35, 45],
            );
            fill_rect_f(
                frame,
                obj.x + swing * 0.3,
                obj.y - leg_h,
                bw * 0.3,
                leg_h,
                [35, 35, 45],
            );
            // Torso in shirt color (red for the People-with-red task).
            fill_rect_f(frame, x0, obj.y - leg_h - torso_h, bw, torso_h, obj.color);
            // Head.
            fill_ellipse(
                frame,
                obj.x,
                obj.y - leg_h - torso_h - head_r,
                head_r * 0.9,
                head_r,
                [224, 188, 160],
            );
        }
        ObjectKind::Car => {
            let body_h = bh * 0.55;
            let cabin_h = bh * 0.45;
            // Body.
            fill_rect_f(frame, x0, obj.y - body_h, bw, body_h, obj.color);
            // Cabin + windows.
            fill_rect_f(
                frame,
                x0 + bw * 0.22,
                obj.y - body_h - cabin_h,
                bw * 0.5,
                cabin_h,
                obj.color,
            );
            fill_rect_f(
                frame,
                x0 + bw * 0.26,
                obj.y - body_h - cabin_h * 0.9,
                bw * 0.42,
                cabin_h * 0.62,
                [70, 90, 110],
            );
            // Wheels.
            let wr = bh * 0.22;
            fill_ellipse(frame, obj.x - bw * 0.3, obj.y, wr, wr, [15, 15, 15]);
            fill_ellipse(frame, obj.x + bw * 0.3, obj.y, wr, wr, [15, 15, 15]);
        }
        ObjectKind::Cyclist => {
            let wr = bh * 0.22;
            fill_ellipse(frame, obj.x - bw * 0.3, obj.y - wr, wr, wr, [20, 20, 20]);
            fill_ellipse(frame, obj.x + bw * 0.3, obj.y - wr, wr, wr, [20, 20, 20]);
            // Rider.
            fill_rect_f(
                frame,
                obj.x - bw * 0.12,
                obj.y - bh * 0.85,
                bw * 0.24,
                bh * 0.45,
                obj.color,
            );
            fill_ellipse(
                frame,
                obj.x,
                obj.y - bh * 0.92,
                bh * 0.09,
                bh * 0.09,
                [224, 188, 160],
            );
        }
        ObjectKind::Dog => {
            fill_ellipse(
                frame,
                obj.x,
                obj.y - bh * 0.45,
                bw * 0.5,
                bh * 0.4,
                obj.color,
            );
            let head_x = obj.x + bw * 0.45 * obj.vx.signum();
            fill_ellipse(
                frame,
                head_x,
                obj.y - bh * 0.62,
                bw * 0.22,
                bh * 0.25,
                obj.color,
            );
        }
    }

    let bx0 = x0.max(0.0) as usize;
    let by0 = y0.max(0.0) as usize;
    let bx1 = (x0 + bw).min(w).ceil() as usize;
    let by1 = (obj.y).min(h).ceil() as usize;
    if bx0 >= bx1 || by0 >= by1 {
        return None;
    }
    Some(BBox {
        x0: bx0,
        y0: by0,
        x1: bx1,
        y1: by1,
    })
}

fn fill_rect_f(f: &mut Frame, x: f64, y: f64, w: f64, h: f64, color: [u8; 3]) {
    let x0 = x.max(0.0) as usize;
    let y0 = y.max(0.0) as usize;
    let x1 = (x + w).max(0.0).min(f.width() as f64) as usize;
    let y1 = (y + h).max(0.0).min(f.height() as f64) as usize;
    fill_rect(f, x0, y0, x1, y1, color);
}

/// Scene band boundaries in pixels for a given resolution — used by tasks
/// to define regions of interest (crops) and ground-truth predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneGeometry {
    /// Top of the road band.
    pub road_top: usize,
    /// Bottom of the road band.
    pub road_bottom: usize,
    /// Bottom of the sidewalk band.
    pub sidewalk_bottom: usize,
    /// Crosswalk band left edge.
    pub crosswalk_x0: usize,
    /// Crosswalk band right edge.
    pub crosswalk_x1: usize,
}

impl SceneGeometry {
    /// Geometry for a resolution.
    pub fn for_resolution(res: Resolution) -> Self {
        let h = res.height as f64;
        let w = res.width as f64;
        SceneGeometry {
            road_top: (h * layout::ROAD_TOP) as usize,
            road_bottom: (h * layout::ROAD_BOTTOM) as usize,
            sidewalk_bottom: (h * layout::SIDEWALK_BOTTOM) as usize,
            crosswalk_x0: (w * layout::CROSSWALK_X0) as usize,
            crosswalk_x1: (w * layout::CROSSWALK_X1) as usize,
        }
    }

    /// The crosswalk region as a bounding box (road band × crosswalk band).
    pub fn crosswalk_region(&self) -> BBox {
        BBox {
            x0: self.crosswalk_x0,
            y0: self.road_top,
            x1: self.crosswalk_x1,
            y1: self.road_bottom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(seed: u64) -> SceneConfig {
        SceneConfig {
            resolution: Resolution::new(96, 54),
            seed,
            pedestrian_rate: 0.2,
            car_rate: 0.1,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Scene::new(test_cfg(3));
        let mut b = Scene::new(test_cfg(3));
        for _ in 0..30 {
            let (fa, ta) = a.step();
            let (fb, tb) = b.step();
            assert_eq!(fa, fb);
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Scene::new(test_cfg(1));
        let mut b = Scene::new(test_cfg(2));
        let mut any_diff = false;
        for _ in 0..30 {
            if a.step().0 != b.step().0 {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn objects_spawn_move_and_despawn() {
        let mut scene = Scene::new(test_cfg(5));
        let mut saw_object = false;
        let mut positions: std::collections::HashMap<u64, Vec<(usize, usize)>> = Default::default();
        for _ in 0..400 {
            let (_, truth) = scene.step();
            for o in &truth {
                saw_object = true;
                positions.entry(o.id).or_default().push(o.bbox.center());
            }
        }
        assert!(saw_object, "no objects in 400 frames at high rates");
        // At least one object should have moved substantially.
        let moved = positions.values().any(|ps| {
            ps.len() > 5 && {
                let (x0, _) = ps[0];
                let (x1, _) = ps[ps.len() - 1];
                x0.abs_diff(x1) > 10
            }
        });
        assert!(moved, "objects never moved");
    }

    #[test]
    fn truth_boxes_lie_inside_frame() {
        let mut scene = Scene::new(test_cfg(8));
        for _ in 0..200 {
            let (f, truth) = scene.step();
            for o in &truth {
                assert!(o.bbox.x1 <= f.width() && o.bbox.y1 <= f.height(), "{o:?}");
                assert!(o.bbox.x0 < o.bbox.x1 && o.bbox.y0 < o.bbox.y1, "{o:?}");
            }
        }
    }

    #[test]
    fn red_pedestrians_have_red_pixels() {
        let cfg = SceneConfig {
            resolution: Resolution::new(96, 54),
            seed: 11,
            pedestrian_rate: 0.5,
            red_fraction: 1.0,
            crossing_fraction: 0.0,
            car_rate: 0.0,
            cyclist_rate: 0.0,
            dog_rate: 0.0,
            noise_level: 0.0,
            ..Default::default()
        };
        let mut scene = Scene::new(cfg);
        let mut checked = false;
        for _ in 0..100 {
            let (f, truth) = scene.step();
            for o in &truth {
                if o.bbox.area() < 12 {
                    continue;
                }
                // Count strongly red pixels inside the box.
                let mut reds = 0;
                for y in o.bbox.y0..o.bbox.y1 {
                    for x in o.bbox.x0..o.bbox.x1 {
                        let [r, g, b] = f.pixel(x, y);
                        if r > 150 && g < 90 && b < 90 {
                            reds += 1;
                        }
                    }
                }
                assert!(reds > 0, "red pedestrian without red pixels: {o:?}");
                checked = true;
            }
        }
        assert!(checked, "no pedestrians rendered");
    }

    #[test]
    fn crossing_pedestrians_traverse_the_road() {
        let cfg = SceneConfig {
            resolution: Resolution::new(96, 54),
            seed: 13,
            pedestrian_rate: 0.3,
            crossing_fraction: 1.0,
            car_rate: 0.0,
            cyclist_rate: 0.0,
            dog_rate: 0.0,
            ..Default::default()
        };
        let geo = SceneGeometry::for_resolution(cfg.resolution);
        let region = geo.crosswalk_region();
        let mut scene = Scene::new(cfg);
        let mut in_crosswalk = 0;
        for _ in 0..600 {
            let (_, truth) = scene.step();
            for o in &truth {
                if o.crossing && o.bbox.intersect_area(&region) > 0 {
                    in_crosswalk += 1;
                }
            }
        }
        assert!(
            in_crosswalk > 50,
            "crossers rarely in crosswalk: {in_crosswalk}"
        );
    }

    #[test]
    fn geometry_regions_are_ordered() {
        let geo = SceneGeometry::for_resolution(Resolution::new(192, 108));
        assert!(geo.road_top < geo.road_bottom);
        assert!(geo.road_bottom < geo.sidewalk_bottom);
        assert!(geo.crosswalk_x0 < geo.crosswalk_x1);
        let r = geo.crosswalk_region();
        assert!(r.area() > 0);
    }

    #[test]
    fn scene_is_compressible_but_not_static() {
        // The codec's P-frames should find most of the scene unchanged.
        let mut scene = Scene::new(test_cfg(17));
        let (f1, _) = scene.step();
        let (f2, _) = scene.step();
        let diff = f1.mean_abs_diff(&f2);
        assert!(diff > 0.0, "consecutive frames identical");
        assert!(diff < 8.0, "scene too noisy to compress: {diff}");
    }
}
