//! Color conversion (BT.601 full-range) and 4:2:0 chroma subsampling.

use crate::{Frame, Resolution};

/// A single image plane of `f32` samples (nominally 0–255).
#[derive(Debug, Clone, PartialEq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Plane {
    /// Creates a zero plane.
    pub fn zeros(width: usize, height: usize) -> Self {
        Plane {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Plane width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sample at `(x, y)`.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.width + x]
    }

    /// Sample at `(x, y)` with edge clamping for out-of-bounds coordinates.
    #[inline]
    pub fn at_clamped(&self, x: isize, y: isize) -> f32 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.at(x, y)
    }

    /// Sets the sample at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.width + x] = v;
    }

    /// Raw samples.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw samples.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Extracts an 8×8 block at `(bx·8, by·8)`, clamping at edges.
    pub fn block8(&self, bx: usize, by: usize) -> [f32; 64] {
        let mut out = [0.0; 64];
        for j in 0..8 {
            for i in 0..8 {
                out[j * 8 + i] = self.at_clamped((bx * 8 + i) as isize, (by * 8 + j) as isize);
            }
        }
        out
    }

    /// Writes an 8×8 block at `(bx·8, by·8)`, ignoring out-of-bounds parts.
    pub fn set_block8(&mut self, bx: usize, by: usize, block: &[f32; 64]) {
        for j in 0..8 {
            let y = by * 8 + j;
            if y >= self.height {
                break;
            }
            for i in 0..8 {
                let x = bx * 8 + i;
                if x >= self.width {
                    break;
                }
                self.set(x, y, block[j * 8 + i]);
            }
        }
    }
}

/// A YCbCr 4:2:0 picture: full-resolution luma, half-resolution chroma.
#[derive(Debug, Clone, PartialEq)]
pub struct Ycbcr420 {
    /// Luma plane (full resolution).
    pub y: Plane,
    /// Blue-difference chroma (half resolution each axis).
    pub cb: Plane,
    /// Red-difference chroma (half resolution each axis).
    pub cr: Plane,
    /// Original frame size (planes may be conceptually padded at edges).
    pub resolution: Resolution,
}

impl Ycbcr420 {
    /// Converts an RGB frame, averaging 2×2 neighborhoods for chroma.
    pub fn from_frame(frame: &Frame) -> Self {
        let (w, h) = (frame.width(), frame.height());
        let mut y = Plane::zeros(w, h);
        let (cw, ch) = (w.div_ceil(2), h.div_ceil(2));
        let mut cb = Plane::zeros(cw, ch);
        let mut cr = Plane::zeros(cw, ch);
        for py in 0..h {
            for px in 0..w {
                let [r, g, b] = frame.pixel(px, py);
                let (r, g, b) = (r as f32, g as f32, b as f32);
                y.set(px, py, 0.299 * r + 0.587 * g + 0.114 * b);
            }
        }
        for cy in 0..ch {
            for cx in 0..cw {
                let (mut scb, mut scr, mut n) = (0.0f32, 0.0f32, 0u32);
                for dy in 0..2 {
                    for dx in 0..2 {
                        let (px, py) = (cx * 2 + dx, cy * 2 + dy);
                        if px < w && py < h {
                            let [r, g, b] = frame.pixel(px, py);
                            let (r, g, b) = (r as f32, g as f32, b as f32);
                            scb += 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
                            scr += 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
                            n += 1;
                        }
                    }
                }
                cb.set(cx, cy, scb / n as f32);
                cr.set(cx, cy, scr / n as f32);
            }
        }
        Ycbcr420 {
            y,
            cb,
            cr,
            resolution: frame.resolution(),
        }
    }

    /// Creates a black picture of the given size.
    pub fn black(resolution: Resolution) -> Self {
        let (w, h) = (resolution.width, resolution.height);
        Ycbcr420 {
            y: Plane::zeros(w, h),
            cb: Plane::zeros(w.div_ceil(2), h.div_ceil(2)),
            cr: Plane::zeros(w.div_ceil(2), h.div_ceil(2)),
            resolution,
        }
    }

    /// Converts back to RGB with nearest-neighbor chroma upsampling.
    pub fn to_frame(&self) -> Frame {
        let (w, h) = (self.resolution.width, self.resolution.height);
        let mut frame = Frame::black(self.resolution);
        for py in 0..h {
            for px in 0..w {
                let yv = self.y.at(px, py);
                let cbv = self.cb.at(px / 2, py / 2) - 128.0;
                let crv = self.cr.at(px / 2, py / 2) - 128.0;
                let r = yv + 1.402 * crv;
                let g = yv - 0.344_136 * cbv - 0.714_136 * crv;
                let b = yv + 1.772 * cbv;
                frame.set_pixel(px, py, [clamp_u8(r), clamp_u8(g), clamp_u8(b)]);
            }
        }
        frame
    }
}

#[inline]
fn clamp_u8(v: f32) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grayscale_roundtrip_is_near_lossless() {
        let mut f = Frame::black(Resolution::new(16, 16));
        for y in 0..16 {
            for x in 0..16 {
                let v = (x * 16 + y) as u8;
                f.set_pixel(x, y, [v, v, v]);
            }
        }
        let back = Ycbcr420::from_frame(&f).to_frame();
        assert!(back.psnr(&f) > 45.0, "psnr {}", back.psnr(&f));
    }

    #[test]
    fn saturated_colors_survive_roundtrip() {
        let mut f = Frame::black(Resolution::new(8, 8));
        for y in 0..8 {
            for x in 0..8 {
                // 2×2 constant color patches so 4:2:0 subsampling is exact.
                let c = match ((x / 2) + (y / 2)) % 3 {
                    0 => [255u8, 0, 0],
                    1 => [0, 255, 0],
                    _ => [0, 0, 255],
                };
                f.set_pixel(x, y, c);
            }
        }
        let back = Ycbcr420::from_frame(&f).to_frame();
        assert!(back.psnr(&f) > 35.0, "psnr {}", back.psnr(&f));
    }

    #[test]
    fn odd_dimensions_handled() {
        let f = Frame::black(Resolution::new(7, 5));
        let ycc = Ycbcr420::from_frame(&f);
        assert_eq!(ycc.cb.width(), 4);
        assert_eq!(ycc.cb.height(), 3);
        assert_eq!(ycc.to_frame().resolution(), f.resolution());
    }

    #[test]
    fn block8_clamps_at_edges() {
        let mut p = Plane::zeros(10, 10);
        p.set(9, 9, 7.0);
        let b = p.block8(1, 1); // covers x 8..16, clamped to 9
        assert_eq!(b[9 + 8], 7.0); // (9,9) position within block row 1, col 1
        assert_eq!(b[63], 7.0); // clamped corner replicates
    }
}
