//! A from-scratch motion-compensated block transform codec ("FBC").
//!
//! This is the reproduction's stand-in for H.264 (DESIGN.md S4). It is a
//! real codec, not a byte-count model: YCbCr 4:2:0 color, 8×8 DCT blocks,
//! QP-driven quantization, 16×16 motion-compensated P-frames with skip
//! modes, Exp-Golomb entropy coding, I/P GOP structure, closed-loop rate
//! control toward a target bitrate, and a full decoder. FilterForward's
//! bandwidth numbers are the byte lengths this encoder emits, and the
//! "compress everything" baseline of Figure 4 classifies the *decoded*
//! frames, so low-bitrate quality loss is physically real here.
//!
//! # Example
//!
//! ```
//! use ff_video::codec::{Decoder, Encoder, EncoderConfig};
//! use ff_video::{Frame, Resolution};
//!
//! let cfg = EncoderConfig::with_qp(Resolution::new(64, 48), 15.0, 28);
//! let mut enc = Encoder::new(cfg);
//! let mut dec = Decoder::new();
//! let frame = Frame::black(Resolution::new(64, 48));
//! let encoded = enc.encode(&frame);
//! let decoded = dec.decode(&encoded).expect("bitstream round-trips");
//! assert!(decoded.psnr(&frame) > 40.0);
//! ```

mod bitstream;
mod color;
mod dct;
mod decoder;
mod encoder;
mod motion;
mod quant;
mod rate;

pub use bitstream::{BitReader, BitWriter};
pub use color::{Plane, Ycbcr420};
pub use decoder::{DecodeError, Decoder};
pub use encoder::{EncodedFrame, Encoder, EncoderConfig, FrameType};
pub use motion::MotionVector;
pub use rate::RateController;

/// Macroblock size (luma pixels).
pub(crate) const MB: usize = 16;
/// Transform block size.
pub(crate) const BLOCK: usize = 8;
