//! Bit-level I/O with Exp-Golomb codes — the entropy-coding layer.

/// Writes bits MSB-first into a growable buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    cur: u8,
    nbits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Writes a single bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | bit as u8;
        self.nbits += 1;
        if self.nbits == 8 {
            self.buf.push(self.cur);
            self.cur = 0;
            self.nbits = 0;
        }
    }

    /// Writes the low `n` bits of `v`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn put_bits(&mut self, v: u32, n: u8) {
        assert!(n <= 32, "at most 32 bits at a time");
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 == 1);
        }
    }

    /// Writes an unsigned Exp-Golomb code.
    pub fn put_ue(&mut self, v: u32) {
        let x = v + 1;
        let len = 32 - x.leading_zeros() as u8; // bit length of x
        for _ in 0..len - 1 {
            self.put_bit(false);
        }
        self.put_bits(x, len);
    }

    /// Writes a signed Exp-Golomb code (0, 1, −1, 2, −2, … mapping).
    pub fn put_se(&mut self, v: i32) {
        let u = if v > 0 {
            (v as u32) * 2 - 1
        } else {
            (-(v as i64) as u32) * 2
        };
        self.put_ue(u);
    }

    /// Flushes any partial byte (zero-padded) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.cur <<= 8 - self.nbits;
            self.buf.push(self.cur);
        }
        self.buf
    }

    /// Bits written so far (excluding final padding).
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Reads one bit, or `None` at end of stream.
    pub fn get_bit(&mut self) -> Option<bool> {
        let byte = self.data.get(self.pos / 8)?;
        let bit = (byte >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits MSB-first.
    pub fn get_bits(&mut self, n: u8) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.get_bit()? as u32;
        }
        Some(v)
    }

    /// Reads an unsigned Exp-Golomb code.
    pub fn get_ue(&mut self) -> Option<u32> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 31 {
                return None; // corrupt stream
            }
        }
        let rest = self.get_bits(zeros)?;
        Some((1u32 << zeros) + rest - 1)
    }

    /// Reads a signed Exp-Golomb code.
    pub fn get_se(&mut self) -> Option<i32> {
        let u = self.get_ue()?;
        Some(if u % 2 == 1 {
            u.div_ceil(2) as i32
        } else {
            -((u / 2) as i32)
        })
    }

    /// Current bit offset.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xFF, 8);
        w.put_bit(true);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4), Some(0b1011));
        assert_eq!(r.get_bits(8), Some(0xFF));
        assert_eq!(r.get_bit(), Some(true));
    }

    #[test]
    fn ue_roundtrip_exhaustive_small() {
        let mut w = BitWriter::new();
        for v in 0..2000u32 {
            w.put_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for v in 0..2000u32 {
            assert_eq!(r.get_ue(), Some(v));
        }
    }

    #[test]
    fn se_roundtrip() {
        let vals = [0i32, 1, -1, 2, -2, 100, -100, 32767, -32768];
        let mut w = BitWriter::new();
        for &v in &vals {
            w.put_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.get_se(), Some(v));
        }
    }

    #[test]
    fn ue_known_encodings() {
        // 0 → "1", 1 → "010", 2 → "011", 3 → "00100".
        let mut w = BitWriter::new();
        w.put_ue(0);
        w.put_ue(1);
        w.put_ue(2);
        w.put_ue(3);
        assert_eq!(w.bit_len(), 1 + 3 + 3 + 5);
        let bytes = w.finish();
        #[allow(clippy::unusual_byte_groupings)] // grouped per Exp-Golomb code
        let expected = 0b1_010_011_0;
        assert_eq!(bytes[0], expected, "first byte");
    }

    #[test]
    fn reader_handles_truncation() {
        let mut r = BitReader::new(&[0b0000_0000]);
        assert_eq!(r.get_ue(), None); // all zeros: prefix never terminates
    }
}
