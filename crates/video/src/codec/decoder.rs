//! The decoder: parses the bitstream and mirrors the encoder's
//! reconstruction exactly (the encoder runs this same math in its closed
//! loop, so encoder reference and decoder output never drift).

use super::bitstream::BitReader;
use super::color::Ycbcr420;
use super::encoder::{
    copy_mb, decode_plane_intra, decode_residual_block, read_header, EncodedFrame,
};
use super::motion::MotionVector;
use super::quant::steps;
use super::MB;
use crate::{Frame, Resolution};

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The bitstream ended early or a code was malformed.
    Corrupt(&'static str),
    /// A P-frame arrived with no reference (stream must start with an
    /// I-frame, and [`Decoder::reset`] discards the reference).
    MissingReference,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Corrupt(what) => write!(f, "corrupt bitstream: {what}"),
            DecodeError::MissingReference => write!(f, "P-frame without a reference frame"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The FBC decoder. Feed encoded frames in order.
#[derive(Debug, Default)]
pub struct Decoder {
    reference: Option<Ycbcr420>,
}

impl Decoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Discards the reference (e.g. when seeking to a new GOP).
    pub fn reset(&mut self) {
        self.reference = None;
    }

    /// Decodes one frame.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Corrupt`] for malformed bitstreams and
    /// [`DecodeError::MissingReference`] for a P-frame with no prior
    /// I-frame.
    pub fn decode(&mut self, encoded: &EncodedFrame) -> Result<Frame, DecodeError> {
        let mut r = BitReader::new(&encoded.data);
        let hdr = read_header(&mut r).ok_or(DecodeError::Corrupt("header"))?;
        let res = Resolution::new(hdr.width, hdr.height);
        if res.pixels() == 0 {
            return Err(DecodeError::Corrupt("empty resolution"));
        }
        let mut recon = Ycbcr420::black(res);
        if hdr.intra {
            decode_plane_intra(&mut r, &mut recon.y, false, hdr.qp)
                .ok_or(DecodeError::Corrupt("luma plane"))?;
            decode_plane_intra(&mut r, &mut recon.cb, true, hdr.qp)
                .ok_or(DecodeError::Corrupt("cb plane"))?;
            decode_plane_intra(&mut r, &mut recon.cr, true, hdr.qp)
                .ok_or(DecodeError::Corrupt("cr plane"))?;
        } else {
            let reference = self.reference.take().ok_or(DecodeError::MissingReference)?;
            self.decode_inter(&mut r, &reference, &mut recon, hdr.qp)?;
        }
        let frame = recon.to_frame();
        self.reference = Some(recon);
        Ok(frame)
    }

    fn decode_inter(
        &mut self,
        r: &mut BitReader<'_>,
        reference: &Ycbcr420,
        recon: &mut Ycbcr420,
        qp: u8,
    ) -> Result<(), DecodeError> {
        let st_luma = steps(false, qp);
        let st_chroma = steps(true, qp);
        let mbs_x = recon.y.width().div_ceil(MB);
        let mbs_y = recon.y.height().div_ceil(MB);
        for mby in 0..mbs_y {
            for mbx in 0..mbs_x {
                let mode = r.get_ue().ok_or(DecodeError::Corrupt("mb mode"))?;
                match mode {
                    0 => copy_mb(reference, recon, mbx, mby),
                    1 => {
                        let dx = r.get_se().ok_or(DecodeError::Corrupt("mv dx"))?;
                        let dy = r.get_se().ok_or(DecodeError::Corrupt("mv dy"))?;
                        let mv = MotionVector { dx, dy };
                        for (by, bx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                            decode_residual_block(
                                r,
                                &reference.y,
                                &mut recon.y,
                                mbx * 2 + bx,
                                mby * 2 + by,
                                mv,
                                &st_luma,
                            )
                            .ok_or(DecodeError::Corrupt("luma residual"))?;
                        }
                        let cmv = MotionVector {
                            dx: mv.dx / 2,
                            dy: mv.dy / 2,
                        };
                        decode_residual_block(
                            r,
                            &reference.cb,
                            &mut recon.cb,
                            mbx,
                            mby,
                            cmv,
                            &st_chroma,
                        )
                        .ok_or(DecodeError::Corrupt("cb residual"))?;
                        decode_residual_block(
                            r,
                            &reference.cr,
                            &mut recon.cr,
                            mbx,
                            mby,
                            cmv,
                            &st_chroma,
                        )
                        .ok_or(DecodeError::Corrupt("cr residual"))?;
                    }
                    _ => return Err(DecodeError::Corrupt("unknown mb mode")),
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Encoder, EncoderConfig};

    /// A smooth diagonal gradient (no high-frequency chroma, so 4:2:0
    /// subsampling is not the quality bottleneck); `phase` slides it to
    /// create motion between frames.
    fn gradient_frame(res: Resolution, phase: usize) -> Frame {
        let mut f = Frame::black(res);
        for y in 0..res.height {
            for x in 0..res.width {
                let v = (x * 2 + y + phase * 4).min(250) as u8;
                f.set_pixel(x, y, [v, v.saturating_add(5), v / 2 + 40]);
            }
        }
        f
    }

    #[test]
    fn intra_roundtrip_quality_by_qp() {
        let res = Resolution::new(64, 48);
        let frame = gradient_frame(res, 0);
        let mut psnrs = Vec::new();
        for qp in [8u8, 24, 40] {
            let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, qp));
            let mut dec = Decoder::new();
            let decoded = dec.decode(&enc.encode(&frame)).unwrap();
            psnrs.push(decoded.psnr(&frame));
        }
        assert!(psnrs[0] > psnrs[1] && psnrs[1] > psnrs[2], "{psnrs:?}");
        assert!(psnrs[0] > 35.0, "QP 8 should be high quality: {psnrs:?}");
    }

    #[test]
    fn p_frames_track_motion() {
        let res = Resolution::new(64, 48);
        let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, 20));
        let mut dec = Decoder::new();
        for t in 0..6 {
            let frame = gradient_frame(res, t);
            let decoded = dec.decode(&enc.encode(&frame)).unwrap();
            assert!(
                decoded.psnr(&frame) > 28.0,
                "frame {t}: {}",
                decoded.psnr(&frame)
            );
        }
    }

    #[test]
    fn p_frame_without_reference_errors() {
        let res = Resolution::new(32, 32);
        let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, 20));
        let _ = enc.encode(&Frame::black(res));
        let p = enc.encode(&Frame::black(res));
        let mut dec = Decoder::new();
        assert_eq!(dec.decode(&p), Err(DecodeError::MissingReference));
    }

    #[test]
    fn corrupt_stream_is_an_error_not_a_panic() {
        let res = Resolution::new(32, 32);
        let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, 20));
        let mut e = enc.encode(&Frame::black(res));
        e.data.truncate(3);
        let mut dec = Decoder::new();
        assert!(matches!(dec.decode(&e), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn odd_resolutions_roundtrip() {
        let res = Resolution::new(50, 38);
        let frame = gradient_frame(res, 1);
        let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, 16));
        let mut dec = Decoder::new();
        let d1 = dec.decode(&enc.encode(&frame)).unwrap();
        assert_eq!(d1.resolution(), res);
        let d2 = dec.decode(&enc.encode(&frame)).unwrap();
        assert_eq!(d2.resolution(), res);
        assert!(d2.psnr(&frame) > 28.0);
    }
}
