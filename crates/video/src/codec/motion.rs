//! Integer-pel motion estimation: SAD cost + three-step search over 16×16
//! macroblocks.

use super::color::Plane;
use super::MB;

/// A motion vector in integer luma pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MotionVector {
    /// Horizontal displacement.
    pub dx: i32,
    /// Vertical displacement.
    pub dy: i32,
}

/// Sum of absolute differences between the `MB×MB` block of `cur` at
/// `(x0, y0)` and the reference block displaced by `(dx, dy)` (edge
/// clamped).
pub fn sad(cur: &Plane, reference: &Plane, x0: usize, y0: usize, dx: i32, dy: i32) -> f32 {
    let mut acc = 0.0f32;
    for j in 0..MB {
        for i in 0..MB {
            let c = cur.at_clamped((x0 + i) as isize, (y0 + j) as isize);
            let r = reference.at_clamped(
                x0 as isize + i as isize + dx as isize,
                y0 as isize + j as isize + dy as isize,
            );
            acc += (c - r).abs();
        }
    }
    acc
}

/// Three-step search around (0,0) with an initial radius of `range/2`,
/// returning the best motion vector and its SAD.
///
/// This is the classic logarithmic search: evaluate the 9 points of a
/// square, recenter on the best, halve the step, repeat.
pub fn three_step_search(
    cur: &Plane,
    reference: &Plane,
    x0: usize,
    y0: usize,
    range: i32,
) -> (MotionVector, f32) {
    let mut best = MotionVector::default();
    let mut best_sad = sad(cur, reference, x0, y0, 0, 0);
    let mut step = (range / 2).max(1);
    while step >= 1 {
        let center = best;
        for dy in [-step, 0, step] {
            for dx in [-step, 0, step] {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let cand = MotionVector {
                    dx: (center.dx + dx).clamp(-range, range),
                    dy: (center.dy + dy).clamp(-range, range),
                };
                let s = sad(cur, reference, x0, y0, cand.dx, cand.dy);
                if s < best_sad {
                    best_sad = s;
                    best = cand;
                }
            }
        }
        if step == 1 {
            break;
        }
        step /= 2;
    }
    (best, best_sad)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a plane with a bright square at `(x, y)`.
    fn plane_with_square(w: usize, h: usize, x: usize, y: usize) -> Plane {
        let mut p = Plane::zeros(w, h);
        for j in 0..6 {
            for i in 0..6 {
                if x + i < w && y + j < h {
                    p.set(x + i, y + j, 200.0);
                }
            }
        }
        p
    }

    #[test]
    fn sad_zero_for_identical() {
        let p = plane_with_square(32, 32, 8, 8);
        assert_eq!(sad(&p, &p, 0, 0, 0, 0), 0.0);
    }

    #[test]
    fn search_recovers_known_translation() {
        // Object moves +3 px right, +2 px down between reference and current.
        let reference = plane_with_square(48, 48, 10, 12);
        let cur = plane_with_square(48, 48, 13, 14);
        let (mv, s) = three_step_search(&cur, &reference, 0, 0, 8);
        // Best vector points from current back to reference content.
        assert_eq!((mv.dx, mv.dy), (-3, -2));
        assert_eq!(s, 0.0);
    }

    #[test]
    fn search_never_worse_than_zero_mv() {
        let reference = plane_with_square(48, 48, 9, 9);
        let cur = plane_with_square(48, 48, 16, 20);
        let zero = sad(&cur, &reference, 0, 0, 0, 0);
        let (_, best) = three_step_search(&cur, &reference, 0, 0, 8);
        assert!(best <= zero);
    }
}
