//! 8×8 type-II DCT and its inverse, orthonormal scaling.

/// Precomputed orthonormal DCT-II basis: `C[k][n] = a(k)·cos((2n+1)kπ/16)`.
fn basis() -> &'static [[f32; 8]; 8] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut c = [[0.0f32; 8]; 8];
        for (k, row) in c.iter_mut().enumerate() {
            let a = if k == 0 {
                (1.0f64 / 8.0).sqrt()
            } else {
                (2.0f64 / 8.0).sqrt()
            };
            for (n, v) in row.iter_mut().enumerate() {
                *v = (a * ((2 * n + 1) as f64 * k as f64 * std::f64::consts::PI / 16.0).cos())
                    as f32;
            }
        }
        c
    })
}

/// Forward 8×8 DCT: `F = C·X·Cᵀ`.
pub fn forward(block: &[f32; 64]) -> [f32; 64] {
    let c = basis();
    let mut tmp = [0.0f32; 64];
    // tmp = C · X  (rows transform)
    for k in 0..8 {
        for n in 0..8 {
            let mut acc = 0.0;
            for m in 0..8 {
                acc += c[k][m] * block[m * 8 + n];
            }
            tmp[k * 8 + n] = acc;
        }
    }
    // out = tmp · Cᵀ (columns transform)
    let mut out = [0.0f32; 64];
    for k in 0..8 {
        for l in 0..8 {
            let mut acc = 0.0;
            for n in 0..8 {
                acc += tmp[k * 8 + n] * c[l][n];
            }
            out[k * 8 + l] = acc;
        }
    }
    out
}

/// Inverse 8×8 DCT: `X = Cᵀ·F·C`.
pub fn inverse(coefs: &[f32; 64]) -> [f32; 64] {
    let c = basis();
    let mut tmp = [0.0f32; 64];
    for m in 0..8 {
        for l in 0..8 {
            let mut acc = 0.0;
            for k in 0..8 {
                acc += c[k][m] * coefs[k * 8 + l];
            }
            tmp[m * 8 + l] = acc;
        }
    }
    let mut out = [0.0f32; 64];
    for m in 0..8 {
        for n in 0..8 {
            let mut acc = 0.0;
            for l in 0..8 {
                acc += tmp[m * 8 + l] * c[l][n];
            }
            out[m * 8 + n] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_identity() {
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 255) as f32 - 128.0;
        }
        let back = inverse(&forward(&block));
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn dc_of_constant_block() {
        let block = [100.0f32; 64];
        let f = forward(&block);
        // Orthonormal: DC = 8 · mean = 800.
        assert!((f[0] - 800.0).abs() < 1e-2);
        for &v in &f[1..] {
            assert!(v.abs() < 1e-3);
        }
    }

    #[test]
    fn energy_preservation_parseval() {
        let mut block = [0.0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as f32).sin() * 50.0;
        }
        let f = forward(&block);
        let e_spatial: f32 = block.iter().map(|v| v * v).sum();
        let e_freq: f32 = f.iter().map(|v| v * v).sum();
        assert!((e_spatial - e_freq).abs() / e_spatial < 1e-4);
    }

    #[test]
    fn smooth_blocks_compact_energy() {
        // A gentle gradient should put almost all energy in low frequencies.
        let mut block = [0.0f32; 64];
        for j in 0..8 {
            for i in 0..8 {
                block[j * 8 + i] = (i + j) as f32 * 4.0;
            }
        }
        let f = forward(&block);
        let low: f32 = (0..3)
            .flat_map(|j| (0..3).map(move |i| f[j * 8 + i] * f[j * 8 + i]))
            .sum();
        let total: f32 = f.iter().map(|v| v * v).sum();
        assert!(low / total > 0.99);
    }
}
