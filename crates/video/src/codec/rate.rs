//! Closed-loop rate control: drives the QP so the encoded stream converges
//! on a target bitrate, the way the paper's re-encode step targets
//! "250 Kb/s and 500 Kb/s" uploads (§4.3).

use super::quant::{QP_MAX, QP_MIN};

/// A proportional QP controller on an exponential moving average of bits
/// per frame.
///
/// Six QP steps halve the bit-rate (the quantizer step doubles), so the
/// controller converts the log₂ of the rate error directly into QP points.
#[derive(Debug, Clone)]
pub struct RateController {
    target_bits_per_frame: f64,
    ema_bits: f64,
    qp: f64,
}

impl RateController {
    /// Creates a controller for `bitrate_bps` at `fps` frames per second.
    ///
    /// # Panics
    ///
    /// Panics if the target is not positive and finite.
    pub fn new(bitrate_bps: f64, fps: f64) -> Self {
        assert!(bitrate_bps > 0.0 && bitrate_bps.is_finite(), "bad bitrate");
        assert!(fps > 0.0 && fps.is_finite(), "bad fps");
        let target = bitrate_bps / fps;
        RateController {
            target_bits_per_frame: target,
            ema_bits: target,
            qp: 32.0,
        }
    }

    /// QP to use for the next frame.
    pub fn qp(&self) -> u8 {
        self.qp.round().clamp(QP_MIN as f64, QP_MAX as f64) as u8
    }

    /// Target bits per frame.
    pub fn target_bits_per_frame(&self) -> f64 {
        self.target_bits_per_frame
    }

    /// Records the actual size of the frame just encoded.
    pub fn record(&mut self, bits: usize) {
        self.ema_bits = 0.85 * self.ema_bits + 0.15 * bits as f64;
        let err = (self.ema_bits / self.target_bits_per_frame).log2();
        // 6 QP ≈ 2× rate; apply proportionally with a step clamp so a
        // single huge I-frame cannot slam the quantizer.
        self.qp = (self.qp + (2.0 * err).clamp(-2.0, 2.0)).clamp(QP_MIN as f64, QP_MAX as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_rises_when_overshooting() {
        let mut rc = RateController::new(100_000.0, 10.0); // 10k bits/frame
        let q0 = rc.qp();
        for _ in 0..20 {
            rc.record(40_000); // 4× over budget
        }
        assert!(rc.qp() > q0);
    }

    #[test]
    fn qp_falls_when_undershooting() {
        let mut rc = RateController::new(100_000.0, 10.0);
        let q0 = rc.qp();
        for _ in 0..20 {
            rc.record(1_000);
        }
        assert!(rc.qp() < q0);
    }

    #[test]
    fn qp_stays_clamped() {
        let mut rc = RateController::new(1_000.0, 30.0);
        for _ in 0..200 {
            rc.record(1_000_000);
        }
        assert!(rc.qp() <= QP_MAX);
        let mut rc = RateController::new(1e9, 30.0);
        for _ in 0..200 {
            rc.record(10);
        }
        // QP_MIN is 0 (the u8 floor); assert the controller actually drove
        // the qp down to it.
        assert_eq!(rc.qp(), QP_MIN);
    }

    #[test]
    #[should_panic(expected = "bad bitrate")]
    fn rejects_zero_bitrate() {
        let _ = RateController::new(0.0, 30.0);
    }
}
