//! The encoder: I/P GOP structure, macroblock mode decisions, transform
//! coding, and closed-loop reconstruction.

use serde::{Deserialize, Serialize};

use super::bitstream::BitWriter;
use super::color::{Plane, Ycbcr420};
use super::motion::{sad, three_step_search, MotionVector};
use super::quant::{dequantize, quantize, read_block, steps, write_block};
use super::rate::RateController;
use super::{dct, BLOCK, MB};
use crate::{Frame, Resolution};

/// Frame coding type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameType {
    /// Intra-coded: every block transform-coded independently.
    I,
    /// Predicted: motion-compensated against the previous reconstruction.
    P,
}

/// Rate selection: fixed quantizer or target bitrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RateMode {
    /// Constant QP (0 = finest, 51 = coarsest).
    ConstantQp(u8),
    /// Closed-loop rate control toward bits-per-second.
    TargetBitrate(f64),
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Frame size.
    pub resolution: Resolution,
    /// Frames per second (used by rate control).
    pub fps: f64,
    /// I-frame interval in frames (GOP length).
    pub gop: usize,
    /// Motion search range in pixels.
    pub search_range: i32,
    /// Rate mode.
    pub rate: RateMode,
    /// Mean-absolute-difference threshold (8-bit levels per pixel) under
    /// which a macroblock is coded as SKIP.
    pub skip_threshold: f32,
}

impl EncoderConfig {
    /// Constant-QP config with the default GOP of 15.
    pub fn with_qp(resolution: Resolution, fps: f64, qp: u8) -> Self {
        EncoderConfig {
            resolution,
            fps,
            gop: 15,
            search_range: 8,
            rate: RateMode::ConstantQp(qp),
            skip_threshold: 1.25,
        }
    }

    /// Rate-controlled config targeting `bitrate_bps`.
    pub fn with_bitrate(resolution: Resolution, fps: f64, bitrate_bps: f64) -> Self {
        EncoderConfig {
            resolution,
            fps,
            gop: 15,
            search_range: 8,
            rate: RateMode::TargetBitrate(bitrate_bps),
            skip_threshold: 1.25,
        }
    }
}

/// One encoded frame: the bitstream plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// The bitstream. `data.len()` is the frame's wire size.
    pub data: Vec<u8>,
    /// Coding type.
    pub frame_type: FrameType,
    /// QP used.
    pub qp: u8,
}

impl EncodedFrame {
    /// Wire size in bits.
    pub fn bits(&self) -> usize {
        self.data.len() * 8
    }
}

/// The FBC encoder. Feed frames in display order; the first frame of every
/// GOP is intra-coded.
#[derive(Debug)]
pub struct Encoder {
    cfg: EncoderConfig,
    frame_index: u64,
    reference: Option<Ycbcr420>,
    rate: Option<RateController>,
}

impl Encoder {
    /// Creates an encoder.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is empty or the GOP is zero.
    pub fn new(cfg: EncoderConfig) -> Self {
        assert!(cfg.resolution.pixels() > 0, "empty resolution");
        assert!(cfg.gop > 0, "GOP must be positive");
        let rate = match cfg.rate {
            RateMode::ConstantQp(qp) => {
                assert!(qp <= super::quant::QP_MAX, "QP out of range");
                None
            }
            RateMode::TargetBitrate(bps) => Some(RateController::new(bps, cfg.fps)),
        };
        Encoder {
            cfg,
            frame_index: 0,
            reference: None,
            rate,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Forces the next frame to be intra-coded (used when seeking or after
    /// a filtering gap, where the previous reference is not the true
    /// predecessor).
    pub fn force_keyframe(&mut self) {
        self.frame_index = 0;
        self.reference = None;
    }

    /// Encodes one frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame size differs from the configured resolution.
    pub fn encode(&mut self, frame: &Frame) -> EncodedFrame {
        assert_eq!(
            frame.resolution(),
            self.cfg.resolution,
            "frame size changed mid-stream"
        );
        let cur = Ycbcr420::from_frame(frame);
        let is_intra =
            self.frame_index.is_multiple_of(self.cfg.gop as u64) || self.reference.is_none();
        let qp = match (&self.rate, self.cfg.rate) {
            (Some(rc), _) => rc.qp(),
            (None, RateMode::ConstantQp(q)) => q,
            (None, RateMode::TargetBitrate(_)) => unreachable!("checked in new()"),
        };

        let mut w = BitWriter::new();
        let res = frame.resolution();
        w.put_bits(res.width as u32, 16);
        w.put_bits(res.height as u32, 16);
        w.put_bit(is_intra);
        w.put_bits(qp as u32, 6);

        let mut recon = Ycbcr420::black(res);
        if is_intra {
            encode_plane_intra(&mut w, &cur.y, &mut recon.y, false, qp);
            encode_plane_intra(&mut w, &cur.cb, &mut recon.cb, true, qp);
            encode_plane_intra(&mut w, &cur.cr, &mut recon.cr, true, qp);
        } else {
            let reference = self.reference.as_ref().expect("P-frame without reference");
            encode_inter(&mut w, &cur, reference, &mut recon, qp, &self.cfg);
        }

        let data = w.finish();
        if let Some(rc) = &mut self.rate {
            rc.record(data.len() * 8);
        }
        self.reference = Some(recon);
        self.frame_index += 1;
        EncodedFrame {
            data,
            frame_type: if is_intra { FrameType::I } else { FrameType::P },
            qp,
        }
    }

    /// Encodes a whole clip, returning the frames and total bytes.
    pub fn encode_all<'a>(
        &mut self,
        frames: impl IntoIterator<Item = &'a Frame>,
    ) -> Vec<EncodedFrame> {
        frames.into_iter().map(|f| self.encode(f)).collect()
    }
}

/// Number of 8×8 blocks covering `n` pixels.
fn blocks(n: usize) -> usize {
    n.div_ceil(BLOCK)
}

fn encode_plane_intra(w: &mut BitWriter, plane: &Plane, recon: &mut Plane, chroma: bool, qp: u8) {
    let st = steps(chroma, qp);
    for by in 0..blocks(plane.height()) {
        for bx in 0..blocks(plane.width()) {
            let mut block = plane.block8(bx, by);
            for v in &mut block {
                *v -= 128.0;
            }
            let levels = quantize(&dct::forward(&block), &st);
            write_block(w, &levels);
            let mut rec = dct::inverse(&dequantize(&levels, &st));
            for v in &mut rec {
                *v += 128.0;
            }
            recon.set_block8(bx, by, &rec);
        }
    }
}

/// Extracts the motion-compensated 8×8 prediction block at block coords
/// `(bx, by)` displaced by `mv` (in this plane's pixel units).
fn pred_block8(reference: &Plane, bx: usize, by: usize, mv: MotionVector) -> [f32; 64] {
    let mut out = [0.0f32; 64];
    for j in 0..BLOCK {
        for i in 0..BLOCK {
            out[j * BLOCK + i] = reference.at_clamped(
                (bx * BLOCK + i) as isize + mv.dx as isize,
                (by * BLOCK + j) as isize + mv.dy as isize,
            );
        }
    }
    out
}

/// Quantized residual for one 8×8 block at a motion vector.
fn residual_levels(
    plane: &Plane,
    reference: &Plane,
    bx: usize,
    by: usize,
    mv: MotionVector,
    st: &[f32; 64],
) -> [i32; 64] {
    let cur = plane.block8(bx, by);
    let pred = pred_block8(reference, bx, by, mv);
    let mut residual = [0.0f32; 64];
    for i in 0..64 {
        residual[i] = cur[i] - pred[i];
    }
    quantize(&dct::forward(&residual), st)
}

/// Reconstructs `recon`'s block from prediction + dequantized levels.
fn apply_levels(
    reference: &Plane,
    recon: &mut Plane,
    bx: usize,
    by: usize,
    mv: MotionVector,
    levels: &[i32; 64],
    st: &[f32; 64],
) {
    let pred = pred_block8(reference, bx, by, mv);
    let rec_res = dct::inverse(&dequantize(levels, st));
    let mut rec = [0.0f32; 64];
    for i in 0..64 {
        rec[i] = (pred[i] + rec_res[i]).clamp(0.0, 255.0);
    }
    recon.set_block8(bx, by, &rec);
}

fn encode_inter(
    w: &mut BitWriter,
    cur: &Ycbcr420,
    reference: &Ycbcr420,
    recon: &mut Ycbcr420,
    qp: u8,
    cfg: &EncoderConfig,
) {
    let st_luma = steps(false, qp);
    let st_chroma = steps(true, qp);
    let mbs_x = cur.y.width().div_ceil(MB);
    let mbs_y = cur.y.height().div_ceil(MB);
    for mby in 0..mbs_y {
        for mbx in 0..mbs_x {
            let (x0, y0) = (mbx * MB, mby * MB);
            // Motion search, with a fast path: a small zero-MV SAD skips
            // the search (not the coding decision).
            let zero_sad = sad(&cur.y, &reference.y, x0, y0, 0, 0);
            let mv = if zero_sad <= cfg.skip_threshold * (MB * MB) as f32 {
                MotionVector::default()
            } else {
                three_step_search(&cur.y, &reference.y, x0, y0, cfg.search_range).0
            };
            let luma_blocks = [(0, 0), (0, 1), (1, 0), (1, 1)];
            let luma_levels: Vec<[i32; 64]> = luma_blocks
                .iter()
                .map(|&(dy, dx)| {
                    residual_levels(
                        &cur.y,
                        &reference.y,
                        mbx * 2 + dx,
                        mby * 2 + dy,
                        mv,
                        &st_luma,
                    )
                })
                .collect();
            let cmv = MotionVector {
                dx: mv.dx / 2,
                dy: mv.dy / 2,
            };
            let cb_levels = residual_levels(&cur.cb, &reference.cb, mbx, mby, cmv, &st_chroma);
            let cr_levels = residual_levels(&cur.cr, &reference.cr, mbx, mby, cmv, &st_chroma);

            // True SKIP decision: zero vector and all-zero residuals means
            // the reconstruction would equal the reference exactly.
            let all_zero = mv == MotionVector::default()
                && luma_levels.iter().all(|l| l.iter().all(|&v| v == 0))
                && cb_levels.iter().all(|&v| v == 0)
                && cr_levels.iter().all(|&v| v == 0);
            if all_zero {
                w.put_ue(0);
                copy_mb(reference, recon, mbx, mby);
                continue;
            }
            w.put_ue(1);
            w.put_se(mv.dx);
            w.put_se(mv.dy);
            for (&(dy, dx), levels) in luma_blocks.iter().zip(&luma_levels) {
                write_block(w, levels);
                apply_levels(
                    &reference.y,
                    &mut recon.y,
                    mbx * 2 + dx,
                    mby * 2 + dy,
                    mv,
                    levels,
                    &st_luma,
                );
            }
            write_block(w, &cb_levels);
            apply_levels(
                &reference.cb,
                &mut recon.cb,
                mbx,
                mby,
                cmv,
                &cb_levels,
                &st_chroma,
            );
            write_block(w, &cr_levels);
            apply_levels(
                &reference.cr,
                &mut recon.cr,
                mbx,
                mby,
                cmv,
                &cr_levels,
                &st_chroma,
            );
        }
    }
}

/// Copies a co-located macroblock (luma + chroma) from `src` to `dst`.
pub(super) fn copy_mb(src: &Ycbcr420, dst: &mut Ycbcr420, mbx: usize, mby: usize) {
    for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        let b = src.y.block8(mbx * 2 + dx, mby * 2 + dy);
        dst.y.set_block8(mbx * 2 + dx, mby * 2 + dy, &b);
    }
    let b = src.cb.block8(mbx, mby);
    dst.cb.set_block8(mbx, mby, &b);
    let b = src.cr.block8(mbx, mby);
    dst.cr.set_block8(mbx, mby, &b);
}

/// Decodes the shared frame header; used by the decoder.
pub(super) struct FrameHeader {
    pub width: usize,
    pub height: usize,
    pub intra: bool,
    pub qp: u8,
}

pub(super) fn read_header(r: &mut super::bitstream::BitReader<'_>) -> Option<FrameHeader> {
    let width = r.get_bits(16)? as usize;
    let height = r.get_bits(16)? as usize;
    let intra = r.get_bit()?;
    let qp = r.get_bits(6)? as u8;
    Some(FrameHeader {
        width,
        height,
        intra,
        qp,
    })
}

pub(super) fn decode_plane_intra(
    r: &mut super::bitstream::BitReader<'_>,
    plane: &mut Plane,
    chroma: bool,
    qp: u8,
) -> Option<()> {
    let st = steps(chroma, qp);
    for by in 0..blocks(plane.height()) {
        for bx in 0..blocks(plane.width()) {
            let levels = read_block(r)?;
            let mut rec = dct::inverse(&dequantize(&levels, &st));
            for v in &mut rec {
                *v = (*v + 128.0).clamp(0.0, 255.0);
            }
            plane.set_block8(bx, by, &rec);
        }
    }
    Some(())
}

pub(super) fn decode_residual_block(
    r: &mut super::bitstream::BitReader<'_>,
    reference: &Plane,
    recon: &mut Plane,
    bx: usize,
    by: usize,
    mv: MotionVector,
    st: &[f32; 64],
) -> Option<()> {
    let levels = read_block(r)?;
    let pred = pred_block8(reference, bx, by, mv);
    let rec_res = dct::inverse(&dequantize(&levels, st));
    let mut rec = [0.0f32; 64];
    for i in 0..64 {
        rec[i] = (pred[i] + rec_res[i]).clamp(0.0, 255.0);
    }
    recon.set_block8(bx, by, &rec);
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_frame_is_intra() {
        let cfg = EncoderConfig::with_qp(Resolution::new(32, 32), 15.0, 24);
        let mut enc = Encoder::new(cfg);
        let e = enc.encode(&Frame::black(Resolution::new(32, 32)));
        assert_eq!(e.frame_type, FrameType::I);
        let e2 = enc.encode(&Frame::black(Resolution::new(32, 32)));
        assert_eq!(e2.frame_type, FrameType::P);
    }

    #[test]
    fn gop_cadence() {
        let mut cfg = EncoderConfig::with_qp(Resolution::new(16, 16), 15.0, 24);
        cfg.gop = 4;
        let mut enc = Encoder::new(cfg);
        let f = Frame::black(Resolution::new(16, 16));
        let types: Vec<FrameType> = (0..9).map(|_| enc.encode(&f).frame_type).collect();
        use FrameType::*;
        assert_eq!(types, vec![I, P, P, P, I, P, P, P, I]);
    }

    #[test]
    fn static_p_frames_are_tiny() {
        let cfg = EncoderConfig::with_qp(Resolution::new(64, 64), 15.0, 24);
        let mut enc = Encoder::new(cfg);
        let f = Frame::black(Resolution::new(64, 64));
        let i_frame = enc.encode(&f);
        let p_frame = enc.encode(&f);
        assert!(
            p_frame.data.len() * 4 < i_frame.data.len(),
            "P {} vs I {}",
            p_frame.data.len(),
            i_frame.data.len()
        );
    }

    #[test]
    fn force_keyframe_resets() {
        let cfg = EncoderConfig::with_qp(Resolution::new(16, 16), 15.0, 24);
        let mut enc = Encoder::new(cfg);
        let f = Frame::black(Resolution::new(16, 16));
        let _ = enc.encode(&f);
        let _ = enc.encode(&f);
        enc.force_keyframe();
        assert_eq!(enc.encode(&f).frame_type, FrameType::I);
    }

    #[test]
    #[should_panic(expected = "frame size changed")]
    fn rejects_resolution_change() {
        let cfg = EncoderConfig::with_qp(Resolution::new(16, 16), 15.0, 24);
        let mut enc = Encoder::new(cfg);
        let _ = enc.encode(&Frame::black(Resolution::new(32, 16)));
    }
}
