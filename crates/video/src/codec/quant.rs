//! Quantization: JPEG-style base matrices scaled by a QP, plus the zigzag
//! scan and run-level coefficient coding.

use super::bitstream::{BitReader, BitWriter};

/// Valid QP range. Higher QP ⇒ coarser quantization ⇒ fewer bits.
pub const QP_MIN: u8 = 0;
/// Maximum QP (H.264-style range).
pub const QP_MAX: u8 = 51;

/// JPEG annex-K luminance quantization matrix (quality 50 reference).
const LUMA_Q: [f32; 64] = [
    16., 11., 10., 16., 24., 40., 51., 61., 12., 12., 14., 19., 26., 58., 60., 55., 14., 13., 16.,
    24., 40., 57., 69., 56., 14., 17., 22., 29., 51., 87., 80., 62., 18., 22., 37., 56., 68., 109.,
    103., 77., 24., 35., 55., 64., 81., 104., 113., 92., 49., 64., 78., 87., 103., 121., 120.,
    101., 72., 92., 95., 98., 112., 100., 103., 99.,
];

/// JPEG annex-K chrominance quantization matrix.
const CHROMA_Q: [f32; 64] = [
    17., 18., 24., 47., 99., 99., 99., 99., 18., 21., 26., 66., 99., 99., 99., 99., 24., 26., 56.,
    99., 99., 99., 99., 99., 47., 66., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99.,
    99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99., 99.,
    99., 99., 99., 99., 99., 99., 99.,
];

/// Zigzag scan order for an 8×8 block.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// QP → multiplicative scale on the base matrices. Six QP steps double the
/// step size, anchored so QP 20 ≈ JPEG quality-50.
pub fn qp_scale(qp: u8) -> f32 {
    debug_assert!(qp <= QP_MAX);
    2f32.powf((qp as f32 - 20.0) / 6.0)
}

/// Per-coefficient quantizer step sizes for a plane kind at a QP.
pub fn steps(chroma: bool, qp: u8) -> [f32; 64] {
    let base = if chroma { &CHROMA_Q } else { &LUMA_Q };
    let s = qp_scale(qp);
    let mut out = [0.0f32; 64];
    for (o, b) in out.iter_mut().zip(base) {
        *o = (b * s).max(1.0);
    }
    out
}

/// Quantizes DCT coefficients to integer levels.
pub fn quantize(coefs: &[f32; 64], steps: &[f32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for ((o, &c), &q) in out.iter_mut().zip(coefs).zip(steps) {
        *o = (c / q).round() as i32;
    }
    out
}

/// Reconstructs DCT coefficients from integer levels.
pub fn dequantize(levels: &[i32; 64], steps: &[f32; 64]) -> [f32; 64] {
    let mut out = [0.0f32; 64];
    for ((o, &l), &q) in out.iter_mut().zip(levels).zip(steps) {
        *o = l as f32 * q;
    }
    out
}

/// End-of-block marker in the run-level code (a legal zero-run never
/// reaches 63).
const EOB: u32 = 63;

/// Writes one quantized block: DC as signed Exp-Golomb, then (run, level)
/// pairs over the zigzag-scanned ACs, terminated by an EOB marker.
pub fn write_block(w: &mut BitWriter, levels: &[i32; 64]) {
    w.put_se(levels[0]);
    let mut run = 0u32;
    for &zz in &ZIGZAG[1..] {
        let v = levels[zz];
        if v == 0 {
            run += 1;
        } else {
            w.put_ue(run);
            w.put_se(v);
            run = 0;
        }
    }
    w.put_ue(EOB);
}

/// Reads one quantized block written by [`write_block`].
///
/// Returns `None` on a truncated or corrupt stream.
pub fn read_block(r: &mut BitReader<'_>) -> Option<[i32; 64]> {
    let mut levels = [0i32; 64];
    levels[0] = r.get_se()?;
    let mut pos = 1usize; // index into ZIGZAG
    loop {
        let run = r.get_ue()?;
        if run == EOB {
            break;
        }
        pos += run as usize;
        if pos >= 64 {
            return None; // corrupt: run past block end
        }
        levels[ZIGZAG[pos]] = r.get_se()?;
        pos += 1;
    }
    Some(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn qp_scale_doubles_every_six() {
        assert!((qp_scale(26) / qp_scale(20) - 2.0).abs() < 1e-5);
        assert!((qp_scale(20) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn higher_qp_zeroes_more_coefficients() {
        let mut coefs = [0.0f32; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = 100.0 / (1.0 + i as f32);
        }
        let nz = |qp: u8| {
            quantize(&coefs, &steps(false, qp))
                .iter()
                .filter(|&&v| v != 0)
                .count()
        };
        assert!(nz(10) >= nz(30));
        assert!(nz(30) >= nz(50));
        assert!(nz(50) < nz(10));
    }

    #[test]
    fn quant_dequant_error_bounded_by_half_step() {
        let st = steps(false, 25);
        let mut coefs = [0.0f32; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = (i as f32 * 7.3) - 200.0;
        }
        let back = dequantize(&quantize(&coefs, &st), &st);
        for ((&a, &b), &q) in coefs.iter().zip(&back).zip(&st) {
            assert!((a - b).abs() <= q / 2.0 + 1e-3);
        }
    }

    #[test]
    fn block_coding_roundtrip() {
        let mut levels = [0i32; 64];
        levels[0] = -17;
        levels[1] = 3;
        levels[8] = -1;
        levels[35] = 2;
        levels[63] = 1;
        let mut w = BitWriter::new();
        write_block(&mut w, &levels);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_block(&mut r), Some(levels));
    }

    #[test]
    fn empty_block_is_cheap() {
        let levels = [0i32; 64];
        let mut w = BitWriter::new();
        write_block(&mut w, &levels);
        // DC se(0) = 1 bit + EOB ue(63) = 13 bits → fits in 2 bytes.
        assert!(w.finish().len() <= 2);
    }
}
