//! Integration tests: the codec against real simulator content.

use ff_video::codec::{Decoder, Encoder, EncoderConfig, FrameType};
use ff_video::scene::{Scene, SceneConfig};
use ff_video::{Frame, Resolution};
use proptest::prelude::*;

fn scene_frames(n: usize, seed: u64) -> Vec<Frame> {
    let cfg = SceneConfig {
        resolution: Resolution::new(96, 54),
        seed,
        pedestrian_rate: 0.1,
        car_rate: 0.05,
        ..Default::default()
    };
    Scene::new(cfg).take(n).map(|(f, _)| f).collect()
}

#[test]
fn encode_decode_roundtrip_on_scene_video() {
    let frames = scene_frames(40, 1);
    let res = frames[0].resolution();
    let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, 22));
    let mut dec = Decoder::new();
    for (i, f) in frames.iter().enumerate() {
        let e = enc.encode(f);
        let d = dec.decode(&e).expect("decode");
        let psnr = d.psnr(f);
        assert!(psnr > 26.0, "frame {i}: psnr {psnr}");
    }
}

#[test]
fn rate_control_converges_to_target() {
    let frames = scene_frames(150, 2);
    let res = frames[0].resolution();
    let fps = 15.0;
    for target_bps in [40_000.0f64, 150_000.0] {
        let mut enc = Encoder::new(EncoderConfig::with_bitrate(res, fps, target_bps));
        let mut bits = 0usize;
        // Skip the first 30 frames (controller warm-up) in the average.
        let mut measured = 0usize;
        for (i, f) in frames.iter().enumerate() {
            let e = enc.encode(f);
            if i >= 30 {
                bits += e.bits();
                measured += 1;
            }
        }
        let achieved = bits as f64 / measured as f64 * fps;
        let ratio = achieved / target_bps;
        assert!(
            (0.5..2.0).contains(&ratio),
            "target {target_bps}: achieved {achieved:.0} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn lower_bitrate_means_lower_quality_and_fewer_bits() {
    let frames = scene_frames(60, 3);
    let res = frames[0].resolution();
    let mut results = Vec::new();
    for target in [30_000.0f64, 300_000.0] {
        let mut enc = Encoder::new(EncoderConfig::with_bitrate(res, 15.0, target));
        let mut dec = Decoder::new();
        let mut bits = 0usize;
        let mut psnr_sum = 0.0;
        for f in &frames {
            let e = enc.encode(f);
            bits += e.bits();
            psnr_sum += dec.decode(&e).unwrap().psnr(f).min(60.0);
        }
        results.push((bits, psnr_sum / frames.len() as f64));
    }
    assert!(results[0].0 < results[1].0, "bits: {results:?}");
    assert!(results[0].1 < results[1].1, "psnr: {results:?}");
}

#[test]
fn heavy_compression_destroys_small_red_details() {
    // The core premise of Figure 4: small colored objects survive light
    // compression but not heavy compression. Render a pedestrian-free
    // scene, stamp an 8x4 red patch, and compare red-pixel recall.
    let mut base = scene_frames(1, 4).pop().unwrap();
    for y in 30..34 {
        for x in 40..44 {
            base.set_pixel(x, y, [210, 25, 30]);
        }
    }
    let res = base.resolution();
    let red_count = |f: &Frame| {
        let mut n = 0;
        for y in 28..36 {
            for x in 38..46 {
                let [r, g, b] = f.pixel(x, y);
                if r > 140 && g < 100 && b < 100 {
                    n += 1;
                }
            }
        }
        n
    };
    assert!(red_count(&base) >= 16);
    let decode_at = |qp: u8| {
        let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, qp));
        let mut dec = Decoder::new();
        dec.decode(&enc.encode(&base)).unwrap()
    };
    let light = decode_at(10);
    let heavy = decode_at(50);
    assert!(
        red_count(&light) > red_count(&heavy),
        "light {} vs heavy {}",
        red_count(&light),
        red_count(&heavy)
    );
}

#[test]
fn skip_blocks_make_static_scenes_cheap() {
    let cfg = SceneConfig {
        resolution: Resolution::new(96, 54),
        seed: 9,
        pedestrian_rate: 0.0,
        car_rate: 0.0,
        cyclist_rate: 0.0,
        dog_rate: 0.0,
        noise_level: 0.5,
        ..Default::default()
    };
    let frames: Vec<Frame> = Scene::new(cfg).take(10).map(|(f, _)| f).collect();
    let res = frames[0].resolution();
    let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, 24));
    let encoded = enc.encode_all(&frames);
    assert_eq!(encoded[0].frame_type, FrameType::I);
    let i_bytes = encoded[0].data.len();
    // The first P-frames re-code the I-frame's quantization error once;
    // after the closed loop settles, macroblocks skip and P-frames are tiny.
    for e in &encoded[5..] {
        assert!(
            e.data.len() * 5 < i_bytes,
            "settled static P-frame too big: {} vs I {}",
            e.data.len(),
            i_bytes
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_seed_roundtrips(seed in 0u64..1000, qp in 5u8..48) {
        let frames = scene_frames(6, seed);
        let res = frames[0].resolution();
        let mut enc = Encoder::new(EncoderConfig::with_qp(res, 15.0, qp));
        let mut dec = Decoder::new();
        for f in &frames {
            let d = dec.decode(&enc.encode(f)).unwrap();
            prop_assert_eq!(d.resolution(), res);
        }
    }
}
