//! Zero-allocation guarantee for the **multi-stream** steady state.
//!
//! PR 1 pinned the single-stream contract (see `zero_alloc.rs`); the
//! sharded runtime must not regress it: N streams extracting concurrently,
//! each scoped to its own [`PoolShard`], still perform zero heap
//! allocations per frame once warmed up. This exercises the shard dispatch
//! machinery itself — submission locks, condvar parking, chunk claiming —
//! which must run allocation-free, on top of the per-stream workspaces.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use ff_core::{FeatureExtractor, McSpec};
use ff_models::MobileNetConfig;
use ff_tensor::{PoolShard, Tensor};
use ff_video::Resolution;

#[test]
fn sharded_multistream_loop_is_allocation_free_after_warmup() {
    const STREAMS: usize = 2;
    let res = Resolution::new(192, 108);

    // Each stream: its own extractor + MCs (per-stream workspaces) and its
    // own shard of width 2, so dispatch goes through the shard machinery
    // (large stem layers exceed the parallel threshold at this geometry).
    let mut streams: Vec<_> = (0..STREAMS)
        .map(|s| {
            let extractor = FeatureExtractor::new(
                MobileNetConfig::with_width(0.5),
                vec![
                    ff_models::LAYER_LOCALIZED_TAP.to_string(),
                    ff_models::LAYER_FULL_FRAME_TAP.to_string(),
                ],
            );
            let full = McSpec::full_frame(format!("s{s}"), s as u64 + 1);
            let mc = full.build(&extractor, res, ff_core::McId(0));
            let shard = PoolShard::new(2);
            let frame = Tensor::filled(vec![res.height, res.width, 3], 0.3 + s as f32 * 0.1);
            (extractor, mc, shard, frame)
        })
        .collect();

    // Three rendezvous: after warmup (main samples the counter), before the
    // measured loop, and after it.
    let warmed = Barrier::new(STREAMS + 1);
    let measured = Barrier::new(STREAMS + 1);
    let done = Barrier::new(STREAMS + 1);

    std::thread::scope(|scope| {
        for (extractor, mc, shard, frame) in &mut streams {
            let (warmed, measured, done) = (&warmed, &measured, &done);
            scope.spawn(move || {
                // Warm-up: workspace growth, smoothing windows, shard
                // worker spawn, pack-buffer growth on this thread.
                for _ in 0..10 {
                    shard.run(|| {
                        let maps = extractor.extract(frame);
                        let fm = maps.get(&mc.spec().tap);
                        let _ = std::hint::black_box(mc.process_tap(fm));
                    });
                }
                warmed.wait();
                measured.wait();
                for _ in 0..20 {
                    shard.run(|| {
                        let maps = extractor.extract(frame);
                        let fm = maps.get(&mc.spec().tap);
                        let _ = std::hint::black_box(mc.process_tap(fm));
                    });
                }
                done.wait();
            });
        }
        warmed.wait();
        let before = ALLOCS.load(Ordering::Relaxed);
        measured.wait();
        done.wait();
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "steady-state multi-stream loop allocated {} times over {} frames across {STREAMS} sharded streams",
            after - before,
            20 * STREAMS,
        );
    });
}
