//! Zero-allocation guarantee for the **multi-stream** steady state.
//!
//! PR 1 pinned the single-stream contract (see `zero_alloc.rs`); the
//! sharded runtime must not regress it: N streams extracting concurrently,
//! each scoped to its own [`PoolShard`], still perform zero heap
//! allocations per frame once warmed up. This exercises the shard dispatch
//! machinery itself — submission locks, condvar parking, chunk claiming —
//! which must run allocation-free, on top of the per-stream workspaces.
//!
//! The second test pins the same contract for the **gather-batch** hot
//! path: one shared batched base-DNN pass over several streams' frames
//! (stacked input, batched im2col, one GEMM per layer, per-frame tap
//! splits) plus the per-stream MC fanout, all cycling through the batch
//! extractor's workspace.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use ff_core::{FeatureExtractor, McSpec};
use ff_models::MobileNetConfig;
use ff_tensor::{PoolShard, Tensor};
use ff_video::Resolution;

/// Serializes the two counting-allocator tests: the harness runs tests in
/// this binary concurrently by default, and a measurement window must not
/// see the other test's allocations.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn sharded_multistream_loop_is_allocation_free_after_warmup() {
    let _serial = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    const STREAMS: usize = 2;
    let res = Resolution::new(192, 108);

    // Each stream: its own extractor + MCs (per-stream workspaces) and its
    // own shard of width 2, so dispatch goes through the shard machinery
    // (large stem layers exceed the parallel threshold at this geometry).
    let mut streams: Vec<_> = (0..STREAMS)
        .map(|s| {
            let extractor = FeatureExtractor::new(
                MobileNetConfig::with_width(0.5),
                vec![
                    ff_models::LAYER_LOCALIZED_TAP.to_string(),
                    ff_models::LAYER_FULL_FRAME_TAP.to_string(),
                ],
            );
            let full = McSpec::full_frame(format!("s{s}"), s as u64 + 1);
            let mc = full.build(&extractor, res, ff_core::McId(0));
            let shard = PoolShard::new(2);
            let frame = Tensor::filled(vec![res.height, res.width, 3], 0.3 + s as f32 * 0.1);
            (extractor, mc, shard, frame)
        })
        .collect();

    // Three rendezvous: after warmup (main samples the counter), before the
    // measured loop, and after it.
    let warmed = Barrier::new(STREAMS + 1);
    let measured = Barrier::new(STREAMS + 1);
    let done = Barrier::new(STREAMS + 1);

    std::thread::scope(|scope| {
        for (extractor, mc, shard, frame) in &mut streams {
            let (warmed, measured, done) = (&warmed, &measured, &done);
            scope.spawn(move || {
                // Warm-up: workspace growth, smoothing windows, shard
                // worker spawn, pack-buffer growth on this thread.
                for _ in 0..10 {
                    shard.run(|| {
                        let maps = extractor.extract(frame);
                        let fm = maps.get(&mc.spec().tap);
                        let _ = std::hint::black_box(mc.process_tap(fm));
                    });
                }
                warmed.wait();
                measured.wait();
                for _ in 0..20 {
                    shard.run(|| {
                        let maps = extractor.extract(frame);
                        let fm = maps.get(&mc.spec().tap);
                        let _ = std::hint::black_box(mc.process_tap(fm));
                    });
                }
                done.wait();
            });
        }
        warmed.wait();
        let before = ALLOCS.load(Ordering::Relaxed);
        measured.wait();
        done.wait();
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "steady-state multi-stream loop allocated {} times over {} frames across {STREAMS} sharded streams",
            after - before,
            20 * STREAMS,
        );
    });
}

/// The gather-batch inference stage of the [`ff_core::runtime::EdgeNode`]:
/// one shared batched base-DNN pass over one frame per stream, then each
/// stream's MCs consuming its per-frame maps — allocation-free once the
/// batch extractor's workspace, the per-frame map set, and the smoothing
/// windows are warm.
#[test]
fn gather_batch_extraction_and_mc_fanout_are_allocation_free_after_warmup() {
    let _serial = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    const STREAMS: usize = 3;
    let res = Resolution::new(192, 108);

    // The shared batched extractor (as the gather-batch EdgeNode builds it)
    // plus one MC per stream, exactly the per-round fanout of the runtime's
    // single inference stage.
    let mut extractor = FeatureExtractor::new(
        MobileNetConfig::with_width(0.5),
        vec![
            ff_models::LAYER_LOCALIZED_TAP.to_string(),
            ff_models::LAYER_FULL_FRAME_TAP.to_string(),
        ],
    );
    let mut mcs: Vec<_> = (0..STREAMS)
        .map(|s| {
            let spec = if s % 2 == 0 {
                McSpec::full_frame(format!("g{s}"), s as u64 + 1)
            } else {
                McSpec::localized(format!("g{s}"), None, s as u64 + 1)
            };
            spec.build(&extractor, res, ff_core::McId(0))
        })
        .collect();
    let frames: Vec<Tensor> = (0..STREAMS)
        .map(|s| Tensor::filled(vec![res.height, res.width, 3], 0.25 + s as f32 * 0.1))
        .collect();
    let shard = PoolShard::new(2);

    // Warm-up: workspace growth to the batched steady-state set (stacked
    // input, batched im2col, per-frame tap copies), smoothing windows,
    // shard worker spawn, pack-buffer growth.
    for _ in 0..10 {
        shard.run(|| {
            let maps = extractor.extract_batch(&frames);
            for (s, mc) in mcs.iter_mut().enumerate() {
                let fm = maps[s].get(&mc.spec().tap);
                let _ = std::hint::black_box(mc.process_tap(fm));
            }
        });
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..20 {
        shard.run(|| {
            let maps = extractor.extract_batch(&frames);
            for (s, mc) in mcs.iter_mut().enumerate() {
                let fm = maps[s].get(&mc.spec().tap);
                let _ = std::hint::black_box(mc.process_tap(fm));
            }
        });
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "gather-batch hot path allocated {} times over 20 rounds of {STREAMS}-frame batches",
        after - before,
    );
}
