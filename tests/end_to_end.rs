//! Cross-crate integration tests: the full train → deploy → filter →
//! upload path on synthetic data, at test scale.

use ff_core::evaluate::{mc_probs, score_probs};
use ff_core::pipeline::{FilterForward, PipelineConfig};
use ff_core::train::{train_mc, TrainConfig};
use ff_core::{FeatureExtractor, McSpec, SmoothingConfig};
use ff_data::{DatasetSpec, Split};
use ff_models::MobileNetConfig;

// Seed 43: both splits carry several multi-frame pedestrian events at these
// lengths (the synthetic scene's event count is Poisson with a small mean, so
// an arbitrary seed can leave one split nearly event-free and make
// training/evaluation meaningless).
fn tiny_data(frames: usize) -> DatasetSpec {
    DatasetSpec::jackson_like(20, frames, 43)
}

fn calibrated_extractor(data: &DatasetSpec, taps: Vec<String>) -> FeatureExtractor {
    let mut ex = FeatureExtractor::new(MobileNetConfig::with_width(0.25), taps);
    let cal: Vec<_> = data
        .open(Split::Train)
        .take(6)
        .map(|lf| lf.frame.to_tensor())
        .collect();
    ex.calibrate(&cal);
    ex
}

/// The headline integration property: a trained MC on random-but-calibrated
/// base-DNN features beats chance by a wide margin on held-out video.
#[test]
fn trained_mc_detects_events_on_held_out_video() {
    let data = tiny_data(900);
    let spec = McSpec::localized("ped", data.task.crop, 7);
    let mut extractor = calibrated_extractor(&data, vec![spec.tap.clone()]);
    let trained = train_mc(
        &mut extractor,
        &spec,
        &data,
        &TrainConfig {
            epochs: 4,
            max_cached: 700,
            ..Default::default()
        },
    );
    let mut model = trained.model;
    let test = data.open(Split::Test).map(|lf| (lf.frame, lf.label));
    let (probs, labels) = mc_probs(&mut extractor, &spec, &mut model, test);
    let score = score_probs(&probs, trained.threshold, spec.smoothing, &labels);

    // Chance baseline: predicting everything positive scores precision =
    // base rate; the trained filter must do much better while keeping
    // recall (small samples, so the bar is deliberately modest).
    let base_rate = labels.iter().filter(|&&l| l).count() as f64 / labels.len() as f64;
    assert!(
        score.f1 > (2.0 * base_rate / (1.0 + base_rate)) + 0.1,
        "F1 {:.3} vs predict-everything {:.3}",
        score.f1,
        2.0 * base_rate / (1.0 + base_rate)
    );
    assert!(score.recall > 0.5, "recall {:.3}", score.recall);
}

/// Multi-tenancy correctness: N MCs sharing one extractor produce exactly
/// the decisions each would produce alone.
#[test]
fn shared_extraction_equals_isolated_runs() {
    let data = tiny_data(40);
    let res = data.resolution();
    let frames: Vec<_> = data.open(Split::Test).map(|lf| lf.frame).collect();

    let specs = vec![
        McSpec {
            threshold: 0.4,
            smoothing: SmoothingConfig { n: 3, k: 2 },
            ..McSpec::full_frame("a", 1)
        },
        McSpec {
            threshold: 0.6,
            smoothing: SmoothingConfig { n: 1, k: 1 },
            ..McSpec::localized("b", data.task.crop, 2)
        },
    ];

    // Run together.
    let mut cfg = PipelineConfig::new(res, 15.0);
    cfg.mobilenet = MobileNetConfig::with_width(0.25);
    cfg.archive = None;
    let mut together = FilterForward::new(cfg);
    for s in &specs {
        together.deploy(s.clone());
    }
    let mut joint: Vec<Vec<(ff_core::McId, ff_core::EventId)>> = Vec::new();
    for f in &frames {
        for v in together.process(f) {
            joint.push(v.metadata.entries().to_vec());
        }
    }
    let (tail, _, _) = together.finish();
    for v in tail {
        joint.push(v.metadata.entries().to_vec());
    }

    // Run each alone and merge.
    let mut solo: Vec<Vec<(ff_core::McId, ff_core::EventId)>> = vec![Vec::new(); frames.len()];
    for (i, s) in specs.iter().enumerate() {
        let mut cfg = PipelineConfig::new(res, 15.0);
        cfg.mobilenet = MobileNetConfig::with_width(0.25);
        cfg.archive = None;
        let mut ff = FilterForward::new(cfg);
        ff.deploy(s.clone());
        let mut verdicts = Vec::new();
        for f in &frames {
            verdicts.extend(ff.process(f));
        }
        let (tail, _, _) = ff.finish();
        verdicts.extend(tail);
        for v in verdicts {
            for &(_, ev) in v.metadata.entries() {
                solo[v.frame as usize].push((ff_core::McId(i), ev));
            }
        }
    }
    assert_eq!(joint.len(), solo.len());
    for (j, s) in joint.iter().zip(&solo) {
        assert_eq!(j, s, "shared vs isolated decisions diverge");
    }
}

/// Bandwidth accounting is conservative: stats equal the per-frame sums,
/// and dropping the threshold to impossible values uploads nothing.
#[test]
fn bandwidth_accounting_conserves_bytes() {
    let data = tiny_data(60);
    let res = data.resolution();
    let mut cfg = PipelineConfig::new(res, 15.0);
    cfg.mobilenet = MobileNetConfig::with_width(0.25);
    let mut ff = FilterForward::new(cfg);
    ff.deploy(McSpec {
        threshold: 0.0, // match everything
        smoothing: SmoothingConfig { n: 1, k: 1 },
        ..McSpec::full_frame("all", 3)
    });
    let mut sum = 0u64;
    let mut count = 0u64;
    for lf in data.open(Split::Test) {
        for v in ff.process(&lf.frame) {
            sum += v.uploaded_bytes as u64;
            count += 1;
        }
    }
    let (tail, stats, _) = ff.finish();
    for v in tail {
        sum += v.uploaded_bytes as u64;
        count += 1;
    }
    assert_eq!(count, 60);
    assert_eq!(stats.bytes_uploaded, sum);
    assert_eq!(stats.frames_uploaded, 60);
    assert!(
        stats.bytes_archived > 0,
        "archive should have recorded the stream"
    );
}

/// Event IDs are monotone per MC and frame metadata maps every positive
/// frame to exactly one event per MC.
#[test]
fn event_ids_monotone_through_pipeline() {
    let data = tiny_data(80);
    let res = data.resolution();
    let mut cfg = PipelineConfig::new(res, 15.0);
    cfg.mobilenet = MobileNetConfig::with_width(0.25);
    cfg.archive = None;
    let mut ff = FilterForward::new(cfg);
    let id = ff.deploy(McSpec {
        threshold: 0.5,
        smoothing: SmoothingConfig { n: 5, k: 2 },
        ..McSpec::localized("x", None, 5)
    });
    let mut verdicts = Vec::new();
    for lf in data.open(Split::Test) {
        verdicts.extend(ff.process(&lf.frame));
    }
    let (tail, _, _) = ff.finish();
    verdicts.extend(tail);

    let mut last_event: Option<u64> = None;
    for v in &verdicts {
        if let Some(ev) = v.metadata.event_for(id) {
            if let Some(prev) = last_event {
                assert!(ev.0 >= prev, "event ids must not decrease");
            }
            last_event = Some(ev.0);
        }
    }
    // Closed events' ranges nest within the stream.
    for v in &verdicts {
        for ev in &v.closed_events {
            assert!(ev.end.unwrap_or(0) <= 80);
            assert!(ev.start < ev.end.unwrap_or(u64::MAX));
        }
    }
}

/// Demand-fetch returns decodable context whose cost is GOP-aligned.
#[test]
fn demand_fetch_roundtrip() {
    let data = tiny_data(40);
    let res = data.resolution();
    let cfg = PipelineConfig::new(res, 15.0);
    let mut ff = FilterForward::new(PipelineConfig {
        mobilenet: MobileNetConfig::with_width(0.25),
        ..cfg
    });
    ff.deploy(McSpec {
        threshold: 1.1,
        smoothing: SmoothingConfig { n: 1, k: 1 },
        ..McSpec::full_frame("none", 2)
    });
    let originals: Vec<_> = data.open(Split::Test).map(|lf| lf.frame).collect();
    for f in &originals {
        let _ = ff.process(f);
    }
    let archive = ff.archive().expect("enabled by default");
    let (frames, bytes) = archive.demand_fetch(10, 20).expect("in range");
    assert_eq!(frames.len(), 10);
    assert!(bytes > 0);
    for (got, want) in frames.iter().zip(&originals[10..20]) {
        assert!(got.psnr(want) > 24.0);
    }
}
