//! Multi-stream determinism: per-stream verdicts from the pipelined
//! [`EdgeNode`] runtime must be **bit-for-bit identical** to the serial
//! `FilterForward::process` loop, for every streams × shard-layout
//! combination.
//!
//! This is the acceptance contract of the sharded runtime: sharding and
//! stage pipelining move *where* work executes (which workers, which
//! threads, decode overlapped or not) but never what is computed — tensor
//! kernels fix each output element's split and accumulation order up front,
//! and streams share no mutable inference state.

use ff_core::pipeline::{FilterForward, FrameVerdict, PipelineConfig};
use ff_core::runtime::{EdgeNode, EdgeNodeConfig, ShardLayout};
use ff_core::{McSpec, SmoothingConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::{Scene, SceneConfig};
use ff_video::{Resolution, SceneSource};

const RES: Resolution = Resolution::new(64, 32);
const FRAMES: u64 = 18;
const STREAM_SEEDS: [u64; 3] = [21, 22, 23];

fn scene_cfg(seed: u64) -> SceneConfig {
    SceneConfig {
        resolution: RES,
        seed,
        pedestrian_rate: 0.25,
        car_rate: 0.05,
        ..Default::default()
    }
}

fn pipeline_cfg() -> PipelineConfig {
    PipelineConfig {
        mobilenet: MobileNetConfig::with_width(0.25),
        resolution: RES,
        fps: 15.0,
        upload_bitrate_bps: 100_000.0,
        archive: None,
    }
}

/// Every stream gets a different MC mix so cross-stream state bleed (if the
/// runtime had any) could not cancel out.
fn deploy_stream_mcs(ff_deploy: &mut dyn FnMut(McSpec), stream: usize) {
    let seed = 100 + stream as u64;
    ff_deploy(McSpec::full_frame(format!("s{stream}-full"), seed));
    match stream % 3 {
        0 => ff_deploy(McSpec::windowed(format!("s{stream}-win"), None, seed + 50)),
        1 => ff_deploy(McSpec::localized(format!("s{stream}-loc"), None, seed + 50)),
        _ => ff_deploy(McSpec {
            threshold: 0.0,
            smoothing: SmoothingConfig { n: 3, k: 2 },
            ..McSpec::full_frame(format!("s{stream}-all"), seed + 50)
        }),
    }
}

/// The gold path: one serial `process` loop per stream.
fn serial_verdicts(stream: usize, seed: u64) -> Vec<FrameVerdict> {
    let mut ff = FilterForward::new(pipeline_cfg());
    deploy_stream_mcs(
        &mut |spec| {
            ff.deploy(spec);
        },
        stream,
    );
    let mut scene = Scene::new(scene_cfg(seed));
    let mut verdicts = Vec::new();
    for _ in 0..FRAMES {
        verdicts.extend(ff.process(&scene.step().0));
    }
    let (tail, stats, _) = ff.finish();
    verdicts.extend(tail);
    assert_eq!(stats.frames_out, FRAMES);
    verdicts
}

#[test]
fn per_stream_verdicts_identical_across_stream_and_shard_layouts() {
    let gold: Vec<Vec<FrameVerdict>> = STREAM_SEEDS
        .iter()
        .enumerate()
        .map(|(s, &seed)| serial_verdicts(s, seed))
        .collect();
    assert!(gold.iter().all(|g| g.len() == FRAMES as usize));

    // 1 stream / 1 shard up to N streams / N shards, plus skewed and
    // shared-shard layouts.
    let cases: Vec<(usize, ShardLayout)> = vec![
        (1, ShardLayout::single(1)),
        (1, ShardLayout::single(4)),
        (2, ShardLayout::even(2, 2)),
        (3, ShardLayout::even(3, 3)),
        (3, ShardLayout::single(2)), // all streams share one shard
        (3, ShardLayout::explicit(vec![4, 1])), // skewed widths, round-robin
        (3, ShardLayout::even(6, 2)),
    ];
    for (n_streams, layout) in cases {
        let label = format!("{n_streams} streams, {:?}", layout.widths());
        let mut node = EdgeNode::new(EdgeNodeConfig::new(layout));
        for (s, &seed) in STREAM_SEEDS.iter().enumerate().take(n_streams) {
            let src = Box::new(SceneSource::new(scene_cfg(seed), FRAMES));
            let id = node.add_stream(src, pipeline_cfg());
            deploy_stream_mcs(
                &mut |spec| {
                    node.deploy(id, spec);
                },
                s,
            );
        }
        let report = node.run();
        assert_eq!(report.streams.len(), n_streams, "{label}");
        for (s, sr) in report.streams.iter().enumerate() {
            assert_eq!(
                sr.verdicts, gold[s],
                "{label}: stream {s} diverged from the serial pipeline"
            );
        }
        // Node-level aggregates must be the sums of the per-stream views.
        let uploaded: u64 = report.streams.iter().map(|s| s.stats.bytes_uploaded).sum();
        assert_eq!(report.node.pipeline.bytes_uploaded, uploaded, "{label}");
        assert_eq!(
            report.node.pipeline.frames_out,
            n_streams as u64 * FRAMES,
            "{label}"
        );
    }
}

#[test]
fn node_uplink_accounting_is_deterministic_across_shard_layouts() {
    // The collector interleaves offers in fixed round order, so node-level
    // uplink stats must not depend on how streams raced.
    let mut baseline: Option<(u64, u64, u64)> = None;
    for layout in [
        ShardLayout::single(1),
        ShardLayout::even(3, 3),
        ShardLayout::single(3),
    ] {
        let mut cfg = EdgeNodeConfig::new(layout);
        cfg.uplink_capacity_bps = 40_000.0;
        cfg.uplink_queue_limit_bytes = Some(4_000);
        let mut node = EdgeNode::new(cfg);
        for (s, &seed) in STREAM_SEEDS.iter().enumerate() {
            let src = Box::new(SceneSource::new(scene_cfg(seed), FRAMES));
            let id = node.add_stream(src, pipeline_cfg());
            // Upload every frame to stress the shared link.
            node.deploy(
                id,
                McSpec {
                    threshold: 0.0,
                    smoothing: SmoothingConfig { n: 1, k: 1 },
                    ..McSpec::full_frame(format!("all{s}"), 7 + s as u64)
                },
            );
        }
        let report = node.run();
        let key = (
            report.node.pipeline.bytes_uploaded,
            report.node.uplink_dropped,
            report.node.uplink_backlog_bits as u64,
        );
        match &baseline {
            None => baseline = Some(key),
            Some(want) => assert_eq!(&key, want, "uplink accounting diverged across layouts"),
        }
    }
}
