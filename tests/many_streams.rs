//! The actor-runtime acceptance suite: 1000+ duty-cycled cameras
//! multiplexed onto one worker pool with **zero per-stream OS threads**
//! (`EdgeNode::run_controlled` schedules every stream as a
//! [`ff_core::task::StreamTask`]).
//!
//! * the **1000-camera fleet** replays bit-identically — verdicts, control
//!   trace, and the scheduler's wake log — across repeated runs and shard
//!   widths, and the wake log is exactly the one the duty-cycle schedules
//!   predict;
//! * a **property test** that wake order is a pure function of
//!   (seed, schedules, round), independent of the worker budget;
//! * the **fault machinery re-run through task restarts**: scripted stage
//!   panics and camera stalls on a duty-cycled fleet leave traces equal
//!   across widths and repeats, with the same restart accounting the
//!   thread-era suite pinned;
//! * **active-set admission**: duty-cycled fleets pack `1/duty_fraction`
//!   more cameras than always-on ones, with the typed
//!   [`AdmissionError::OverActiveSet`] refusal at the boundary.

use std::time::Duration;

use ff_core::control::{AdmissionError, AdmissionPolicy, ControlConfig};
use ff_core::faults::{FaultEventKind, FaultPlan};
use ff_core::node::EdgeNodeSpec;
use ff_core::pipeline::{FilterForward, FrameVerdict};
use ff_core::runtime::{ControlledReport, EdgeNode, EdgeNodeConfig, GatherBatch, ShardLayout};
use ff_core::{McSpec, PipelineConfig, SmoothingConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::SceneConfig;
use ff_video::{DutyCycleSource, FrameSource, Resolution, SceneSource};
use proptest::prelude::*;

const RES: Resolution = Resolution::new(32, 16);
const FLEET: usize = 1000;
const PERIOD: u64 = 20; // 1 active tick, 19 idle: a 5% duty cycle

fn scene_cfg(seed: u64) -> SceneConfig {
    SceneConfig {
        resolution: RES,
        seed,
        pedestrian_rate: 0.2,
        ..Default::default()
    }
}

fn pipeline() -> PipelineConfig {
    PipelineConfig {
        mobilenet: MobileNetConfig::with_width(0.25),
        resolution: RES,
        fps: 15.0,
        upload_bitrate_bps: 100_000.0,
        archive: None,
    }
}

fn mc(s: usize) -> McSpec {
    McSpec {
        threshold: 0.0,
        smoothing: SmoothingConfig { n: 1, k: 1 },
        ..McSpec::full_frame(format!("cam{s}"), 7 + s as u64)
    }
}

/// Policy-free control config: these tests pin the scheduler, not the
/// policies (which have their own suites).
fn quiet_ctl() -> ControlConfig {
    ControlConfig {
        tick_frames: 8,
        arrival_alpha: 0.5,
        batch: None,
        rebalance: None,
        degrade: None,
        watchdog: None,
    }
}

/// The 1000-camera fleet: every stream is a 5%-duty-cycled camera with one
/// frame to deliver, phased so ~50 wake per round. Shared backbone +
/// gather batching: the node builds a handful of extractors, not 1000.
fn fleet_run(budget: usize) -> ControlledReport {
    let mut cfg = EdgeNodeConfig::new(ShardLayout::single(budget))
        .with_gather_batch(GatherBatch {
            max_batch: 64,
            gather_wait: Duration::from_millis(1),
        })
        .with_shared_backbone();
    cfg.uplink_capacity_bps = 10_000_000.0;
    let mut node = EdgeNode::new(cfg);
    for s in 0..FLEET {
        let inner = SceneSource::new(scene_cfg(1000 + s as u64), 1);
        let src = Box::new(DutyCycleSource::with_phase(
            inner,
            1,
            PERIOD - 1,
            s as u64 % PERIOD,
        ));
        let id = node.add_stream(src, pipeline());
        node.deploy(id, mc(s));
    }
    node.run_controlled(quiet_ctl())
}

/// The serial gold for one fleet camera: a private pipeline fed the same
/// single frame.
fn serial_verdicts(s: usize) -> Vec<FrameVerdict> {
    let mut ff = FilterForward::new(pipeline());
    ff.deploy(mc(s));
    let mut src = SceneSource::new(scene_cfg(1000 + s as u64), 1);
    let frame = src.next_frame().expect("one frame");
    let mut verdicts = ff.process(&frame);
    let (tail, _, _) = ff.finish();
    verdicts.extend(tail);
    verdicts
}

/// The wake log the duty-cycle schedules predict: stream `s` (phase
/// `s % PERIOD`) produces its one frame at the first round `r` with
/// `(phase + r) % PERIOD == 0`, and the arrival scan visits streams in
/// index order within a round.
fn predicted_wakes() -> Vec<(u64, usize)> {
    let mut wakes = Vec::with_capacity(FLEET);
    for r in 0..PERIOD {
        for s in 0..FLEET {
            if (s as u64 % PERIOD + r).is_multiple_of(PERIOD) {
                wakes.push((r, s));
            }
        }
    }
    wakes
}

#[test]
fn thousand_camera_fleet_is_bit_replayable_across_runs_and_widths() {
    let gold = fleet_run(1);
    assert_eq!(gold.streams.len(), FLEET);
    assert_eq!(gold.node.pipeline.frames_out, FLEET as u64);
    for (s, sr) in gold.streams.iter().enumerate() {
        assert_eq!(sr.verdicts.len(), 1, "stream {s} must deliver its frame");
    }

    // The wake log is exactly the schedule-predicted one: ~50 cameras per
    // round for 20 rounds, in (round, stream) order.
    assert_eq!(gold.wakes, predicted_wakes());

    // Spot-check the gather path against private-pipeline serial golds at
    // both ends of the fleet.
    for s in [0usize, FLEET - 1] {
        assert_eq!(
            gold.streams[s].verdicts,
            serial_verdicts(s),
            "stream {s} diverged from its serial pipeline"
        );
    }

    // Bit-replayable: a repeat run and two more shard widths produce the
    // same verdicts, the same control trace, and the same wake log.
    for (label, report) in [
        ("rerun @1", fleet_run(1)),
        ("width 2", fleet_run(2)),
        ("width 3", fleet_run(3)),
    ] {
        assert_eq!(gold.wakes, report.wakes, "{label}: wake log diverged");
        assert_eq!(gold.trace, report.trace, "{label}: control trace diverged");
        for (s, (a, b)) in gold.streams.iter().zip(&report.streams).enumerate() {
            assert_eq!(a.verdicts, b.verdicts, "{label}: stream {s} diverged");
        }
    }
}

/// One small duty-cycled fleet run for the wake-order property: stream `s`
/// decodes its schedule from `raw[s]`.
fn small_fleet_run(budget: usize, raw: &[u64]) -> ControlledReport {
    let mut cfg = EdgeNodeConfig::new(ShardLayout::single(budget))
        .with_gather_batch(GatherBatch {
            max_batch: 8,
            gather_wait: Duration::from_millis(1),
        })
        .with_shared_backbone();
    cfg.uplink_capacity_bps = 10_000_000.0;
    let mut node = EdgeNode::new(cfg);
    for (s, &r) in raw.iter().enumerate() {
        let (idle, phase, frames) = decode_schedule(r);
        let inner = SceneSource::new(scene_cfg(50 + s as u64), frames);
        let src = Box::new(DutyCycleSource::with_phase(inner, 1, idle, phase));
        let id = node.add_stream(src, pipeline());
        node.deploy(id, mc(s));
    }
    node.run_controlled(quiet_ctl())
}

/// (idle ticks, phase, frames) from one generated u64.
fn decode_schedule(raw: u64) -> (u64, u64, u64) {
    let idle = raw % 4;
    let phase = (raw / 4) % (1 + idle);
    let frames = 1 + (raw / 16) % 3;
    (idle, phase, frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Wake order is a pure function of (seed, schedules, round): the log
    /// is identical across worker budgets and repeats, and each stream's
    /// first wake lands exactly where its duty-cycle schedule puts its
    /// first frame.
    #[test]
    fn wake_order_is_a_pure_function_of_schedules(
        raw in proptest::collection::vec(0u64..1000, 1..5),
    ) {
        let gold = small_fleet_run(1, &raw);
        for budget in [2usize, 3, 1] {
            let again = small_fleet_run(budget, &raw);
            prop_assert_eq!(&gold.wakes, &again.wakes);
            prop_assert_eq!(&gold.trace, &again.trace);
        }
        for (s, &r) in raw.iter().enumerate() {
            let (idle, phase, _frames) = decode_schedule(r);
            let period = 1 + idle;
            let predicted = (period - phase) % period;
            let first = gold.wakes.iter().find(|&&(_, ws)| ws == s).map(|&(wr, _)| wr);
            prop_assert_eq!(first, Some(predicted));
        }
    }
}

/// A duty-cycled fleet under scripted faults, run through task restarts:
/// stream 1 stalls mid-run, stream 2's inference stage panics on its 6th
/// served frame.
fn chaos_fleet_run(budget: usize) -> ControlledReport {
    let mut cfg = EdgeNodeConfig::new(ShardLayout::single(budget))
        .with_gather_batch(GatherBatch {
            max_batch: 8,
            gather_wait: Duration::from_millis(1),
        })
        .with_shared_backbone()
        .with_faults(FaultPlan::new().camera_stall(1, 4, 6).stage_panic(2, 5));
    cfg.uplink_capacity_bps = 1_000_000.0;
    let mut node = EdgeNode::new(cfg);
    for s in 0..4usize {
        let inner = SceneSource::new(scene_cfg(80 + s as u64), 8);
        let src = Box::new(DutyCycleSource::with_phase(inner, 1, 1, s as u64 % 2));
        let id = node.add_stream(src, pipeline());
        node.deploy(id, mc(s));
    }
    node.run_controlled(quiet_ctl())
}

#[test]
fn fault_recovery_through_task_restarts_replays_bit_for_bit() {
    let gold = chaos_fleet_run(1);
    let faults = gold.faults.as_ref().expect("plan ⇒ faults report");

    // The panic fired, the stage restarted as a task restart (no thread to
    // respawn), and the breaker accounting matches the thread-era shape:
    // one restart and one lost frame on stream 2, nothing anywhere else.
    let kinds: Vec<_> = faults.trace.events.iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&FaultEventKind::StagePanic {
            stream: 2,
            frame: 5
        }),
        "{}",
        faults.trace
    );
    assert!(
        kinds.contains(&FaultEventKind::StageRestarted { stream: 2 }),
        "{}",
        faults.trace
    );
    assert_eq!(faults.restarts, vec![0, 0, 1, 0]);
    assert_eq!(faults.frames_lost, vec![0, 0, 1, 0]);

    // A stall preserves content; a panic costs exactly the served frame.
    for (s, want) in [(0usize, 8usize), (1, 8), (2, 7), (3, 8)] {
        assert_eq!(gold.streams[s].verdicts.len(), want, "stream {s}");
    }

    // The whole history — fault trace, control trace, wake log, verdicts —
    // replays bit-for-bit across repeats and shard widths.
    for (label, report) in [
        ("rerun @1", chaos_fleet_run(1)),
        ("width 2", chaos_fleet_run(2)),
        ("width 3", chaos_fleet_run(3)),
    ] {
        assert_eq!(gold.faults, report.faults, "{label}: faults diverged");
        assert_eq!(gold.trace, report.trace, "{label}: trace diverged");
        assert_eq!(gold.wakes, report.wakes, "{label}: wake log diverged");
        for (s, (a, b)) in gold.streams.iter().zip(&report.streams).enumerate() {
            assert_eq!(a.verdicts, b.verdicts, "{label}: stream {s} diverged");
        }
    }
}

#[test]
fn active_set_admission_packs_duty_cycled_fleets() {
    let admitted = AdmissionPolicy::new(EdgeNodeSpec::paper_testbed());
    let node_cfg = || {
        EdgeNodeConfig::new(ShardLayout::single(1)).with_admission(admitted)
        // budget 1 × 4 streams/worker = 4 active streams
    };

    // Always-on cameras: the legacy whole-stream cap, with the legacy
    // refusal, bit-for-bit.
    let mut node = EdgeNode::new(node_cfg());
    for s in 0..4 {
        node.add_stream(
            Box::new(SceneSource::new(scene_cfg(s as u64), 4)),
            pipeline(),
        );
    }
    let err = node
        .try_add_stream(Box::new(SceneSource::new(scene_cfg(9), 4)), pipeline())
        .expect_err("the 5th always-on camera must be refused");
    assert_eq!(
        err,
        AdmissionError::OverShardBudget {
            streams: 4,
            budget_threads: 1,
            max_streams: 4,
        }
    );

    // 25%-duty-cycled cameras: the same budget admits 4× as many — 16
    // quarter-streams fill the 4-stream active set exactly — and the 17th
    // is refused with the typed active-set error.
    let mut node = EdgeNode::new(node_cfg());
    for s in 0..16 {
        let inner = SceneSource::new(scene_cfg(s as u64), 4);
        node.add_stream(Box::new(DutyCycleSource::new(inner, 1, 3)), pipeline());
    }
    let inner = SceneSource::new(scene_cfg(99), 4);
    let err = node
        .try_add_stream(Box::new(DutyCycleSource::new(inner, 1, 3)), pipeline())
        .expect_err("the 17th quarter-duty camera must be refused");
    assert_eq!(
        err,
        AdmissionError::OverActiveSet {
            active_millistreams: 4000,
            incoming_millistreams: 250,
            budget_millistreams: 4000,
        }
    );

    // Once the fleet is mixed, an always-on refusal is an active-set
    // refusal too (the whole-stream cap no longer tells the story).
    let err = node
        .try_add_stream(Box::new(SceneSource::new(scene_cfg(98), 4)), pipeline())
        .expect_err("a full camera cannot fit a full active set");
    assert_eq!(
        err,
        AdmissionError::OverActiveSet {
            active_millistreams: 4000,
            incoming_millistreams: 1000,
            budget_millistreams: 4000,
        }
    );
}
