//! Cross-crate integration: the Figure-4 mechanism at test scale — heavy
//! whole-stream compression degrades filter accuracy while edge filtering
//! on originals does not; the uplink model confirms which operating points
//! are sustainable.

use ff_core::cloud::TranscodedStream;
use ff_core::evaluate::{mc_probs, score_probs};
use ff_core::train::{train_mc, TrainConfig};
use ff_core::uplink::Uplink;
use ff_core::{FeatureExtractor, McSpec};
use ff_data::{DatasetSpec, Split};
use ff_models::MobileNetConfig;

/// Train once on Jackson at test scale, then compare original-stream
/// probabilities against heavily-transcoded ones. This pins the premise of
/// Figure 4: quantization noise must hurt the classifier.
#[test]
fn heavy_compression_degrades_filter_scores() {
    // Seed 43: both splits carry several pedestrian events at this length
    // (arbitrary seeds can leave the train split nearly event-free).
    let data = DatasetSpec::jackson_like(20, 700, 43);
    let spec = McSpec::localized("ped", data.task.crop, 7);
    let mut extractor =
        FeatureExtractor::new(MobileNetConfig::with_width(0.25), vec![spec.tap.clone()]);
    let cal: Vec<_> = data
        .open(Split::Train)
        .take(6)
        .map(|lf| lf.frame.to_tensor())
        .collect();
    extractor.calibrate(&cal);
    let trained = train_mc(
        &mut extractor,
        &spec,
        &data,
        &TrainConfig {
            epochs: 4,
            max_cached: 600,
            ..Default::default()
        },
    );
    let mut model = trained.model;

    // Edge (originals).
    let test = data.open(Split::Test).map(|lf| (lf.frame, lf.label));
    let (probs_edge, labels) = mc_probs(&mut extractor, &spec, &mut model, test);
    let edge = score_probs(&probs_edge, trained.threshold, spec.smoothing, &labels);

    // Cloud (brutal compression: ~6 kb/s at 96×54).
    let res = data.resolution();
    let src = data.open(Split::Test).map(|lf| (lf.frame, lf.label));
    let ts = TranscodedStream::new(src, res, data.scene.fps, 6_000.0);
    let (probs_cloud, labels_cloud) = mc_probs(&mut extractor, &spec, &mut model, ts);
    let cloud = score_probs(
        &probs_cloud,
        trained.threshold,
        spec.smoothing,
        &labels_cloud,
    );

    assert_eq!(labels, labels_cloud);
    assert!(
        edge.f1 > cloud.f1 + 0.05,
        "compression should hurt: edge {:.3} vs cloud {:.3}",
        edge.f1,
        cloud.f1
    );
}

/// The uplink model: FilterForward's filtered stream fits a link that the
/// full stream overwhelms.
#[test]
fn filtered_stream_fits_constrained_uplink() {
    use ff_video::codec::{Encoder, EncoderConfig};
    let data = DatasetSpec::jackson_like(20, 200, 11);
    let res = data.resolution();
    let fps = data.scene.fps;

    // Full stream at archive quality.
    let mut enc = Encoder::new(EncoderConfig::with_qp(res, fps, 22));
    let sizes: Vec<usize> = data
        .open(Split::Test)
        .map(|lf| enc.encode(&lf.frame).data.len())
        .collect();
    let full_mean_bps = sizes.iter().sum::<usize>() as f64 * 8.0 * fps / sizes.len() as f64;

    // A link provisioned at a third of the full-stream rate.
    let capacity = full_mean_bps / 3.0;
    let mut full_link = Uplink::new(capacity, fps);
    for &s in &sizes {
        full_link.offer(s);
    }
    assert!(
        full_link.utilization() > 1.0,
        "full stream must overload the link"
    );
    assert!(full_link.backlog_bits() > 0.0);

    // Filtering to 20% of frames (the Jackson positive rate) fits easily.
    let mut filtered_link = Uplink::new(capacity, fps);
    for (i, &s) in sizes.iter().enumerate() {
        filtered_link.offer(if i % 5 == 0 { s } else { 0 });
    }
    assert!(
        filtered_link.utilization() < 0.9,
        "filtered stream should fit: {:.2}",
        filtered_link.utilization()
    );
}

/// Dataset → eval glue: ground-truth events from ff-data score 1.0 against
/// themselves through the ff-eval pipeline.
#[test]
fn ground_truth_scores_perfectly_against_itself() {
    let data = DatasetSpec::roadway_like(20, 400, 3);
    let labels = data.labels(Split::Test);
    let score = ff_eval::score_labels(&labels, &labels, ff_eval::RecallWeights::default());
    assert!((score.f1 - 1.0).abs() < 1e-9);
    let events = ff_data::events_from_labels(&labels);
    let total: usize = events.iter().map(|e| e.len()).sum();
    assert_eq!(total, labels.iter().filter(|&&l| l).count());
}
