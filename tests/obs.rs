//! Integration tests for the observability layer (`ff_obs` wired through
//! `run_controlled` and the fleet):
//!
//! * the chaos-node Chrome trace and deterministic metrics snapshot must
//!   be **byte-identical** across repeated runs and across shard widths
//!   {1, 2, 3} — spans are keyed by virtual rounds and the deterministic
//!   exports exclude every wall-clock cell;
//! * the registry must agree with the report it mirrors (one cell backs
//!   both), for the node and for the hub under fleet chaos;
//! * wall-clock cells appear only in the `_with_volatile` exports.

use std::time::Duration;

use ff_core::control::ControlConfig;
use ff_core::faults::FaultPlan;
use ff_core::fleet::{Fleet, FleetConfig};
use ff_core::obs::Registry;
use ff_core::runtime::{
    ControlledReport, EdgeNode, EdgeNodeConfig, GatherBatch, ObsConfig, ShardLayout,
};
use ff_core::{McSpec, PipelineConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::SceneConfig;
use ff_video::{Resolution, SceneSource};

const RES: Resolution = Resolution::new(64, 32);
const FRAMES: u64 = 24;

/// A chaos-style controlled run — outage, stall, panic — with obs on.
fn chaos_run(width: usize) -> ControlledReport {
    let plan = FaultPlan::new()
        .uplink_outage(8, 6)
        .camera_stall(1, 4, 6)
        .stage_panic(2, 5);
    let mut cfg = EdgeNodeConfig::new(ShardLayout::single(width))
        .with_faults(plan)
        .with_obs(ObsConfig::default());
    cfg.gather_batch = Some(GatherBatch {
        max_batch: 4,
        gather_wait: Duration::from_millis(1),
    });
    cfg.uplink_capacity_bps = 90_000.0;
    let mut node = EdgeNode::new(cfg);
    for s in 0..3u64 {
        let scene = SceneConfig {
            resolution: RES,
            seed: 41 + s,
            pedestrian_rate: 0.2,
            ..Default::default()
        };
        let mut pipeline = PipelineConfig::new(RES, 15.0);
        pipeline.mobilenet = MobileNetConfig::with_width(0.25);
        pipeline.archive = None;
        let id = node.add_stream(Box::new(SceneSource::new(scene, FRAMES)), pipeline);
        node.deploy(
            id,
            McSpec {
                threshold: 0.0,
                ..McSpec::full_frame(format!("cam{s}/all"), 41 + s)
            },
        );
    }
    node.run_controlled(ControlConfig {
        tick_frames: 8,
        arrival_alpha: 0.5,
        ..ControlConfig::default()
    })
}

/// The deterministic export triple for one run.
fn exports(width: usize) -> (String, String, String) {
    let report = chaos_run(width);
    let obs = report.obs.expect("obs enabled");
    assert!(obs.emitted_spans > 0, "the chaos run must emit spans");
    assert_eq!(obs.dropped_spans, 0, "default ring must hold this run");
    (
        obs.chrome_trace(),
        obs.metrics.to_json(),
        obs.metrics.to_prometheus(),
    )
}

#[test]
fn chaos_trace_and_metrics_are_byte_identical_across_runs_and_widths() {
    let (trace, json, prom) = exports(1);
    assert!(trace.contains("task:wake"));
    assert!(trace.contains("uplink:link_down"));
    assert!(trace.contains("task:panic"));
    for width in [1usize, 2, 3] {
        for repeat in 0..2 {
            let (t, j, p) = exports(width);
            assert_eq!(trace, t, "trace differs (width {width}, repeat {repeat})");
            assert_eq!(
                json, j,
                "metrics json differs (width {width}, repeat {repeat})"
            );
            assert_eq!(
                prom, p,
                "prometheus differs (width {width}, repeat {repeat})"
            );
        }
    }
}

#[test]
fn wall_cells_appear_only_in_volatile_exports() {
    let report = chaos_run(2);
    let obs = report.obs.expect("obs enabled");
    for text in [obs.metrics.to_json(), obs.metrics.to_prometheus()] {
        assert!(
            !text.contains("wall"),
            "deterministic export leaked wall cells"
        );
        assert!(
            !text.contains("busy_nanos"),
            "deterministic export leaked shard timers"
        );
    }
    let full = obs.metrics.to_json_with_volatile();
    assert!(full.contains("\"subsystem\": \"wall\""));
    assert!(full.contains("busy_nanos"));
}

#[test]
fn registry_and_report_read_the_same_cells() {
    let report = chaos_run(2);
    let obs = report.obs.as_ref().expect("obs enabled");
    let get = |subsystem: &str, name: &str| -> u64 {
        obs.metrics
            .entries
            .iter()
            .find(|e| e.key.subsystem == subsystem && e.key.name == name)
            .map(|e| match e.value {
                ff_core::obs::MetricValue::Counter(v) => v,
                ff_core::obs::MetricValue::Gauge(v) => v as u64,
                ff_core::obs::MetricValue::Histogram(_) => panic!("unexpected histogram"),
            })
            .expect("metric registered")
    };
    assert_eq!(
        get("control", "ticks"),
        report.telemetry.len() as u64,
        "the ticks cell and the telemetry log count the same events"
    );
    let faults = report.faults.as_ref().expect("plan scheduled");
    let restarts: u64 = faults.restarts.iter().map(|&r| r as u64).sum();
    assert_eq!(get("faults", "restarts"), restarts);
    assert!(
        get("node", "rounds") >= FRAMES,
        "rounds cell tracks the loop"
    );
    assert!(get("uplink", "offered_bits") > 0, "uplink cells registered");
    assert!(
        get("shard", "jobs") > 0,
        "shard jobs counter bound under obs"
    );
}

#[test]
fn fleet_hub_cells_match_report_and_spans_replay() {
    let cfg = FleetConfig {
        nodes: 3,
        rounds: 40,
        seed: 9,
        event_rate: 0.3,
        ..FleetConfig::default()
    };
    let run = |with_obs: bool| {
        let mut fleet = Fleet::new(cfg.clone()).expect("valid config");
        let registry = Registry::new();
        if with_obs {
            fleet.enable_obs(&registry, 1 << 14);
        }
        let (report, spans) = fleet.run_traced();
        (report, spans, registry.snapshot())
    };
    let (report, spans, snap) = run(true);
    let (plain, no_spans, _) = run(false);
    assert_eq!(report, plain, "obs must not perturb the fleet outcome");
    assert!(no_spans.is_empty(), "no spans without enable_obs");
    assert!(!spans.is_empty(), "hub ingest must emit spans");
    let hub_accepted = snap
        .entries
        .iter()
        .find(|e| e.key.subsystem == "hub" && e.key.name == "accepted")
        .expect("hub cell registered");
    assert_eq!(
        hub_accepted.value,
        ff_core::obs::MetricValue::Counter(report.accepted),
        "hub accepted cell and report read the same state"
    );
    let (_, spans2, snap2) = run(true);
    assert_eq!(spans, spans2, "hub spans replay bit-identically");
    assert_eq!(snap.to_json(), snap2.to_json(), "hub snapshot replays");
}
