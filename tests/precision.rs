//! Reduced-precision (f16 / int8 / whole-int8) weight-panel integration
//! tests: packed sizes, per-layer numerics at bench geometry, end-to-end
//! verdict agreement, and bit-exact determinism of the quantized paths
//! across thread counts and shard layouts.

use ff_core::pipeline::{FilterForward, PipelineConfig};
use ff_core::runtime::{EdgeNode, EdgeNodeConfig, ShardLayout};
use ff_core::{FeatureExtractor, McSpec};
use ff_data::{DatasetSpec, Split};
use ff_models::{MobileNetConfig, LAYER_FULL_FRAME_TAP, LAYER_LOCALIZED_TAP};
use ff_tensor::{
    i8i8_padded_k, packed_panels_f16_len, packed_panels_i8_len, packed_panels_i8i8_len,
    packed_panels_len, Precision,
};
use ff_video::{Resolution, SceneSource};

/// The bench geometry (scale 16: 120×67, the single-stream harness size).
const RES: Resolution = Resolution::new(120, 67);

fn bench_frame() -> ff_tensor::Tensor {
    let cfg = ff_video::scene::SceneConfig {
        resolution: RES,
        seed: 7,
        pedestrian_rate: 0.2,
        ..Default::default()
    };
    let mut scene = ff_video::scene::Scene::new(cfg);
    scene.step().0.to_tensor()
}

/// MobileNet weight-panel geometries at the bench width (α = 0.5): the
/// pointwise convs that dominate the streamed weight set.
const PANEL_GEOMETRIES: [(usize, usize); 4] = [(27, 16), (16, 32), (128, 256), (256, 512)];

#[test]
fn f16_packed_panel_bytes_exactly_halved() {
    for (k, n) in PANEL_GEOMETRIES {
        // Element counts match the f32 layout...
        assert_eq!(packed_panels_f16_len(k, n), packed_panels_len(k, n));
        assert_eq!(packed_panels_i8_len(k, n), packed_panels_len(k, n));
        // ...so the byte shrink is exactly 2× (f16) and 4× (int8 panels).
        assert_eq!(
            Precision::F16.packed_panel_bytes(k, n) * 2,
            Precision::F32.packed_panel_bytes(k, n),
            "{k}x{n}"
        );
        assert_eq!(
            Precision::Int8.packed_panel_bytes(k, n) * 4,
            Precision::F32.packed_panel_bytes(k, n),
            "{k}x{n}"
        );
    }
}

#[test]
fn f16_per_layer_outputs_within_relative_tolerance_at_bench_geometry() {
    let frame = bench_frame();
    let mut f32net = MobileNetConfig::with_width(0.5).build();
    let mut f16net = MobileNetConfig::with_width(0.5)
        .with_precision(Precision::F16)
        .build();
    let names: Vec<String> = f32net.layer_names().map(str::to_string).collect();
    let taps: Vec<&str> = names.iter().map(String::as_str).collect();
    let want = f32net.forward_taps(&frame, &taps);
    let got = f16net.forward_taps(&frame, &taps);
    for ((name, a), b) in names.iter().zip(&got).zip(&want) {
        assert_eq!(a.dims(), b.dims(), "{name}");
        let scale = b
            .data()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-3);
        let worst = a
            .data()
            .iter()
            .zip(b.data())
            .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()));
        assert!(
            worst <= 1e-2 * scale,
            "{name}: worst abs err {worst:.3e} vs 1e-2 * {scale:.3e}"
        );
    }
}

#[test]
fn f16_extraction_is_bit_identical_across_thread_counts() {
    let frame = bench_frame();
    let cfg = MobileNetConfig::with_width(0.5).with_precision(Precision::F16);
    let taps = vec![
        LAYER_LOCALIZED_TAP.to_string(),
        LAYER_FULL_FRAME_TAP.to_string(),
    ];
    ff_tensor::parallel::set_threads(1);
    let mut gold_ex = FeatureExtractor::new(cfg, taps.clone());
    let gold = gold_ex.extract(&frame).clone();
    for t in [2usize, 3, 4] {
        ff_tensor::parallel::set_threads(t);
        let mut ex = FeatureExtractor::new(cfg, taps.clone());
        let maps = ex.extract(&frame);
        for tap in [LAYER_LOCALIZED_TAP, LAYER_FULL_FRAME_TAP] {
            assert_eq!(maps.get(tap), gold.get(tap), "threads {t} tap {tap}");
        }
    }
    ff_tensor::parallel::set_threads(0);
}

/// The f16 node must reproduce itself bit-for-bit across shard layouts and
/// execution modes (quantization happens once, at pack time; execution
/// geometry never changes a bit).
#[test]
fn f16_node_is_bit_identical_across_shard_layouts() {
    let res = Resolution::new(64, 32);
    let run = |layout: ShardLayout| {
        let cfg = EdgeNodeConfig::new(layout).with_precision(Precision::F16);
        let mut node = EdgeNode::new(cfg);
        for seed in [31, 32] {
            let scene = ff_video::scene::SceneConfig {
                resolution: res,
                seed,
                pedestrian_rate: 0.2,
                ..Default::default()
            };
            let src = Box::new(SceneSource::new(scene, 8));
            let mut p = PipelineConfig::new(res, 15.0);
            p.mobilenet = MobileNetConfig::with_width(0.25);
            p.archive = None;
            let id = node.add_stream(src, p);
            node.deploy(id, McSpec::full_frame(format!("mc{seed}"), seed));
        }
        node.run()
    };
    let gold = run(ShardLayout::single(1));
    for layout in [
        ShardLayout::single(2),
        ShardLayout::even(2, 2),
        ShardLayout::explicit(vec![2, 1]),
    ] {
        let report = run(layout.clone());
        for (a, b) in gold.streams.iter().zip(&report.streams) {
            assert_eq!(a.verdicts, b.verdicts, "{layout:?} stream {:?}", a.id);
        }
    }
}

#[test]
fn f16_verdicts_agree_with_f32_on_integration_scenes() {
    // The integration-test scene set (jackson-like, seed 43 — the seed the
    // end-to-end ML tests standardize on).
    let data = DatasetSpec::jackson_like(20, 60, 43);
    let res = data.resolution();
    let frames: Vec<_> = data.open(Split::Test).map(|lf| lf.frame).collect();
    let run = |precision: Precision| {
        let mut cfg = PipelineConfig::new(res, 15.0);
        cfg.mobilenet = MobileNetConfig::with_width(0.25).with_precision(precision);
        cfg.archive = None;
        let mut ff = FilterForward::new(cfg);
        ff.deploy(McSpec::full_frame("ped", 5));
        ff.deploy(McSpec::localized("loc", data.task.crop, 6));
        let mut verdicts = Vec::new();
        for f in &frames {
            verdicts.extend(ff.process(f));
        }
        let (tail, ..) = ff.finish();
        verdicts.extend(tail);
        verdicts
    };
    let gold = run(Precision::F32);
    let f16 = run(Precision::F16);
    assert_eq!(gold.len(), f16.len());
    for (a, b) in gold.iter().zip(&f16) {
        assert_eq!(a.frame, b.frame);
        assert_eq!(
            a.matched(),
            b.matched(),
            "frame {}: f32 and f16 verdicts disagree",
            a.frame
        );
    }
}

// ---------------------------------------------------------------------------
// Whole-int8 (Int8Act): activations quantized to u8 per frame, weights to s8
// per K-group, accumulation in i32 — the deepest precision rung.
// ---------------------------------------------------------------------------

#[test]
fn int8act_packed_panel_bytes_quartered_up_to_quad_padding() {
    for (k, n) in PANEL_GEOMETRIES {
        // The i8i8 layout pads K to a multiple of 4 for the quad-dot
        // kernel, so the code bytes are exactly f32/4 scaled by kp/k.
        let cols = packed_panels_len(k, n) / k;
        assert_eq!(
            packed_panels_i8i8_len(k, n),
            cols * i8i8_padded_k(k),
            "{k}x{n}"
        );
        assert_eq!(
            Precision::Int8Act.packed_panel_bytes(k, n) * 4,
            cols * i8i8_padded_k(k) * 4,
            "{k}x{n}"
        );
        // For quad-aligned K (every geometry here except 27) the shrink is
        // an exact 4×.
        if k % 4 == 0 {
            assert_eq!(
                Precision::Int8Act.packed_panel_bytes(k, n) * 4,
                Precision::F32.packed_panel_bytes(k, n),
                "{k}x{n}"
            );
        }
    }
}

#[test]
fn int8act_per_layer_outputs_within_relative_tolerance_at_bench_geometry() {
    let frame = bench_frame();
    let mut f32net = MobileNetConfig::with_width(0.5).build();
    let mut qnet = MobileNetConfig::with_width(0.5)
        .with_precision(Precision::Int8Act)
        .build();
    let names: Vec<String> = f32net.layer_names().map(str::to_string).collect();
    let taps: Vec<&str> = names.iter().map(String::as_str).collect();
    let want = f32net.forward_taps(&frame, &taps);
    let got = qnet.forward_taps(&frame, &taps);
    for ((name, a), b) in names.iter().zip(&got).zip(&want) {
        assert_eq!(a.dims(), b.dims(), "{name}");
        let scale = b
            .data()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-3);
        let worst = a
            .data()
            .iter()
            .zip(b.data())
            .fold(0.0f32, |m, (&x, &y)| m.max((x - y).abs()));
        // Both operands are quantized (u8 activations × s8 weights), so the
        // band is an order of magnitude wider than the weight-only rungs'
        // 1e-2 — but still bounded relative to each layer's dynamic range.
        assert!(
            worst <= 0.15 * scale,
            "{name}: worst abs err {worst:.3e} vs 0.15 * {scale:.3e}"
        );
    }
}

#[test]
fn int8act_extraction_is_bit_identical_across_thread_counts() {
    let frame = bench_frame();
    let cfg = MobileNetConfig::with_width(0.5).with_precision(Precision::Int8Act);
    let taps = vec![
        LAYER_LOCALIZED_TAP.to_string(),
        LAYER_FULL_FRAME_TAP.to_string(),
    ];
    ff_tensor::parallel::set_threads(1);
    let mut gold_ex = FeatureExtractor::new(cfg, taps.clone());
    let gold = gold_ex.extract(&frame).clone();
    for t in [2usize, 3, 4] {
        ff_tensor::parallel::set_threads(t);
        let mut ex = FeatureExtractor::new(cfg, taps.clone());
        let maps = ex.extract(&frame);
        for tap in [LAYER_LOCALIZED_TAP, LAYER_FULL_FRAME_TAP] {
            assert_eq!(maps.get(tap), gold.get(tap), "threads {t} tap {tap}");
        }
    }
    ff_tensor::parallel::set_threads(0);
}

/// The whole-int8 node must reproduce itself bit-for-bit across shard
/// layouts: activation quantization is per frame (independent of batch or
/// shard grouping) and the integer kernels are exact, so execution geometry
/// never changes a bit.
#[test]
fn int8act_node_is_bit_identical_across_shard_layouts() {
    let res = Resolution::new(64, 32);
    let run = |layout: ShardLayout| {
        let cfg = EdgeNodeConfig::new(layout).with_precision(Precision::Int8Act);
        let mut node = EdgeNode::new(cfg);
        for seed in [31, 32] {
            let scene = ff_video::scene::SceneConfig {
                resolution: res,
                seed,
                pedestrian_rate: 0.2,
                ..Default::default()
            };
            let src = Box::new(SceneSource::new(scene, 8));
            let mut p = PipelineConfig::new(res, 15.0);
            p.mobilenet = MobileNetConfig::with_width(0.25);
            p.archive = None;
            let id = node.add_stream(src, p);
            node.deploy(id, McSpec::full_frame(format!("mc{seed}"), seed));
        }
        node.run()
    };
    let gold = run(ShardLayout::single(1));
    for layout in [
        ShardLayout::single(2),
        ShardLayout::even(2, 2),
        ShardLayout::explicit(vec![2, 1]),
    ] {
        let report = run(layout.clone());
        for (a, b) in gold.streams.iter().zip(&report.streams) {
            assert_eq!(a.verdicts, b.verdicts, "{layout:?} stream {:?}", a.id);
        }
    }
}

#[test]
fn int8act_verdicts_agree_with_f32_on_integration_scenes() {
    // Same scene set as the f16 test above.
    let data = DatasetSpec::jackson_like(20, 60, 43);
    let res = data.resolution();
    let frames: Vec<_> = data.open(Split::Test).map(|lf| lf.frame).collect();
    let run = |precision: Precision| {
        let mut cfg = PipelineConfig::new(res, 15.0);
        cfg.mobilenet = MobileNetConfig::with_width(0.25).with_precision(precision);
        cfg.archive = None;
        let mut ff = FilterForward::new(cfg);
        ff.deploy(McSpec::full_frame("ped", 5));
        ff.deploy(McSpec::localized("loc", data.task.crop, 6));
        let mut verdicts = Vec::new();
        for f in &frames {
            verdicts.extend(ff.process(f));
        }
        let (tail, ..) = ff.finish();
        verdicts.extend(tail);
        verdicts
    };
    let gold = run(Precision::F32);
    let q = run(Precision::Int8Act);
    assert_eq!(gold.len(), q.len());
    let disagreements: Vec<u64> = gold
        .iter()
        .zip(&q)
        .filter(|(a, b)| {
            assert_eq!(a.frame, b.frame);
            a.matched() != b.matched()
        })
        .map(|(a, _)| a.frame)
        .collect();
    // Whole-int8 perturbs MC scores more than the weight-only rungs, but on
    // these scenes the smoothed verdicts still match f32 exactly. If a
    // future kernel change moves a borderline frame, this pin should become
    // an agreement-rate bound with the outliers documented.
    assert!(
        disagreements.is_empty(),
        "{} / {} verdicts disagree with f32 (frames {:?})",
        disagreements.len(),
        gold.len(),
        disagreements
    );
}
