//! Bit-for-bit determinism across thread counts.
//!
//! The paper's figures are only reproducible if the numerics are: this
//! suite pins that every tensor kernel — and a full MobileNet forward built
//! from them — produces *identical bits* for `set_threads(1..=8)`. The
//! persistent pool claims chunks dynamically, so this is a real property of
//! the kernel design (fixed contiguous splits + fixed per-element
//! accumulation order), not an accident of scheduling.
//!
//! Thread-count state is process-global, so every case lives in one `#[test]`
//! to avoid cross-test interference under the parallel test runner.

use ff_models::{MobileNetConfig, LAYER_FULL_FRAME_TAP, LAYER_LOCALIZED_TAP};
use ff_nn::Phase;
use ff_tensor::parallel::set_threads;
use ff_tensor::{im2col, matmul, Conv2dGeometry, Padding, Tensor};
use rand::{Rng, SeedableRng};

fn random(dims: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n: usize = dims.iter().product();
    Tensor::from_vec(dims, (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

#[test]
fn kernels_and_mobilenet_bit_identical_across_1_to_8_threads() {
    // --- GEMM, large enough to engage the pool and the packed path.
    let a = random(vec![160, 57], 1);
    let b = random(vec![57, 130], 2);
    // --- im2col on an odd geometry.
    let x = random(vec![37, 23, 5], 3);
    let geo = Conv2dGeometry::resolve((37, 23, 5), (3, 3), 2, Padding::Same);
    // --- Full MobileNet forward (both taps).
    let frame = random(vec![64, 96, 3], 4);

    set_threads(1);
    let gold_mm = matmul(&a, &b);
    let gold_cols = im2col(&x, &geo);
    let mut net = MobileNetConfig::with_width(0.5).build();
    let gold_taps = net.forward_taps(&frame, &[LAYER_LOCALIZED_TAP, LAYER_FULL_FRAME_TAP]);
    let gold_out = net.forward(&frame, Phase::Inference);

    for t in 2..=8 {
        set_threads(t);
        assert_eq!(matmul(&a, &b), gold_mm, "matmul differs at {t} threads");
        assert_eq!(im2col(&x, &geo), gold_cols, "im2col differs at {t} threads");
        // Fresh network per thread count: weights are seed-deterministic,
        // so any output difference is a kernel nondeterminism.
        let mut net_t = MobileNetConfig::with_width(0.5).build();
        let taps_t = net_t.forward_taps(&frame, &[LAYER_LOCALIZED_TAP, LAYER_FULL_FRAME_TAP]);
        assert_eq!(taps_t, gold_taps, "MobileNet taps differ at {t} threads");
        assert_eq!(
            net_t.forward(&frame, Phase::Inference),
            gold_out,
            "MobileNet forward differs at {t} threads"
        );
    }
    set_threads(0);
}
