//! Fleet-scale robustness integration tests (`ff_core::hub` +
//! `ff_core::fleet`): the acceptance contract of the cloud tier.
//!
//! * the **fleet chaos scenario** — ≥50 nodes under scripted crashes, a
//!   hub partition, a duplicate storm, and seeded loss — conserves the
//!   `FleetLedger` exactly, delivers no event twice to any subscriber,
//!   and replays its full report (trace included) bit-for-bit across
//!   repeated runs and hub shard widths;
//! * **per-node isolation**: a node's ledger and sub-trace are identical
//!   whether the fleet has 50 or 200 nodes;
//! * **crash-rejoin** resumes from the checkpoint journal without double
//!   delivery;
//! * the **staged rollout** promotes a healthy version and rolls back a
//!   misbehaving canary;
//! * **demand fetch** recovers spilled segments once a partition heals,
//!   and gives up with bounded retries against a node that stays dark.

use ff_core::faults::{FleetFaultPlan, RetryPolicy};
use ff_core::fleet::{Fleet, FleetConfig};
use ff_core::hub::{HubEventKind, McVersion, NodeId, RolloutOutcome, RolloutPlan};
use ff_core::query::Query;
use ff_core::McId;

/// The scripted chaos configuration from the acceptance criteria: ≥50
/// nodes, crashes, a partition, a dup storm, seeded loss.
fn chaos_cfg(nodes: usize, shards: usize) -> FleetConfig {
    FleetConfig {
        nodes,
        rounds: 220,
        shards,
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        faults: FleetFaultPlan::new()
            .node_crash(3, 30, 25)
            .node_crash(17, 60, 20)
            .node_crash(3, 140, 15)
            .hub_partition(80, 30, 8, 24)
            .dup_storm(120, 20, 2)
            .message_loss(120, 20, 0.2)
            .message_loss(45, 10, 0.3),
        subscriptions: vec![
            Query::mc(McId(0)).or(Query::mc(McId(1))),
            Query::mc(McId(2)).and(Query::mc(McId(3)).not()),
        ],
        ..Default::default()
    }
}

#[test]
fn chaos_scenario_conserves_and_replays_across_runs_and_shards() {
    let report = Fleet::new(chaos_cfg(50, 1)).unwrap().run();
    assert!(report.ledger.conserves(), "{}", report.ledger);
    assert!(report.ledger.offered > 500, "the fleet generated real load");
    assert!(report.ledger.spilled > 0, "the partition forced spills");
    assert_eq!(report.double_deliveries, 0, "exactly-once to subscribers");
    assert!(report.dup_hits > 0, "the storm was absorbed, not delivered");
    assert!(report.sub_deliveries.iter().all(|&d| d > 0));

    // Per-node conservation too, not just in the sum.
    for (i, l) in report.node_ledgers.iter().enumerate() {
        assert!(l.conserves(), "node {i}: {l}");
    }

    // Byte-identical replay: same run again, and across shard widths.
    for shards in [1, 2, 4] {
        let again = Fleet::new(chaos_cfg(50, shards)).unwrap().run();
        assert_eq!(report, again, "replay at shard width {shards} diverged");
        assert_eq!(
            report.trace.to_string(),
            again.trace.to_string(),
            "printed trace at shard width {shards} diverged"
        );
    }
}

#[test]
fn per_node_outcomes_are_fleet_size_independent() {
    // Same seed, same per-node fault windows, two fleet sizes: the first
    // 50 nodes must not be able to tell whether 150 more exist.
    let small = Fleet::new(chaos_cfg(50, 2)).unwrap().run();
    let large = Fleet::new(chaos_cfg(200, 2)).unwrap().run();
    assert_eq!(&small.node_ledgers[..], &large.node_ledgers[..50]);
    for node in [3usize, 17, 8, 49] {
        assert_eq!(
            small.trace.for_node(NodeId(node)).to_string(),
            large.trace.for_node(NodeId(node)).to_string(),
            "node {node} sub-trace diverged across fleet sizes"
        );
    }
}

#[test]
fn crash_rejoin_resumes_from_checkpoint_without_double_delivery() {
    let cfg = FleetConfig {
        nodes: 8,
        rounds: 200,
        checkpoint_every: 64,
        faults: FleetFaultPlan::new().node_crash(5, 50, 30),
        subscriptions: vec![Query::mc(McId(0)).or(Query::mc(McId(1)))],
        ..Default::default()
    };
    let report = Fleet::new(cfg).unwrap().run();
    assert!(report.ledger.conserves());
    assert_eq!(report.checkpoint_restores, 1);
    assert_eq!(report.double_deliveries, 0);
    assert!(report.redeliveries > 0, "the rejoin re-offered its journal");
    assert!(report.dup_hits > 0, "re-offers were absorbed as duplicates");
    let rejoin = report
        .trace
        .events
        .iter()
        .find(|e| {
            matches!(
                e.kind,
                HubEventKind::NodeRejoined {
                    node: NodeId(5),
                    ..
                }
            )
        })
        .expect("node 5 rejoined");
    assert_eq!(rejoin.round, 80);
}

#[test]
fn rollout_promotes_healthy_and_rolls_back_misbehaving_versions() {
    let base = FleetConfig {
        nodes: 20,
        rounds: 200,
        rollout: Some(RolloutPlan {
            version: McVersion(2),
            start_round: 60,
            canary_nodes: 4,
            canary_rounds: 40,
            regression_factor: 2.0,
        }),
        ..Default::default()
    };
    // Healthy canary: same event rate on v2 ⇒ promoted fleet-wide.
    let healthy = Fleet::new(base.clone()).unwrap().run();
    assert_eq!(
        healthy.rollout,
        Some(RolloutOutcome::Promoted {
            version: McVersion(2)
        })
    );
    assert_eq!(healthy.deploys, 20, "every node got v2");

    // Misbehaving canary: v2 quadruples the event rate ⇒ rolled back,
    // and only the canary cohort ever saw it (canary deploys + reverts).
    let sick = FleetConfig {
        version_rates: vec![(McVersion(2), 4.0)],
        ..base
    };
    let sick = Fleet::new(sick).unwrap().run();
    match sick.rollout {
        Some(RolloutOutcome::RolledBack {
            version,
            ratio_permille,
        }) => {
            assert_eq!(version, McVersion(2));
            assert!(ratio_permille > 2000, "regression ratio {ratio_permille}");
        }
        other => panic!("expected rollback, got {other:?}"),
    }
    assert_eq!(sick.deploys, 8, "4 canary deploys + 4 rollbacks");
    assert!(sick.ledger.conserves());
}

#[test]
fn demand_fetch_recovers_after_heal_and_bounds_retries_against_dark_nodes() {
    // Nodes 2 and 4 are each partitioned long enough to spill. Node 2
    // heals and stays up: every fetch of its parked context succeeds.
    // Node 4 announces its spills at the heal round (80) and crashes for
    // good one round later — before any fetch can land — so the hub's
    // fetches against it exhaust their bounded retries.
    let cfg = FleetConfig {
        nodes: 6,
        rounds: 260,
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        faults: FleetFaultPlan::new()
            .hub_partition(40, 40, 2, 3)
            .hub_partition(40, 40, 4, 5)
            .node_crash(4, 81, 1000),
        ..Default::default()
    };
    let report = Fleet::new(cfg).unwrap().run();
    assert!(report.ledger.conserves());
    assert!(report.ledger.spilled > 0, "partition + tight retries spill");
    assert!(report.fetch_ok > 0, "healed node served its parked context");
    let ok_nodes: Vec<_> = report
        .trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            HubEventKind::FetchOk { node, .. } => Some(node),
            _ => None,
        })
        .collect();
    assert!(
        ok_nodes.contains(&NodeId(2)),
        "node 2's spills were fetched"
    );
    // Node 4 crashed before any fetch of its content could finish; the
    // hub gave up after bounded retries instead of waiting forever.
    let failed: Vec<_> = report
        .trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            HubEventKind::FetchFailed { node, attempts, .. } => Some((node, attempts)),
            _ => None,
        })
        .collect();
    assert!(!failed.is_empty(), "fetches against the dark node gave up");
    for (node, attempts) in &failed {
        assert_eq!(*node, NodeId(4));
        assert_eq!(*attempts, 3, "retries are bounded by the policy");
    }
    assert_eq!(report.fetch_failed, failed.len() as u64);
}
