//! Zero-allocation guarantee for the streaming hot path.
//!
//! The scaling story of the reproduction (Figures 5/6) rests on the edge
//! node sustaining per-frame inference indefinitely; allocator traffic is
//! both a throughput tax and a fragmentation risk on constrained nodes.
//! This suite installs a counting allocator and pins the contract from the
//! tensor-layer redesign: after one warm-up frame, feature extraction and
//! the microclassifier loop perform **zero heap allocations per frame**.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

static TEST_SERIAL: AtomicUsize = AtomicUsize::new(0);

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

use ff_core::{FeatureExtractor, McSpec};
use ff_models::MobileNetConfig;
use ff_tensor::Tensor;
use ff_video::Resolution;

#[test]
fn extractor_and_mc_loop_are_allocation_free_after_warmup() {
    // Guard against a second test in this binary running concurrently and
    // polluting the counter.
    assert_eq!(TEST_SERIAL.fetch_add(1, Ordering::SeqCst), 0);

    let res = Resolution::new(96, 54);
    let mut extractor = FeatureExtractor::new(
        MobileNetConfig::with_width(0.25),
        vec![
            ff_models::LAYER_LOCALIZED_TAP.to_string(),
            ff_models::LAYER_FULL_FRAME_TAP.to_string(),
        ],
    );
    let full = McSpec::full_frame("ff", 1);
    let localized = McSpec::localized(
        "loc",
        Some(ff_data::CropRect {
            x0: 0.1,
            y0: 0.2,
            x1: 0.9,
            y1: 0.8,
        }),
        2,
    );
    let mut mcs = vec![
        full.build(&extractor, res, ff_core::McId(0)),
        localized.build(&extractor, res, ff_core::McId(1)),
    ];

    let frame = Tensor::filled(vec![res.height, res.width, 3], 0.4);

    // Warm-up: grows every workspace to its steady-state set, fills the
    // smoothing windows, opens the (constant-decision) event, and pays the
    // one-time thread-pool spawn.
    for _ in 0..10 {
        let maps = extractor.extract(&frame);
        for mc in &mut mcs {
            let fm = maps.get(&mc.spec().tap);
            let _ = mc.process_tap(fm);
        }
    }

    let before = allocs();
    for _ in 0..20 {
        let _maps = extractor.extract(&frame);
    }
    let mid = allocs();
    assert_eq!(
        mid - before,
        0,
        "extraction allocated {} times over 20 frames",
        mid - before
    );
    for _ in 0..20 {
        let maps = extractor.extract(&frame);
        for mc in &mut mcs {
            let fm = maps.get(&mc.spec().tap);
            let _ = std::hint::black_box(mc.process_tap(fm));
        }
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "hot loop allocated {} times over 20 frames",
        after - before
    );
}
