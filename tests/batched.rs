//! Batched-extraction determinism: the batched forward path must be
//! **bit-for-bit identical** to the serial per-frame path for every batch
//! size × thread count × shard layout, and the gather-batch [`EdgeNode`]
//! must reproduce the serial `FilterForward::process` verdicts exactly.
//!
//! This is the acceptance contract of cross-stream batching: stacking N
//! frames' im2col matrices into one GEMM per layer amortizes weight-panel
//! streaming but computes every output element from its own frame's data in
//! the same accumulation order, so batch composition — like sharding and
//! thread count before it — moves *where and how often* memory is touched,
//! never what is computed.

use ff_core::pipeline::{FilterForward, FrameVerdict, PipelineConfig};
use ff_core::runtime::{EdgeNode, EdgeNodeConfig, GatherBatch, ShardLayout};
use ff_core::{FeatureExtractor, McSpec, SmoothingConfig};
use ff_models::{MobileNetConfig, LAYER_FULL_FRAME_TAP, LAYER_LOCALIZED_TAP};
use ff_tensor::parallel::set_threads;
use ff_tensor::{PoolShard, Tensor};
use ff_video::scene::{Scene, SceneConfig};
use ff_video::{Frame, Resolution, SceneSource};
use std::time::Duration;

const RES: Resolution = Resolution::new(64, 32);
const FRAMES: u64 = 16;
const STREAM_SEEDS: [u64; 3] = [31, 32, 33];

fn scene_cfg(seed: u64) -> SceneConfig {
    SceneConfig {
        resolution: RES,
        seed,
        pedestrian_rate: 0.25,
        car_rate: 0.05,
        ..Default::default()
    }
}

fn pipeline_cfg() -> PipelineConfig {
    PipelineConfig {
        mobilenet: MobileNetConfig::with_width(0.25),
        resolution: RES,
        fps: 15.0,
        upload_bitrate_bps: 100_000.0,
        archive: None,
    }
}

fn extractor() -> FeatureExtractor {
    FeatureExtractor::new(
        MobileNetConfig::with_width(0.25),
        vec![LAYER_LOCALIZED_TAP.into(), LAYER_FULL_FRAME_TAP.into()],
    )
}

fn frame_tensors(seed: u64, n: usize) -> Vec<Tensor> {
    Scene::new(scene_cfg(seed))
        .take(n)
        .map(|(f, _)| f.to_tensor())
        .collect()
}

/// Batched extraction over every batch size × thread count × shard width
/// must reproduce the serial single-threaded per-frame maps exactly.
#[test]
fn batched_extraction_bit_identical_across_batch_threads_shards() {
    let tensors = frame_tensors(9, 8);

    // Gold: serial per-frame extraction, single-threaded.
    set_threads(1);
    let mut serial = extractor();
    let gold: Vec<(Tensor, Tensor)> = tensors
        .iter()
        .map(|t| {
            let maps = serial.extract(t);
            (
                maps.get(LAYER_LOCALIZED_TAP).clone(),
                maps.get(LAYER_FULL_FRAME_TAP).clone(),
            )
        })
        .collect();
    set_threads(0);

    for batch in [1usize, 2, 3, 8] {
        for threads in [1usize, 2, 4] {
            set_threads(threads);
            let mut ex = extractor();
            for (i, chunk) in tensors.chunks(batch).enumerate() {
                let start = i * batch;
                let maps = ex.extract_batch(chunk);
                for (b, m) in maps.iter().enumerate() {
                    let (loc, full) = &gold[start + b];
                    assert_eq!(
                        m.get(LAYER_LOCALIZED_TAP),
                        loc,
                        "B{batch} t{threads} frame {}",
                        start + b
                    );
                    assert_eq!(
                        m.get(LAYER_FULL_FRAME_TAP),
                        full,
                        "B{batch} t{threads} frame {}",
                        start + b
                    );
                }
            }
            set_threads(0);
        }
        for width in [1usize, 3] {
            let shard = PoolShard::new(width);
            let mut ex = extractor();
            for (i, chunk) in tensors.chunks(batch).enumerate() {
                let maps = shard.run(|| ex.extract_batch(chunk));
                for (b, m) in maps.iter().enumerate() {
                    let (loc, full) = &gold[i * batch + b];
                    assert_eq!(
                        m.get(LAYER_LOCALIZED_TAP),
                        loc,
                        "B{batch} shard{width} frame {}",
                        i * batch + b
                    );
                    assert_eq!(
                        m.get(LAYER_FULL_FRAME_TAP),
                        full,
                        "B{batch} shard{width} frame {}",
                        i * batch + b
                    );
                }
            }
        }
    }
}

/// Every stream gets a different MC mix so cross-stream state bleed (if the
/// gather-batch fanout had any) could not cancel out.
fn deploy_stream_mcs(ff_deploy: &mut dyn FnMut(McSpec), stream: usize) {
    let seed = 300 + stream as u64;
    ff_deploy(McSpec::full_frame(format!("b{stream}-full"), seed));
    match stream % 3 {
        0 => ff_deploy(McSpec::windowed(format!("b{stream}-win"), None, seed + 50)),
        1 => ff_deploy(McSpec::localized(format!("b{stream}-loc"), None, seed + 50)),
        _ => ff_deploy(McSpec {
            threshold: 0.0,
            smoothing: SmoothingConfig { n: 3, k: 2 },
            ..McSpec::full_frame(format!("b{stream}-all"), seed + 50)
        }),
    }
}

fn serial_verdicts(stream: usize, seed: u64) -> Vec<FrameVerdict> {
    let mut ff = FilterForward::new(pipeline_cfg());
    deploy_stream_mcs(
        &mut |spec| {
            ff.deploy(spec);
        },
        stream,
    );
    let mut scene = Scene::new(scene_cfg(seed));
    let mut verdicts = Vec::new();
    for _ in 0..FRAMES {
        verdicts.extend(ff.process(&scene.step().0));
    }
    let (tail, ..) = ff.finish();
    verdicts.extend(tail);
    verdicts
}

/// Gather-batch `EdgeNode` verdicts must equal the serial pipeline's for
/// every streams × shard-layout × max-batch combination, including the
/// single-stream micro-batching case.
#[test]
fn gather_batch_node_matches_serial_pipeline_across_layouts_and_batch_sizes() {
    let gold: Vec<Vec<FrameVerdict>> = STREAM_SEEDS
        .iter()
        .enumerate()
        .map(|(s, &seed)| serial_verdicts(s, seed))
        .collect();

    let cases: Vec<(usize, ShardLayout, usize)> = vec![
        (1, ShardLayout::single(1), 8), // single-stream micro-batching
        (1, ShardLayout::single(2), 1), // gather mode, forced batch-1
        (2, ShardLayout::even(2, 2), 2),
        (3, ShardLayout::single(2), 3),
        (3, ShardLayout::explicit(vec![3, 1]), 8),
    ];
    for (n_streams, layout, max_batch) in cases {
        let label = format!(
            "{n_streams} streams, shards {:?}, max_batch {max_batch}",
            layout.widths()
        );
        let cfg = EdgeNodeConfig::new(layout).with_gather_batch(GatherBatch {
            max_batch,
            gather_wait: Duration::from_millis(1),
        });
        let mut node = EdgeNode::new(cfg);
        for (s, &seed) in STREAM_SEEDS.iter().enumerate().take(n_streams) {
            let src = Box::new(SceneSource::new(scene_cfg(seed), FRAMES));
            let id = node.add_stream(src, pipeline_cfg());
            deploy_stream_mcs(
                &mut |spec| {
                    node.deploy(id, spec);
                },
                s,
            );
        }
        let report = node.run();
        for (s, sr) in report.streams.iter().enumerate() {
            assert_eq!(
                sr.verdicts, gold[s],
                "{label}: stream {s} diverged from the serial pipeline"
            );
        }
        assert_eq!(
            report.node.pipeline.frames_out,
            n_streams as u64 * FRAMES,
            "{label}"
        );
    }
}

/// Node-level calibration keeps the gather-batch path bit-identical to the
/// per-stream serial path when the base DNN is calibrated.
#[test]
fn gather_batch_matches_serial_after_node_calibration() {
    let cal_frames: Vec<Frame> = Scene::new(scene_cfg(77)).take(4).map(|(f, _)| f).collect();

    // Serial gold: per-stream pipelines calibrated with the same frames.
    let gold: Vec<Vec<FrameVerdict>> = STREAM_SEEDS[..2]
        .iter()
        .enumerate()
        .map(|(s, &seed)| {
            let mut ff = FilterForward::new(pipeline_cfg());
            deploy_stream_mcs(
                &mut |spec| {
                    ff.deploy(spec);
                },
                s,
            );
            ff.calibrate(&cal_frames);
            let mut scene = Scene::new(scene_cfg(seed));
            let mut verdicts = Vec::new();
            for _ in 0..FRAMES {
                verdicts.extend(ff.process(&scene.step().0));
            }
            let (tail, ..) = ff.finish();
            verdicts.extend(tail);
            verdicts
        })
        .collect();

    let cfg = EdgeNodeConfig::new(ShardLayout::single(2)).with_gather_batch(GatherBatch::default());
    let mut node = EdgeNode::new(cfg);
    for (s, &seed) in STREAM_SEEDS.iter().enumerate().take(2) {
        let src = Box::new(SceneSource::new(scene_cfg(seed), FRAMES));
        let id = node.add_stream(src, pipeline_cfg());
        deploy_stream_mcs(
            &mut |spec| {
                node.deploy(id, spec);
            },
            s,
        );
    }
    node.calibrate(&cal_frames);
    let report = node.run();
    for (s, sr) in report.streams.iter().enumerate() {
        assert_eq!(sr.verdicts, gold[s], "calibrated stream {s} diverged");
    }
}
