//! Integration tests for the adaptive node control plane
//! (`ff_core::control` + `EdgeNode::run_controlled`):
//!
//! * a scripted **diurnal-load scenario** (streams go idle and return)
//!   whose decision trace must be **bit-identical** across repeated runs
//!   and thread counts (the virtual-time determinism contract);
//! * **verdict equivalence** with the uncontrolled threaded runtime when
//!   no policy fires, in both execution styles;
//! * **admission control** provably refusing the stream that would exceed
//!   the `node` memory model.

use std::time::Duration;

use ff_core::control::{
    AdmissionError, AdmissionPolicy, BatchPolicy, ControlAction, ControlConfig, DegradePolicy,
    RebalancePolicy,
};
use ff_core::node::{max_mobilenet_instances, mobilenet_instance_bytes, EdgeNodeSpec};
use ff_core::runtime::{ControlledReport, EdgeNode, EdgeNodeConfig, GatherBatch, ShardLayout};
use ff_core::{McSpec, PipelineConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::SceneConfig;
use ff_video::{DutyCycleSource, Resolution, SceneSource};

const RES: Resolution = Resolution::new(64, 32);

fn scene_cfg(seed: u64) -> SceneConfig {
    SceneConfig {
        resolution: RES,
        seed,
        pedestrian_rate: 0.2,
        ..Default::default()
    }
}

fn pipeline() -> PipelineConfig {
    PipelineConfig {
        mobilenet: MobileNetConfig::with_width(0.25),
        resolution: RES,
        fps: 15.0,
        upload_bitrate_bps: 100_000.0,
        archive: None,
    }
}

/// The diurnal scenario: four cameras, two always on, two that sleep
/// through long idle stretches and come back — driven by the controlled
/// gather-style node with every policy armed and a tight uplink so the
/// batch sizer, the activity classifier, and the degradation ladder all
/// get something to do.
fn diurnal_gather_run(budget: usize) -> ControlledReport {
    let mut cfg = EdgeNodeConfig::new(ShardLayout::single(budget)).with_gather_batch(GatherBatch {
        max_batch: 8,
        gather_wait: Duration::from_millis(1),
    });
    // Tight shared link: matched-frame uploads saturate it.
    cfg.uplink_capacity_bps = 40_000.0;
    let mut node = EdgeNode::new(cfg);
    for (s, seed) in [21u64, 22, 23, 24].iter().enumerate() {
        let inner = SceneSource::new(scene_cfg(*seed), 48);
        let src: Box<dyn ff_video::FrameSource> = if s < 2 {
            Box::new(inner) // always-on cameras
        } else {
            // Night-time cameras: 8 active ticks, then 24 idle, repeating.
            Box::new(DutyCycleSource::new(inner, 8, 24))
        };
        let id = node.add_stream(src, pipeline());
        // threshold 0 ⇒ every frame matches and uploads: sustained uplink
        // pressure for the degradation ladder.
        let spec = McSpec {
            threshold: 0.0,
            smoothing: ff_core::SmoothingConfig { n: 1, k: 1 },
            ..McSpec::full_frame(format!("cam{s}"), *seed)
        };
        node.deploy(id, spec);
    }
    node.run_controlled(ControlConfig {
        tick_frames: 4,
        arrival_alpha: 0.5,
        batch: Some(BatchPolicy::default()),
        rebalance: None, // gather style has no per-stream shards
        degrade: Some(DegradePolicy {
            saturate_ticks: 2,
            relax_ticks: 4,
            ..DegradePolicy::default()
        }),
        watchdog: None,
    })
}

#[test]
fn diurnal_decision_trace_is_bit_identical_across_runs_and_widths() {
    // ≥ 3 repeated runs and ≥ 2 thread counts (shard widths drive the
    // kernel-level split; virtual time makes the trace width-independent).
    let gold = diurnal_gather_run(1);
    assert!(
        !gold.trace.is_empty(),
        "the scenario must exercise the controller"
    );
    // The scenario must exercise more than one policy arm: batch resizing
    // from the diurnal arrivals, and the ladder from the saturated link.
    let has_batch = gold
        .trace
        .decisions
        .iter()
        .any(|d| matches!(d.action, ControlAction::SetMaxBatch { .. }));
    let has_degrade = gold.trace.decisions.iter().any(|d| {
        matches!(
            d.action,
            ControlAction::SetPrecision { .. } | ControlAction::SetUploadStride { .. }
        )
    });
    assert!(has_batch, "batch policy never fired:\n{}", gold.trace);
    assert!(has_degrade, "degradation never fired:\n{}", gold.trace);

    for run in 0..2 {
        let again = diurnal_gather_run(1);
        assert_eq!(gold.trace, again.trace, "trace diverged on rerun {run}");
        for (a, b) in gold.streams.iter().zip(&again.streams) {
            assert_eq!(a.verdicts, b.verdicts, "verdicts diverged on rerun {run}");
        }
    }
    for width in [2usize, 3] {
        let wide = diurnal_gather_run(width);
        assert_eq!(gold.trace, wide.trace, "trace diverged at width {width}");
        for (a, b) in gold.streams.iter().zip(&wide.streams) {
            assert_eq!(a.verdicts, b.verdicts, "verdicts diverged at width {width}");
        }
    }
}

#[test]
fn diurnal_sharded_rebalance_trace_is_deterministic() {
    // Sharded style: the rebalance policy must move width toward the
    // always-on streams when the night cameras go quiet, with an identical
    // trace across repeats. Widths appear in the trace, so cross-budget
    // runs are compared on verdicts only (width changes must never leak
    // into results). A budget of 8 over 4 streams leaves the policy real
    // width to move; budgets ≤ stream count pin every shard at width 1.
    let run = |budget: usize| {
        let mut cfg = EdgeNodeConfig::new(ShardLayout::even(budget, 4.min(budget)));
        cfg.uplink_capacity_bps = 1_000_000.0; // generous: ladder stays put
        let mut node = EdgeNode::new(cfg);
        for (s, seed) in [31u64, 32, 33, 34].iter().enumerate() {
            let inner = SceneSource::new(scene_cfg(*seed), 40);
            let src: Box<dyn ff_video::FrameSource> = if s < 2 {
                Box::new(inner)
            } else {
                Box::new(DutyCycleSource::new(inner, 6, 18))
            };
            let id = node.add_stream(src, pipeline());
            node.deploy(id, McSpec::full_frame(format!("cam{s}"), *seed));
        }
        node.run_controlled(ControlConfig {
            tick_frames: 4,
            arrival_alpha: 0.5,
            batch: None,
            rebalance: Some(RebalancePolicy::default()),
            degrade: None,
            watchdog: None,
        })
    };
    let gold = run(8);
    let repartitions: Vec<_> = gold
        .trace
        .decisions
        .iter()
        .filter_map(|d| match &d.action {
            ControlAction::Repartition { widths } => Some(widths.clone()),
            _ => None,
        })
        .collect();
    assert!(
        !repartitions.is_empty(),
        "the night cameras must trigger a repartition:\n{}",
        gold.trace
    );
    // Budget concentrates on the two live streams when the others sleep.
    assert!(
        repartitions.iter().any(|w| w[0] > 1 && w[2] == 1),
        "budget must move toward the active streams, got {repartitions:?}"
    );
    for run_idx in 0..2 {
        let again = run(8);
        assert_eq!(gold.trace, again.trace, "trace diverged on rerun {run_idx}");
        for (a, b) in gold.streams.iter().zip(&again.streams) {
            assert_eq!(a.verdicts, b.verdicts);
        }
    }
    // Verdicts are width-independent even while widths move: a budget-1
    // node (every shard pinned at width 1, no repartition possible) still
    // produces the same per-stream verdicts.
    let narrow = run(1);
    for (a, b) in gold.streams.iter().zip(&narrow.streams) {
        assert_eq!(a.verdicts, b.verdicts, "stream {:?}", a.id);
    }
}

#[test]
fn controlled_verdicts_match_uncontrolled_when_no_policy_fires() {
    // Always-on streams, generous uplink, batch capacity matching the
    // stream count: no policy has any reason to act, and the controlled
    // node must reproduce the threaded runtime's verdicts bit-for-bit in
    // both execution styles.
    let build = |gather: Option<GatherBatch>| {
        let mut cfg = EdgeNodeConfig::new(if gather.is_some() {
            ShardLayout::single(2)
        } else {
            ShardLayout::even(2, 2)
        });
        cfg.gather_batch = gather;
        let mut node = EdgeNode::new(cfg);
        for seed in [41u64, 42, 43] {
            let src = Box::new(SceneSource::new(scene_cfg(seed), 16));
            let id = node.add_stream(src, pipeline());
            node.deploy(id, McSpec::full_frame(format!("mc{seed}"), seed));
        }
        node
    };
    let gather = Some(GatherBatch {
        max_batch: 3,
        gather_wait: Duration::from_millis(1),
    });
    for style in [None, gather] {
        let uncontrolled = build(style).run();
        let controlled = build(style).run_controlled(ControlConfig::default());
        assert!(
            controlled.trace.is_empty(),
            "no policy should fire (style gather={}): {}",
            style.is_some(),
            controlled.trace
        );
        for (a, b) in uncontrolled.streams.iter().zip(&controlled.streams) {
            assert_eq!(
                a.verdicts,
                b.verdicts,
                "stream {:?}, gather={}",
                a.id,
                style.is_some()
            );
        }
        assert_eq!(
            uncontrolled.node.pipeline.frames_out,
            controlled.node.pipeline.frames_out
        );
    }
}

#[test]
fn admission_refuses_the_stream_that_would_exceed_the_memory_model() {
    let mn = MobileNetConfig::with_width(0.25);
    let per = mobilenet_instance_bytes(&mn, RES);
    // An envelope that fits exactly 3 instances after the 10% OS reserve:
    // budget = ceil(10/9 · 3.5·per) keeps max_instances at 3 for any
    // rounding of the reserve arithmetic.
    let spec = EdgeNodeSpec {
        cores: 4,
        memory_bytes: (per * 7 / 2) * 10 / 9,
    };
    let max = max_mobilenet_instances(&spec, &mn, RES);
    assert_eq!(max, 3, "scenario needs a 3-instance envelope");

    let mut node = EdgeNode::new(
        EdgeNodeConfig::new(ShardLayout::single(1)).with_admission(AdmissionPolicy::new(spec)),
    );
    for seed in 0..max as u64 {
        let src = Box::new(SceneSource::new(scene_cfg(seed), 2));
        node.try_add_stream(src, pipeline())
            .unwrap_or_else(|e| panic!("stream {seed} must fit ({e})"));
    }
    // The (max+1)-th stream would be the paper's Figure-5 OOM: the node
    // must refuse it, and the typed reason must agree with the memory
    // model exactly at the boundary.
    let src = Box::new(SceneSource::new(scene_cfg(99), 2));
    let err = node
        .try_add_stream(src, pipeline())
        .expect_err("over-memory stream must be refused");
    match err {
        AdmissionError::OverMemory {
            instance_bytes,
            committed_bytes,
            budget_bytes,
            max_instances,
        } => {
            assert_eq!(instance_bytes, per);
            assert_eq!(committed_bytes, per * max as u64);
            assert_eq!(max_instances, max);
            assert!(committed_bytes + instance_bytes > budget_bytes);
            assert!(committed_bytes <= budget_bytes);
        }
        other => panic!("expected OverMemory, got {other:?}"),
    }
    // The refusal must not have corrupted the node: the admitted streams
    // still run.
    for s in 0..node.stream_count() {
        node.deploy(
            ff_core::StreamId(s),
            McSpec::full_frame(format!("m{s}"), s as u64),
        );
    }
    let report = node.run();
    assert_eq!(report.streams.len(), max);
    assert_eq!(report.node.pipeline.frames_out, 2 * max as u64);
}

#[test]
fn degradation_ladder_lowers_offered_uplink_load() {
    // The ladder's purpose, end to end: the degraded run must offer fewer
    // bits to the saturated link than an uncontrolled run of the same
    // streams (precision steps change re-encoded sizes a little; the
    // upload stride cuts them roughly in half per rung).
    let build = || {
        let mut cfg = EdgeNodeConfig::new(ShardLayout::single(1)).with_gather_batch(GatherBatch {
            max_batch: 2,
            gather_wait: Duration::from_millis(1),
        });
        cfg.uplink_capacity_bps = 30_000.0;
        let mut node = EdgeNode::new(cfg);
        for seed in [51u64, 52] {
            let src = Box::new(SceneSource::new(scene_cfg(seed), 40));
            let id = node.add_stream(src, pipeline());
            node.deploy(
                id,
                McSpec {
                    threshold: 0.0,
                    smoothing: ff_core::SmoothingConfig { n: 1, k: 1 },
                    ..McSpec::full_frame(format!("all{seed}"), seed)
                },
            );
        }
        node
    };
    let uncontrolled = build().run();
    let controlled = build().run_controlled(ControlConfig {
        tick_frames: 4,
        arrival_alpha: 0.5,
        batch: None,
        rebalance: None,
        // One rung per saturated tick: the ladder is six rungs deep (three
        // precision rungs before the strides), and the stride rungs — the
        // ones that actually shed bytes — must get a meaningful share of
        // this 40-frame run.
        degrade: Some(DegradePolicy {
            saturate_ticks: 1,
            relax_ticks: 8,
            ..DegradePolicy::default()
        }),
        watchdog: None,
    });
    assert!(
        controlled
            .trace
            .decisions
            .iter()
            .any(|d| matches!(d.action, ControlAction::SetUploadStride { .. })),
        "the saturated link must push the ladder to the stride rungs:\n{}",
        controlled.trace
    );
    let offered_uncontrolled: u64 = uncontrolled.streams.iter().map(|s| s.offered_bytes).sum();
    let offered_controlled: u64 = controlled.streams.iter().map(|s| s.offered_bytes).sum();
    assert!(
        offered_controlled < offered_uncontrolled,
        "degradation must shed offered load ({offered_controlled} vs {offered_uncontrolled})"
    );
    // Telemetry must show the shedding too: once the ladder reaches its
    // stride rungs, per-tick offered load falls well below the saturation
    // peak. (The *first* tick is no baseline — the encoder's rate control
    // is still ramping there.)
    let peak = controlled
        .telemetry
        .iter()
        .map(|t| t.uplink.offered_utilization_tick)
        .fold(0.0f64, f64::max);
    let last = controlled
        .telemetry
        .last()
        .expect("telemetry must be logged");
    assert!(
        last.uplink.offered_utilization_tick < 0.8 * peak,
        "offered load must fall off its peak: peak {:.2}, last {:.2}",
        peak,
        last.uplink.offered_utilization_tick
    );
}
