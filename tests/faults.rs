//! Chaos-harness integration tests for deterministic fault injection and
//! recovery (`ff_core::faults` + `EdgeNode::run_controlled`):
//!
//! * the **scripted chaos scenario** — an uplink outage, a stalled camera,
//!   and a crashing inference stage in one run — must complete, conserve
//!   its segment ledger, leave unaffected streams' verdicts bit-identical
//!   to a fault-free run, and replay its fault/recovery trace bit-for-bit
//!   across repeated runs and shard widths;
//! * the **circuit breaker** killing a repeatedly-crashing stream while
//!   the node keeps running;
//! * the **watchdog** quarantining a stalled camera and readmitting it on
//!   recovery, moving real shard width in sharded style;
//! * the **degradation ladder** treating an outage as saturation;
//! * **spill/overflow accounting** under a tiny retry budget.

use std::time::Duration;

use ff_core::control::{ControlAction, ControlConfig, DegradePolicy, WatchdogPolicy};
use ff_core::faults::{FaultEventKind, FaultPlan, RecoveryConfig, RetryPolicy};
use ff_core::runtime::{ControlledReport, EdgeNode, EdgeNodeConfig, GatherBatch, ShardLayout};
use ff_core::{McSpec, PipelineConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::SceneConfig;
use ff_video::{Resolution, SceneSource};

const RES: Resolution = Resolution::new(64, 32);

fn scene_cfg(seed: u64) -> SceneConfig {
    SceneConfig {
        resolution: RES,
        seed,
        pedestrian_rate: 0.2,
        ..Default::default()
    }
}

fn pipeline() -> PipelineConfig {
    PipelineConfig {
        mobilenet: MobileNetConfig::with_width(0.25),
        resolution: RES,
        fps: 15.0,
        upload_bitrate_bps: 100_000.0,
        archive: None,
    }
}

/// A node with `streams` threshold-0 cameras (every frame matches and
/// uploads, so the uplink sees sustained pressure).
fn build_node(cfg: EdgeNodeConfig, streams: usize, frames: u64) -> EdgeNode {
    let mut node = EdgeNode::new(cfg);
    for s in 0..streams {
        let seed = 41 + s as u64;
        let id = node.add_stream(
            Box::new(SceneSource::new(scene_cfg(seed), frames)),
            pipeline(),
        );
        node.deploy(
            id,
            McSpec {
                threshold: 0.0,
                smoothing: ff_core::SmoothingConfig { n: 1, k: 1 },
                ..McSpec::full_frame(format!("cam{s}"), seed)
            },
        );
    }
    node
}

/// Policy-free control config (faults must not leak into verdicts through
/// an adaptive policy; the watchdog is armed but marker-only in gather
/// style).
fn quiet_ctl() -> ControlConfig {
    ControlConfig {
        tick_frames: 4,
        arrival_alpha: 0.5,
        batch: None,
        rebalance: None,
        degrade: None,
        watchdog: Some(WatchdogPolicy::default()),
    }
}

/// The acceptance-criteria chaos scenario, gather style: an uplink outage
/// (rounds 12..24), a stalled camera (stream 1, polls 8..20), and one
/// scripted stage panic (stream 2, served frame 5).
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .uplink_outage(12, 12)
        .camera_stall(1, 8, 12)
        .stage_panic(2, 5)
}

fn chaos_gather_run(budget: usize, plan: Option<FaultPlan>) -> ControlledReport {
    let mut cfg = EdgeNodeConfig::new(ShardLayout::single(budget)).with_gather_batch(GatherBatch {
        max_batch: 8,
        gather_wait: Duration::from_millis(1),
    });
    cfg.uplink_capacity_bps = 200_000.0;
    if let Some(plan) = plan {
        cfg = cfg.with_faults(plan);
    }
    build_node(cfg, 4, 48).run_controlled(quiet_ctl())
}

#[test]
fn chaos_run_completes_conserves_and_spares_unaffected_streams() {
    let baseline = chaos_gather_run(1, None);
    assert!(baseline.faults.is_none(), "no plan ⇒ no faults report");
    let chaos = chaos_gather_run(1, Some(chaos_plan()));
    let faults = chaos.faults.as_ref().expect("plan ⇒ faults report");

    // Every stream finished; nothing tore the node down.
    assert_eq!(chaos.streams.len(), 4);

    // Segment accounting conserves: every offered segment delivered,
    // delivered-late, or accounted-dropped.
    assert!(faults.ledger.conserves(), "{:?}", faults.ledger);
    assert!(faults.ledger.offered > 0);
    assert!(
        faults.ledger.delivered_late > 0,
        "the outage must force late deliveries: {:?}",
        faults.ledger
    );

    // The trace saw the outage begin and end, and the scripted panic.
    let kinds: Vec<_> = faults.trace.events.iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&FaultEventKind::LinkDown),
        "{}",
        faults.trace
    );
    assert!(kinds.contains(&FaultEventKind::LinkUp), "{}", faults.trace);
    assert!(
        kinds.contains(&FaultEventKind::StagePanic {
            stream: 2,
            frame: 5
        }),
        "{}",
        faults.trace
    );
    assert!(
        kinds.contains(&FaultEventKind::StageRestarted { stream: 2 }),
        "{}",
        faults.trace
    );
    assert_eq!(faults.restarts, vec![0, 0, 1, 0]);
    assert_eq!(faults.frames_lost, vec![0, 0, 1, 0]);

    // Unaffected streams (0, 3): verdicts bit-identical to the fault-free
    // run — an uplink outage delays delivery, never alters inference.
    for s in [0usize, 3] {
        assert_eq!(
            chaos.streams[s].verdicts, baseline.streams[s].verdicts,
            "stream {s} verdicts must not feel the faults"
        );
    }
    // The stalled camera (1): a stall preserves content — same verdicts,
    // just later.
    assert_eq!(
        chaos.streams[1].verdicts, baseline.streams[1].verdicts,
        "a stall shifts timing, not content"
    );
    // The panicked stream (2): the served frame is lost, so later frames
    // shift — only the pre-panic prefix is comparable, and exactly one
    // verdict is missing at the end.
    assert_eq!(
        chaos.streams[2].verdicts[..5],
        baseline.streams[2].verdicts[..5],
        "pre-panic prefix must match"
    );
    assert_eq!(
        chaos.streams[2].verdicts.len(),
        baseline.streams[2].verdicts.len() - 1,
        "exactly the panicked frame is lost"
    );
}

#[test]
fn chaos_trace_is_bit_identical_across_runs_and_widths() {
    let gold = chaos_gather_run(1, Some(chaos_plan()));
    let gold_faults = gold.faults.as_ref().expect("faults report");
    assert!(!gold_faults.trace.is_empty());
    // ≥ 3 runs at one width, plus a second and third shard width: the
    // fault/recovery history and the control trace replay bit-for-bit.
    for run in 0..2 {
        let again = chaos_gather_run(1, Some(chaos_plan()));
        assert_eq!(gold.faults, again.faults, "faults diverged on rerun {run}");
        assert_eq!(gold.trace, again.trace, "trace diverged on rerun {run}");
    }
    for width in [2usize, 3] {
        let wide = chaos_gather_run(width, Some(chaos_plan()));
        assert_eq!(gold.faults, wide.faults, "faults diverged at width {width}");
        assert_eq!(gold.trace, wide.trace, "trace diverged at width {width}");
        for (a, b) in gold.streams.iter().zip(&wide.streams) {
            assert_eq!(a.verdicts, b.verdicts, "verdicts diverged at width {width}");
        }
    }
}

#[test]
fn circuit_breaker_kills_a_crashing_stream_and_the_node_survives() {
    let run = |plan: Option<FaultPlan>| {
        let mut cfg = EdgeNodeConfig::new(ShardLayout::even(4, 4));
        cfg.uplink_capacity_bps = 1_000_000.0;
        if let Some(plan) = plan {
            cfg = cfg.with_faults(plan);
        }
        cfg = cfg.with_recovery(RecoveryConfig {
            max_restarts_per_stream: 1,
            ..RecoveryConfig::default()
        });
        build_node(cfg, 3, 48).run_controlled(quiet_ctl())
    };
    let baseline = run(None);
    // Stream 1 crashes twice: one restart, then the breaker kills it.
    let chaos = run(Some(FaultPlan::new().stage_panic(1, 3).stage_panic(1, 6)));
    let faults = chaos.faults.as_ref().expect("faults report");
    let kinds: Vec<_> = faults.trace.events.iter().map(|e| e.kind).collect();
    assert!(
        kinds.contains(&FaultEventKind::StageRestarted { stream: 1 }),
        "{}",
        faults.trace
    );
    assert!(
        kinds.contains(&FaultEventKind::StreamKilled { stream: 1 }),
        "{}",
        faults.trace
    );
    assert_eq!(faults.restarts, vec![0, 1, 0]);
    assert_eq!(faults.frames_lost, vec![0, 2, 0]);
    // The killed stream kept its pre-crash verdicts (frames 0..3, then
    // 4..6 after the restart — the two panicked frames are lost).
    assert_eq!(chaos.streams[1].verdicts.len(), 5);
    assert_eq!(
        chaos.streams[1].verdicts[..3],
        baseline.streams[1].verdicts[..3]
    );
    // The other streams never noticed.
    for s in [0usize, 2] {
        assert_eq!(
            chaos.streams[s].verdicts, baseline.streams[s].verdicts,
            "stream {s} must be untouched by stream 1's death"
        );
    }
}

#[test]
fn watchdog_quarantines_the_stalled_camera_and_readmits_it() {
    // Sharded style, width to move: a long stall collapses stream 2's
    // arrival EWMA, the watchdog quarantines it (width → 1) and readmits
    // once frames return.
    let mut cfg = EdgeNodeConfig::new(ShardLayout::even(8, 4))
        .with_faults(FaultPlan::new().camera_stall(2, 8, 40));
    cfg.uplink_capacity_bps = 1_000_000.0;
    let report = build_node(cfg, 4, 72).run_controlled(ControlConfig {
        tick_frames: 4,
        arrival_alpha: 0.5,
        batch: None,
        rebalance: None,
        degrade: None,
        watchdog: Some(WatchdogPolicy::default()),
    });
    let quarantine = report
        .trace
        .decisions
        .iter()
        .position(|d| matches!(d.action, ControlAction::Quarantine { stream: 2 }));
    let readmit = report
        .trace
        .decisions
        .iter()
        .position(|d| matches!(d.action, ControlAction::Readmit { stream: 2 }));
    let (q, r) = (
        quarantine.unwrap_or_else(|| panic!("no quarantine in:\n{}", report.trace)),
        readmit.unwrap_or_else(|| panic!("no readmit in:\n{}", report.trace)),
    );
    assert!(q < r, "quarantine precedes readmit:\n{}", report.trace);
    // Sharded style moves real width alongside the markers.
    assert!(
        report
            .trace
            .decisions
            .iter()
            .any(|d| matches!(d.action, ControlAction::Repartition { .. })),
        "the quarantine must repartition width:\n{}",
        report.trace
    );
    // Telemetry carried the quarantine census while it was in force.
    assert!(
        report.telemetry.iter().any(|t| t.faults.quarantined == 1),
        "telemetry must census the quarantined stream"
    );
    // A stall preserves content: the stream still produced all 72 verdicts.
    assert_eq!(report.streams[2].verdicts.len(), 72);
}

#[test]
fn degradation_ladder_treats_an_outage_as_saturation() {
    // A generous link that never saturates on its own, plus a long outage:
    // only the outage can push the ladder, and it must (a down link is
    // saturation taken to its limit, not relief).
    let mut cfg = EdgeNodeConfig::new(ShardLayout::single(2)).with_gather_batch(GatherBatch {
        max_batch: 8,
        gather_wait: Duration::from_millis(1),
    });
    cfg.uplink_capacity_bps = 10_000_000.0;
    cfg = cfg.with_faults(FaultPlan::new().uplink_outage(8, 24));
    let report = build_node(cfg, 2, 48).run_controlled(ControlConfig {
        tick_frames: 4,
        arrival_alpha: 0.5,
        batch: None,
        rebalance: None,
        degrade: Some(DegradePolicy {
            saturate_ticks: 2,
            relax_ticks: 16, // hold the rung: this test is about stepping down
            ..DegradePolicy::default()
        }),
        watchdog: None,
    });
    assert!(
        report
            .trace
            .decisions
            .iter()
            .any(|d| matches!(d.action, ControlAction::SetPrecision { .. })),
        "the outage must walk the ladder down:\n{}",
        report.trace
    );
    // Telemetry saw the link down and segments refused.
    assert!(report.telemetry.iter().any(|t| !t.faults.link_up));
    assert!(report.telemetry.iter().any(|t| t.faults.refused_tick > 0));
}

#[test]
fn exhausted_retries_spill_to_archive_and_overflow_is_accounted() {
    // A run-long outage with one delivery attempt and a 4-segment bin:
    // refusals exhaust instantly, the bin fills, the rest are accounted
    // drops — nothing silently lost.
    let mut cfg = EdgeNodeConfig::new(ShardLayout::even(2, 2))
        .with_faults(FaultPlan::new().uplink_outage(0, 10_000))
        .with_recovery(RecoveryConfig {
            retry: RetryPolicy {
                base_delay_rounds: 1,
                max_delay_rounds: 1,
                max_attempts: 1,
                jitter_rounds: 0,
                jitter_seed: 0,
            },
            spill_limit_segments: 4,
            max_restarts_per_stream: 2,
        });
    cfg.uplink_capacity_bps = 200_000.0;
    let report = build_node(cfg, 2, 32).run_controlled(quiet_ctl());
    let faults = report.faults.as_ref().expect("faults report");
    assert!(faults.ledger.conserves(), "{:?}", faults.ledger);
    assert_eq!(faults.ledger.delivered + faults.ledger.delivered_late, 0);
    assert_eq!(faults.ledger.dropped, faults.ledger.offered);
    assert_eq!(faults.spilled, 4, "the bin filled to its limit");
    assert!(
        faults.spill_overflow > 0,
        "overflow becomes accounted drops"
    );
    assert!(
        faults.recovery_rounds.is_none(),
        "the link never recovered, so there is no recovery time"
    );
    let kinds: Vec<_> = faults.trace.events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&FaultEventKind::Spilled { stream: 0 }));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, FaultEventKind::SpillDropped { .. })));
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, FaultEventKind::EndOfRunDropped { .. })),
        "parked segments become accounted drops at end of run"
    );
}

#[test]
#[should_panic(expected = "use run_controlled")]
fn threaded_runtime_rejects_fault_plans() {
    // Fault plans are scheduled in virtual-time rounds; the wall-clock
    // threaded runtime has no such clock and must refuse the config.
    let cfg = EdgeNodeConfig::new(ShardLayout::even(2, 2))
        .with_faults(FaultPlan::new().uplink_outage(0, 8));
    build_node(cfg, 2, 8).run();
}
