//! The adaptive node control plane in action: four street cameras — two
//! always on, two that sleep through the night and return at dawn — share
//! one constrained edge node and one tight uplink. The controller
//! ([`ff_core::control`]) watches queue depths, arrival-rate EWMAs, gather
//! fill, and uplink load on a deterministic virtual-time tick, and moves
//! the node's knobs live: gather batch capacity, weight-panel precision,
//! and the upload frame stride. Every decision lands in a bit-replayable
//! trace, printed at the end.
//!
//! ```sh
//! cargo run --release --example adaptive_node [-- --frames 64 --sharded]
//! ```
//!
//! `--sharded` switches from the gather-batched style (dynamic batch
//! sizing) to per-stream shards (dynamic width rebalancing).

use std::time::Duration;

use ff_core::control::{BatchPolicy, ControlConfig, DegradePolicy, RebalancePolicy};
use ff_core::runtime::{EdgeNode, EdgeNodeConfig, GatherBatch, ShardLayout};
use ff_core::{McSpec, PipelineConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::SceneConfig;
use ff_video::{DutyCycleSource, FrameSource, Resolution, SceneSource};

fn arg(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_frames = arg("--frames", 64) as u64;
    let sharded = std::env::args().any(|a| a == "--sharded");
    let budget = std::thread::available_parallelism().map_or(1, |n| n.get());
    let res = Resolution::new(120, 67);

    let mut cfg = EdgeNodeConfig::new(ShardLayout::single(budget));
    if !sharded {
        cfg.gather_batch = Some(GatherBatch {
            max_batch: 8,
            gather_wait: Duration::from_millis(1),
        });
    }
    // A tight shared link — a few hundred kb/s for the whole node, the
    // paper's provisioning regime — so the degradation ladder has work.
    cfg.uplink_capacity_bps = 120_000.0;
    let mut node = EdgeNode::new(cfg);

    for s in 0..4u64 {
        let scene = SceneConfig {
            resolution: res,
            seed: 80 + s,
            pedestrian_rate: 0.15,
            car_rate: 0.05,
            ..Default::default()
        };
        let inner = SceneSource::new(scene, n_frames);
        // Cameras 2 and 3 are motion-gated night cameras: bursts of 8
        // frames, then 24 silent frame intervals.
        let src: Box<dyn FrameSource> = if s < 2 {
            Box::new(inner)
        } else {
            Box::new(DutyCycleSource::new(inner, 8, 24))
        };
        let mut pipeline = PipelineConfig::new(res, 15.0);
        pipeline.mobilenet = MobileNetConfig::with_width(0.5);
        pipeline.archive = None;
        let id = node.add_stream(src, pipeline);
        node.deploy(id, McSpec::full_frame(format!("cam{s}/activity"), 80 + s));
    }

    let report = node.run_controlled(ControlConfig {
        tick_frames: 8,
        arrival_alpha: 0.5,
        batch: Some(BatchPolicy::default()),
        rebalance: Some(RebalancePolicy::default()),
        degrade: Some(DegradePolicy {
            saturate_ticks: 2,
            relax_ticks: 4,
            ..DegradePolicy::default()
        }),
        watchdog: None,
    });

    let style = if sharded {
        "per-stream shards + rebalancing"
    } else {
        "gather-batched + dynamic batch sizing"
    };
    println!("adaptive edge node: 4 cameras (2 diurnal), {budget}-thread budget, {style}");
    println!();
    println!("telemetry (one row per control tick):");
    println!("  tick  round  queued  arrivals/round        gather-fill  uplink-offered");
    for t in &report.telemetry {
        let arrivals: Vec<String> = t
            .streams
            .iter()
            .map(|s| format!("{:.2}", s.arrival_ewma))
            .collect();
        println!(
            "  {:>4}  {:>5}  {:>6}  [{}]  {:>11.2}  {:>13.2}x",
            t.tick,
            t.round,
            t.total_queue_depth(),
            arrivals.join(" "),
            t.gather.fill(),
            t.uplink.offered_utilization_tick,
        );
    }
    println!();
    println!("decision trace (bit-replayable):");
    print!("{}", report.trace);
    println!();
    for sr in &report.streams {
        println!(
            "  stream {}: {} frames, {} uploaded, {} bytes offered",
            sr.id.0, sr.stats.frames_out, sr.stats.frames_uploaded, sr.offered_bytes,
        );
    }
    println!(
        "  node: {} frames, uplink offered {:.2}x / accepted {:.2}x of capacity, {} decisions",
        report.node.pipeline.frames_out,
        report.node.uplink_utilization,
        report.node.uplink_accepted_utilization,
        report.trace.len(),
    );
}
