//! Demand-fetch (§3.2), end to end through the cloud tier: the edge node
//! runs a *trained* pedestrian microclassifier, archives the original
//! stream, and reports event segments to a [`CloudHub`]; a datacenter
//! subscription receives the events, and the hub pulls surrounding
//! full-quality context from the node's archive — paying GOP-aligned
//! bandwidth only for what it asks for.
//!
//! ```sh
//! cargo run --release --example demand_fetch [-- --frames 800]
//! ```

use ff_core::hub::{Admit, CloudHub, EventSegment, McVersion, NodeId};
use ff_core::pipeline::{FilterForward, PipelineConfig};
use ff_core::query::Query;
use ff_core::train::{train_mc, TrainConfig};
use ff_core::{FeatureExtractor, McSpec};
use ff_data::{DatasetSpec, Split};
use ff_models::MobileNetConfig;

fn main() {
    let frames: usize = std::env::args()
        .skip_while(|a| a != "--frames")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);

    // Train a real MC offline on the first video (no untrained-MC tricks:
    // the threshold comes from held-out calibration).
    let data = DatasetSpec::jackson_like(16, frames, 42);
    let spec = McSpec::localized("pedestrian-in-crosswalk", data.task.crop, 7);
    let mut extractor =
        FeatureExtractor::new(MobileNetConfig::with_width(0.25), vec![spec.tap.clone()]);
    let cal: Vec<_> = data
        .open(Split::Train)
        .take(8)
        .map(|lf| lf.frame.to_tensor())
        .collect();
    extractor.calibrate(&cal);
    println!("training the MC on the first video …");
    let trained = train_mc(
        &mut extractor,
        &spec,
        &data,
        &TrainConfig {
            epochs: 4,
            ..Default::default()
        },
    );
    println!("  trained threshold {:.2}", trained.threshold);

    // Deploy on the edge pipeline and stream the held-out video.
    let mut cfg = PipelineConfig::new(data.resolution(), data.scene.fps);
    cfg.mobilenet = MobileNetConfig::with_width(0.25);
    let mut ff = FilterForward::new(cfg);
    let cal_frames: Vec<_> = data.open(Split::Train).take(8).map(|lf| lf.frame).collect();
    ff.calibrate(&cal_frames);
    let id = ff.deploy(spec);
    ff.mc_mut(id).install_model(trained.model);
    ff.mc_mut(id).set_threshold(trained.threshold);

    let originals: Vec<_> = data.open(Split::Test).map(|lf| lf.frame).collect();
    let mut events = Vec::new();
    for f in &originals {
        for v in ff.process(f) {
            events.extend(v.closed_events);
        }
    }
    let archive = ff.take_archive().expect("archive enabled");
    println!(
        "archived {} frames ({} bytes, GOP {}); {} pedestrian events detected",
        archive.frames(),
        archive.bytes(),
        archive.gop(),
        events.len()
    );
    assert!(
        !events.is_empty(),
        "the trained MC should fire on held-out video"
    );

    // The cloud tier: register the node, hand over its archive handle,
    // and subscribe the application to the pedestrian class.
    let mut hub = CloudHub::new(64);
    let node = hub.register_node();
    assert_eq!(node, NodeId(0));
    hub.attach_archive(node, archive)
        .expect("node just registered");
    let sub = hub
        .subscribe(Query::mc(id))
        .expect("query references the MC");

    // The node reports each closed event as one segment; a flaky uplink
    // re-sends the first one, and the hub's dedup window absorbs it.
    for (seq, ev) in events.iter().enumerate() {
        let seg = EventSegment {
            node,
            seq: seq as u64,
            classes: vec![ev.mc],
            round: ev.start,
            bytes: 512,
            version: McVersion(1),
        };
        assert_eq!(hub.ingest(&seg).unwrap(), Admit::Fresh);
        if seq == 0 {
            assert_eq!(hub.ingest(&seg).unwrap(), Admit::Duplicate);
        }
    }
    println!(
        "hub: {} segments accepted, {} duplicate absorbed, {} delivered to the subscription",
        hub.accepted(),
        hub.dup_hits(),
        hub.sub_deliveries(sub)
    );
    assert_eq!(hub.sub_deliveries(sub), events.len() as u64);

    // The application asks the hub for context around the first event.
    let ev = &events[0];
    let end = ev.end.unwrap_or(ev.start + 1);
    let (start, stop) = (ev.start.saturating_sub(5) as usize, (end + 5) as usize);
    let stop = stop.min(originals.len());
    let (context, bytes) = hub
        .fetch_context(node, start, stop)
        .expect("event in range");
    println!(
        "demand-fetched frames {start}..{stop} around event {:?}: {} frames, {} bytes on the wire",
        ev.id,
        context.len(),
        bytes
    );

    // Fetched context is faithful to the original capture, and the fetch
    // itself is deterministic (same digests on a repeat fetch).
    let psnr: f64 = context
        .iter()
        .zip(&originals[start..stop])
        .map(|(got, want)| got.psnr(want).min(60.0))
        .sum::<f64>()
        / context.len() as f64;
    println!("mean context PSNR vs original: {psnr:.1} dB");
    assert!(psnr > 28.0, "archive quality should be high");
    let digests: Vec<u64> = context.iter().map(|f| f.digest64()).collect();
    let (again, _) = hub
        .fetch_context(node, start, stop)
        .expect("still in range");
    assert_eq!(
        digests,
        again.iter().map(|f| f.digest64()).collect::<Vec<_>>(),
        "demand fetch replays byte-identically"
    );
}
