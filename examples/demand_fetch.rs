//! Demand-fetch (§3.2): the edge node archives the original stream; when a
//! datacenter application receives an event, it pulls surrounding context
//! frames from the edge archive — paying GOP-aligned bandwidth only for
//! what it asks for.
//!
//! ```sh
//! cargo run --release --example demand_fetch
//! ```

use ff_core::pipeline::{FilterForward, PipelineConfig};
use ff_core::smoothing::SmoothingConfig;
use ff_core::McSpec;
use ff_video::scene::{Scene, SceneConfig};
use ff_video::Resolution;

fn main() {
    let res = Resolution::new(128, 72);
    let scene_cfg = SceneConfig {
        resolution: res,
        seed: 11,
        pedestrian_rate: 0.08,
        crossing_fraction: 0.6,
        ..Default::default()
    };
    let mut scene = Scene::new(scene_cfg);

    let cfg = PipelineConfig::new(res, scene_cfg.fps);
    let mut ff = FilterForward::new(cfg);
    // An untrained MC with threshold 0 matches everything for a stretch —
    // enough to produce an event whose context we can fetch.
    let spec = McSpec {
        threshold: 0.0,
        smoothing: SmoothingConfig { n: 1, k: 1 },
        ..McSpec::full_frame("everything", 1)
    };
    let id = ff.deploy(spec);
    let _ = id;

    let originals: Vec<_> = (0..60).map(|_| scene.step().0).collect();
    let mut first_event = None;
    for f in &originals {
        for v in ff.process(f) {
            if let Some(ev) = v.closed_events.first() {
                first_event.get_or_insert(*ev);
            }
        }
    }
    println!(
        "archived {} frames ({} bytes)",
        ff.archive().unwrap().frames(),
        ff.archive().unwrap().bytes()
    );

    // The datacenter asks for 10 frames of context around frame 30.
    let archive = ff.archive().expect("archive enabled");
    let (frames, bytes) = archive.demand_fetch(25, 35).expect("in range");
    println!(
        "demand-fetched frames 25..35: {} frames, {} bytes on the wire",
        frames.len(),
        bytes
    );

    // Fetched context is faithful to the original capture.
    let psnr: f64 = frames
        .iter()
        .zip(&originals[25..35])
        .map(|(got, want)| got.psnr(want).min(60.0))
        .sum::<f64>()
        / frames.len() as f64;
    println!("mean context PSNR vs original: {psnr:.1} dB");
    assert!(psnr > 28.0, "archive quality should be high");
}
