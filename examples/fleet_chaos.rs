//! The cloud tier under fire: a whole fleet of edge nodes streams event
//! segments into one [`CloudHub`](ff_core::hub::CloudHub) while a
//! scripted [`FleetFaultPlan`] throws fleet-scale failures at it — node
//! crashes with checkpoint-journal rejoins, a hub partition cutting off a
//! block of uplinks, a duplicate storm, seeded message loss — all while a
//! staged MC rollout runs a canary and two applications hold composite
//! subscriptions. The run is pure virtual time: the whole thing is
//! executed twice and at two hub shard widths, and every report — the
//! fleet ledger, the dedup counters, the full fault→detect→recover
//! trace — must come out identical. The printed output is byte-stable, so
//! CI diffs two invocations verbatim.
//!
//! ```sh
//! cargo run --release --example fleet_chaos [-- --nodes 60 --rounds 240 --shards 4]
//! ```

use ff_core::faults::{FleetFaultPlan, RetryPolicy};
use ff_core::fleet::{Fleet, FleetConfig};
use ff_core::hub::{McVersion, RolloutPlan};
use ff_core::query::Query;
use ff_core::McId;

fn arg(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let nodes = arg("--nodes", 60);
    let rounds = arg("--rounds", 240) as u64;
    let shards = arg("--shards", 4);

    // The script: three nodes crash and rejoin at staggered times (one
    // twice); a partition cuts nodes 8..24 off the hub long enough that
    // their in-flight segments exhaust the (deliberately tight) retry
    // budget and spill to local archives — demand-fetched once the
    // partition heals; a duplicate storm doubles every wire message
    // while the link also drops 15% of them; and version 2 rolls out
    // behind a canary whose misbehaviour (a 4x event-rate blowup)
    // forces a rollback.
    let faults = FleetFaultPlan::new()
        .node_crash(3, 40, 25)
        .node_crash(11, 70, 20)
        .node_crash(3, 150, 12)
        .node_crash(29, 100, 30)
        .hub_partition(90, 30, 8, 24)
        .dup_storm(130, 20, 1)
        .message_loss(130, 20, 0.15)
        .message_loss(55, 10, 0.3);
    let cfg = FleetConfig {
        nodes,
        rounds,
        shards,
        faults,
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        rollout: Some(RolloutPlan {
            version: McVersion(2),
            start_round: 170,
            canary_nodes: 6,
            canary_rounds: 30,
            regression_factor: 2.0,
        }),
        subscriptions: vec![
            Query::mc(McId(0)).or(Query::mc(McId(1))),
            Query::mc(McId(2)).and(Query::mc(McId(0)).not()),
        ],
        version_rates: vec![(McVersion(2), 4.0)],
        ..Default::default()
    };

    // Determinism is the headline: the same config must replay the exact
    // same report — trace included — across repeated runs and shard
    // widths.
    let report = Fleet::new(cfg.clone()).expect("valid config").run();
    let again = Fleet::new(cfg.clone()).expect("valid config").run();
    assert_eq!(report, again, "repeat run must be byte-identical");
    let other_width = FleetConfig {
        shards: if shards == 1 { 4 } else { 1 },
        ..cfg
    };
    let reshard = Fleet::new(other_width).expect("valid config").run();
    assert_eq!(report, reshard, "hub shard width must not be observable");

    println!("== fleet chaos: {nodes} nodes, {rounds} rounds, {shards} hub shards ==");
    print!("{report}");
    println!("\n== fleet trace ==");
    print!("{}", report.trace);

    // The robustness contract.
    assert!(report.ledger.conserves(), "fleet ledger must conserve");
    assert_eq!(
        report.double_deliveries, 0,
        "no event reaches a subscriber twice"
    );
    assert!(report.dup_hits > 0, "the storm sent duplicates");
    assert!(
        report.checkpoint_restores >= 4,
        "all scripted rejoins happened"
    );
    assert!(report.rollout.is_some(), "the canary window closed");
    assert!(report.ledger.spilled > 0, "the partition forced spills");
    assert!(report.fetch_ok > 0, "spilled context was demand-fetched");
    println!("\nledger conserved, zero double deliveries, replay byte-identical — ok");
}
