//! A `top`-style view of one edge node: run a few cameras under the
//! controlled executor with observability on, then fold the span trace
//! into a per-round, per-stage activity table — wakes, gather batches,
//! frames served, uplink offers, and control ticks, round by round. The
//! table is a pure function of the deterministic span trace, so two runs
//! print the same rows.
//!
//! ```sh
//! cargo run --release --example node_top [-- --frames 48 --streams 6]
//! ```

use std::collections::BTreeMap;

use ff_core::control::ControlConfig;
use ff_core::obs::NODE_SCOPE;
use ff_core::runtime::{EdgeNode, EdgeNodeConfig, ObsConfig, ShardLayout};
use ff_core::{McSpec, PipelineConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::SceneConfig;
use ff_video::{Resolution, SceneSource};

fn arg(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const STAGES: [&str; 5] = ["task", "gather", "infer", "uplink", "control"];

fn main() {
    let n_frames = arg("--frames", 48) as u64;
    let n_streams = arg("--streams", 6);
    let budget = std::thread::available_parallelism().map_or(1, |n| n.get());
    let res = Resolution::new(120, 67);

    let layout = ShardLayout::even(budget.max(n_streams), n_streams);
    let cfg = EdgeNodeConfig::new(layout).with_obs(ObsConfig::default());
    let mut node = EdgeNode::new(cfg);
    for s in 0..n_streams as u64 {
        let scene = SceneConfig {
            resolution: res,
            seed: 40 + s,
            pedestrian_rate: 0.12,
            car_rate: 0.06,
            ..Default::default()
        };
        let mut pipeline = PipelineConfig::new(res, 15.0);
        pipeline.mobilenet = MobileNetConfig::with_width(0.5);
        pipeline.archive = None;
        let id = node.add_stream(Box::new(SceneSource::new(scene, n_frames)), pipeline);
        node.deploy(id, McSpec::full_frame(format!("cam{s}/activity"), 40 + s));
    }

    let report = node.run_controlled(ControlConfig {
        tick_frames: 8,
        arrival_alpha: 0.5,
        ..ControlConfig::default()
    });
    let obs = report.obs.as_ref().expect("obs was enabled");

    // Fold spans into (round, stage) counts plus a per-stage busiest-lane
    // census. `value` sums give bytes for uplink offers and batch sizes
    // for gather, so show both count and volume.
    let mut counts: BTreeMap<(u64, &str), (u64, u64)> = BTreeMap::new();
    let mut lanes: BTreeMap<(&str, u32), u64> = BTreeMap::new();
    for sp in &obs.spans {
        let slot = counts.entry((sp.round, sp.stage)).or_default();
        slot.0 += 1;
        slot.1 += sp.value;
        *lanes.entry((sp.stage, sp.stream)).or_default() += 1;
    }

    println!(
        "node top: {n_streams} cameras x {n_frames} rounds, {} spans ({} evicted)",
        obs.emitted_spans, obs.dropped_spans,
    );
    println!();
    println!("  round   task  gather   infer  uplink  control  uplink-bytes");
    let rounds: std::collections::BTreeSet<u64> = counts.keys().map(|&(round, _)| round).collect();
    for round in rounds {
        let get = |stage: &str| counts.get(&(round, stage)).copied().unwrap_or_default();
        let row: Vec<u64> = STAGES.iter().map(|st| get(st).0).collect();
        println!(
            "  {:>5}  {:>5}  {:>6}  {:>6}  {:>6}  {:>7}  {:>12}",
            round,
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            get("uplink").1,
        );
    }

    println!();
    println!("busiest lane per stage:");
    for stage in STAGES {
        let best = lanes
            .iter()
            .filter(|((st, _), _)| *st == stage)
            .max_by_key(|(&(_, stream), &n)| (n, std::cmp::Reverse(stream)));
        if let Some((&(_, stream), &n)) = best {
            let lane = if stream == NODE_SCOPE {
                "node".to_string()
            } else {
                format!("cam{stream}")
            };
            println!("  {stage:>8}: {lane} ({n} spans)");
        }
    }

    println!();
    println!("registry snapshot ({} metrics):", obs.metrics.entries.len());
    print!("{}", obs.metrics.to_prometheus());
}
