//! The paper's introductory scenario end to end: train a *Pedestrian in
//! crosswalk* microclassifier offline, deploy it on the edge pipeline, and
//! report event detections, accuracy, and bandwidth against ground truth.
//!
//! ```sh
//! cargo run --release --example pedestrian_monitor [-- --frames 1500]
//! ```

use ff_core::evaluate::{mc_probs, score_probs};
use ff_core::pipeline::{FilterForward, PipelineConfig};
use ff_core::train::{train_mc, TrainConfig};
use ff_core::{FeatureExtractor, McSpec};
use ff_data::{DatasetSpec, Split};
use ff_models::MobileNetConfig;

fn main() {
    let frames: usize = std::env::args()
        .skip_while(|a| a != "--frames")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1200);

    // The Jackson-like dataset at 1/16 scale (120×67): two videos from the
    // same intersection, the first for training, the second held out.
    let data = DatasetSpec::jackson_like(16, frames, 42);
    println!("dataset: {} {} x2 splits", data.name, data.resolution());

    // The application developer trains the MC offline (§3.2).
    let spec = McSpec::localized("pedestrian-in-crosswalk", data.task.crop, 7);
    let mut extractor =
        FeatureExtractor::new(MobileNetConfig::with_width(0.25), vec![spec.tap.clone()]);
    let cal: Vec<_> = data
        .open(Split::Train)
        .take(8)
        .map(|lf| lf.frame.to_tensor())
        .collect();
    extractor.calibrate(&cal);

    println!("training on the first video …");
    let trained = train_mc(
        &mut extractor,
        &spec,
        &data,
        &TrainConfig {
            epochs: 4,
            ..Default::default()
        },
    );
    println!(
        "  threshold {:.2}, loss history {:?}",
        trained.threshold, trained.loss_history
    );

    // Offline accuracy on the held-out video.
    let mut model = trained.model;
    let test = data.open(Split::Test).map(|lf| (lf.frame, lf.label));
    let (probs, labels) = mc_probs(&mut extractor, &spec, &mut model, test);
    let score = score_probs(&probs, trained.threshold, spec.smoothing, &labels);
    println!(
        "held-out accuracy: event F1 {:.3} (recall {:.3}, precision {:.3}) over {} events",
        score.f1, score.recall, score.precision, score.gt_events
    );

    // Deploy on the edge pipeline and stream the held-out video.
    let mut cfg = PipelineConfig::new(data.resolution(), data.scene.fps);
    cfg.mobilenet = MobileNetConfig::with_width(0.25);
    cfg.upload_bitrate_bps = 40_000.0;
    let mut ff = FilterForward::new(cfg);
    let cal_frames: Vec<_> = data.open(Split::Train).take(8).map(|lf| lf.frame).collect();
    ff.calibrate(&cal_frames);
    let id = ff.deploy(spec);
    ff.mc_mut(id).install_model(model);
    ff.mc_mut(id).set_threshold(trained.threshold);

    let mut events = Vec::new();
    for lf in data.open(Split::Test) {
        for v in ff.process(&lf.frame) {
            events.extend(v.closed_events);
        }
    }
    let (tail, stats, _) = ff.finish();
    for v in tail {
        events.extend(v.closed_events);
    }
    println!("\nstreamed the held-out video through the edge node:");
    println!(
        "  {} events detected; {}/{} frames uploaded; {:.1} kb/s average uplink",
        events.len(),
        stats.frames_uploaded,
        stats.frames_out,
        stats.upload_bps(data.scene.fps) / 1000.0
    );
    for ev in events.iter().take(8) {
        println!(
            "  event {:?}: frames {}..{}",
            ev.id,
            ev.start,
            ev.end.unwrap_or(u64::MAX)
        );
    }
}
