//! 1000 duty-cycled cameras on one node (§2.2.1 at fleet scale): every
//! stream is an actor-style task (see `ff_core::task`) multiplexed onto
//! one budget-wide worker pool — no per-stream OS threads — so a node
//! whose cameras are mostly idle carries four-digit stream counts. Prints
//! the per-round active-set table (how many cameras woke each round) and
//! proves the run replayable by re-running the identical fleet and
//! comparing wake logs and verdicts byte-for-byte.
//!
//! ```sh
//! cargo run --release --example many_streams [-- --streams 1000 --frames 2 --period 20]
//! ```

use std::time::Duration;

use ff_core::control::ControlConfig;
use ff_core::runtime::{ControlledReport, EdgeNode, EdgeNodeConfig, GatherBatch, ShardLayout};
use ff_core::{McSpec, PipelineConfig, SmoothingConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::SceneConfig;
use ff_video::{DutyCycleSource, Resolution, SceneSource};

fn arg(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_fleet(n_streams: usize, n_frames: u64, period: u64, budget: usize) -> ControlledReport {
    let res = Resolution::new(64, 32);
    let mut cfg = EdgeNodeConfig::new(ShardLayout::single(budget))
        .with_gather_batch(GatherBatch {
            max_batch: 64,
            gather_wait: Duration::from_millis(1),
        })
        // Deferred backbones: the node builds one template extractor and
        // one gather extractor, not one per camera.
        .with_shared_backbone();
    cfg.uplink_capacity_bps = 10_000_000.0;
    let mut node = EdgeNode::new(cfg);
    for s in 0..n_streams {
        let scene = SceneConfig {
            resolution: res,
            seed: 60 + s as u64,
            pedestrian_rate: 0.05,
            car_rate: 0.03,
            ..Default::default()
        };
        let mut pipeline = PipelineConfig::new(res, scene.fps);
        pipeline.mobilenet = MobileNetConfig::with_width(0.25);
        pipeline.archive = None;
        // Each camera active 1 round in `period`, phased to spread wakes.
        let src = Box::new(DutyCycleSource::with_phase(
            SceneSource::new(scene, n_frames),
            1,
            period - 1,
            s as u64 % period,
        ));
        let id = node.add_stream(src, pipeline);
        node.deploy(
            id,
            McSpec {
                threshold: 0.0,
                smoothing: SmoothingConfig { n: 1, k: 1 },
                ..McSpec::full_frame(format!("cam{s}/activity"), 10 + s as u64)
            },
        );
    }
    node.run_controlled(ControlConfig {
        tick_frames: 8,
        arrival_alpha: 0.5,
        batch: None,
        rebalance: None,
        degrade: None,
        watchdog: None,
    })
}

fn main() {
    let n_streams = arg("--streams", 1000);
    let n_frames = arg("--frames", 2) as u64;
    let period = arg("--period", 20) as u64;
    let budget = std::thread::available_parallelism().map_or(1, |n| n.get());

    let report = run_fleet(n_streams, n_frames, period, budget);

    let duty = 1.0 / period as f64;
    println!(
        "{n_streams} cameras x {n_frames} frames, {:.0}% duty cycle, {budget}-thread budget:",
        duty * 100.0,
    );

    // Per-round active set: how many cameras delivered a frame each round
    // (a wake is a Sleeping → Awake edge; with one frame per active tick,
    // every delivery is a wake).
    let rounds = report
        .wakes
        .iter()
        .map(|&(r, _)| r)
        .max()
        .map_or(0, |r| r + 1);
    let mut per_round = vec![0usize; rounds as usize];
    for &(r, _) in &report.wakes {
        per_round[r as usize] += 1;
    }
    println!("  round | woke | active set");
    for (r, &n) in per_round.iter().enumerate().take(period as usize) {
        println!("  {r:>5} | {n:>4} | {}", "#".repeat(n.min(60)));
    }
    if rounds > period {
        println!("  ... ({rounds} rounds total)");
    }

    let verdicts: usize = report.streams.iter().map(|s| s.verdicts.len()).sum();
    println!(
        "  {} wakes, {verdicts} verdicts, {} control ticks, wall {:.2}s",
        report.wakes.len(),
        report.telemetry.len(),
        report.node.wall.as_secs_f64(),
    );
    let active = n_streams as f64 * duty;
    println!(
        "  {:.1} fps aggregate ({:.1} per active stream)",
        report.node.aggregate_fps(),
        report.node.aggregate_fps() / active,
    );

    // Replayability: the identical fleet again — wake log and every
    // stream's verdicts must match byte-for-byte.
    let again = run_fleet(n_streams, n_frames, period, budget);
    assert_eq!(report.wakes, again.wakes, "wake log diverged on replay");
    for (a, b) in report.streams.iter().zip(&again.streams) {
        assert_eq!(a.verdicts, b.verdicts, "verdicts diverged on replay");
    }
    println!("  replay: wake log and verdicts bit-identical across runs ✔");
}
