//! The Roadway dataset's *People with red* task (§4.1): train the
//! localized MC with the paper's street-band crop and compare edge
//! filtering against uploading a heavily-compressed full stream.
//!
//! ```sh
//! cargo run --release --example red_clothing [-- --frames 1500]
//! ```

use ff_core::cloud::TranscodedStream;
use ff_core::evaluate::{mc_probs, score_probs};
use ff_core::train::{train_mc, TrainConfig};
use ff_core::{FeatureExtractor, McSpec};
use ff_data::{DatasetSpec, Split};
use ff_models::MobileNetConfig;

fn main() {
    let frames: usize = std::env::args()
        .skip_while(|a| a != "--frames")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1500);

    let data = DatasetSpec::roadway_like(16, frames, 42);
    println!(
        "dataset: {} {} (task crop covers the street and sidewalk band)",
        data.name,
        data.resolution()
    );

    let spec = McSpec::localized("people-with-red", data.task.crop, 9);
    let mut extractor =
        FeatureExtractor::new(MobileNetConfig::with_width(0.25), vec![spec.tap.clone()]);
    let cal: Vec<_> = data
        .open(Split::Train)
        .take(8)
        .map(|lf| lf.frame.to_tensor())
        .collect();
    extractor.calibrate(&cal);

    println!("training (with horizontal-shift augmentation — red can appear anywhere) …");
    let trained = train_mc(
        &mut extractor,
        &spec,
        &data,
        &TrainConfig {
            epochs: 8,
            lr: 2e-3,
            augment_shift_w: 4,
            ..Default::default()
        },
    );
    let mut model = trained.model;

    // Edge filtering on original frames.
    let test = data.open(Split::Test).map(|lf| (lf.frame, lf.label));
    let (probs, labels) = mc_probs(&mut extractor, &spec, &mut model, test);
    let edge = score_probs(&probs, trained.threshold, spec.smoothing, &labels);
    println!(
        "edge filter on original frames: F1 {:.3} (recall {:.3}, precision {:.3})",
        edge.f1, edge.recall, edge.precision
    );

    // The same filter in the cloud, after heavy whole-stream compression.
    let res = data.resolution();
    let src = data.open(Split::Test).map(|lf| (lf.frame, lf.label));
    let mut ts = TranscodedStream::new(src, res, data.scene.fps, 25_000.0);
    let transcoded: Vec<_> = ts.by_ref().collect();
    let bw = ts.average_bps();
    let (probs_ce, labels_ce) = mc_probs(&mut extractor, &spec, &mut model, transcoded.into_iter());
    let cloud = score_probs(&probs_ce, trained.threshold, spec.smoothing, &labels_ce);
    println!(
        "same filter after compress-everything at {:.0} kb/s: F1 {:.3}",
        bw / 1000.0,
        cloud.f1
    );
    println!(
        "heavy compression costs {:.0}% of the F1 — the fine red details wash out (Figure 4's premise)",
        (1.0 - cloud.f1 / edge.f1.max(1e-9)) * 100.0
    );
}
