//! One edge node, many cameras (§2.2.1): four independent street-camera
//! streams driven concurrently by the [`EdgeNode`] runtime — per-stream
//! pipelined decode → extract → MC → smoothing, sharded worker pool, and
//! one shared bandwidth-constrained uplink. Pass `--batched` to gather all
//! cameras' frames into one shared batched base-DNN pass per round (one
//! GEMM over the stacked im2col matrix per layer) instead of sharding.
//!
//! ```sh
//! cargo run --release --example multi_stream [-- --streams 4 --frames 60 --batched]
//! ```

use ff_core::runtime::{EdgeNode, EdgeNodeConfig, GatherBatch, ShardLayout};
use ff_core::{McSpec, PipelineConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::SceneConfig;
use ff_video::{Resolution, SceneSource};

fn arg(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_streams = arg("--streams", 4);
    let n_frames = arg("--frames", 60) as u64;
    let budget = std::thread::available_parallelism().map_or(1, |n| n.get());
    let res = Resolution::new(160, 90);

    // One shard per stream, splitting the machine's threads evenly; all
    // streams share a 600 kb/s uplink (a few hundred kb/s per camera, the
    // paper's provisioning regime).
    let batched = std::env::args().any(|a| a == "--batched");
    // Shard count capped at the budget: ShardLayout::even refuses layouts
    // that would oversubscribe (more shards than threads).
    let shards = n_streams.min(budget);
    let mut cfg = EdgeNodeConfig::new(if batched {
        // Gather-batch: the whole budget behind one shared batched pass.
        ShardLayout::single(budget)
    } else {
        ShardLayout::even(budget, shards)
    });
    if batched {
        cfg.gather_batch = Some(GatherBatch::default());
    }
    cfg.uplink_capacity_bps = 600_000.0;
    let mut node = EdgeNode::new(cfg);

    for s in 0..n_streams {
        let scene = SceneConfig {
            resolution: res,
            seed: 60 + s as u64, // each camera sees a different street
            pedestrian_rate: 0.05,
            car_rate: 0.03,
            ..Default::default()
        };
        let mut pipeline = PipelineConfig::new(res, scene.fps);
        pipeline.mobilenet = MobileNetConfig::with_width(0.5);
        pipeline.archive = None;
        let id = node.add_stream(Box::new(SceneSource::new(scene, n_frames)), pipeline);
        // Each camera serves a different tenant's query.
        let spec = match s % 3 {
            0 => McSpec::localized(format!("cam{s}/pedestrians"), None, 10 + s as u64),
            1 => McSpec::windowed(format!("cam{s}/crossings"), None, 10 + s as u64),
            _ => McSpec::full_frame(format!("cam{s}/activity"), 10 + s as u64),
        };
        node.deploy(id, spec);
    }

    let report = node.run();

    let mode = if batched {
        "gather-batched base DNN".to_string()
    } else {
        format!("shards {:?}", ShardLayout::even(budget, shards).widths())
    };
    println!("{n_streams} streams x {n_frames} frames at {res}, {budget}-thread budget, {mode}:");
    for sr in &report.streams {
        println!(
            "  stream {}: {} frames, {} uploaded ({} bytes offered), {} events, {:.1} ms/frame base DNN",
            sr.id.0,
            sr.stats.frames_out,
            sr.stats.frames_uploaded,
            sr.offered_bytes,
            sr.stats.events_closed,
            sr.timers.base_per_frame() * 1e3,
        );
    }
    let node_stats = &report.node;
    println!(
        "  node: {:.1} fps aggregate ({:.1} per stream), wall {:.2}s",
        node_stats.aggregate_fps(),
        node_stats.aggregate_fps() / n_streams as f64,
        node_stats.wall.as_secs_f64(),
    );
    println!(
        "  uplink: {:.0}% utilized, peak delay {:.2}s, backlog {:.0} bits, {} dropped",
        node_stats.uplink_utilization * 100.0,
        node_stats.uplink_peak_delay_secs,
        node_stats.uplink_backlog_bits,
        node_stats.uplink_dropped,
    );
}
