//! Composite queries (§4.1): "combined with a simple traffic light
//! classifier, a user could craft composite queries to detect jaywalkers."
//! Here: a hazard query — *pedestrian present AND car present* — built
//! from two deployed MCs without any extra network evaluation.
//!
//! ```sh
//! cargo run --release --example composite_query
//! ```

use ff_core::pipeline::{FilterForward, PipelineConfig};
use ff_core::query::{Query, QueryRunner};
use ff_core::smoothing::SmoothingConfig;
use ff_core::{McId, McSpec};
use ff_video::scene::{Scene, SceneConfig};
use ff_video::Resolution;

fn main() {
    let res = Resolution::new(128, 72);
    let scene_cfg = SceneConfig {
        resolution: res,
        seed: 21,
        pedestrian_rate: 0.08,
        car_rate: 0.06,
        ..Default::default()
    };
    let mut scene = Scene::new(scene_cfg);

    let mut cfg = PipelineConfig::new(res, scene_cfg.fps);
    cfg.archive = None;
    let mut ff = FilterForward::new(cfg);
    // Two applications install their filters. For the demo the MCs are
    // untrained with alternating-friendly thresholds; real deployments
    // install trained weights (see `pedestrian_monitor`).
    let ped = ff.deploy(McSpec {
        threshold: 0.45,
        smoothing: SmoothingConfig { n: 3, k: 2 },
        ..McSpec::localized("find-pedestrians", None, 5)
    });
    let car = ff.deploy(McSpec {
        threshold: 0.55,
        smoothing: SmoothingConfig { n: 3, k: 2 },
        ..McSpec::full_frame("find-cars", 6)
    });

    // A third application composes them — no third network runs.
    let hazard = Query::mc(ped).and(Query::mc(car));
    println!("hazard query references MCs: {:?}", hazard.referenced_mcs());
    let mut runner = QueryRunner::new(hazard, McId(100));

    let mut composite_frames = 0u64;
    for _ in 0..150 {
        let (frame, _) = scene.step();
        for v in ff.process(&frame) {
            if runner.push(&v) {
                composite_frames += 1;
            }
        }
    }
    let (tail, stats, _) = ff.finish();
    for v in tail {
        runner.push(&v);
    }
    let events = runner.finish();

    println!("frames processed:        {}", stats.frames_out);
    println!("composite-match frames:  {composite_frames}");
    println!("composite events:        {}", events.len());
    for ev in events.iter().take(6) {
        println!(
            "  hazard event {:?}: frames {}..{}",
            ev.id,
            ev.start,
            ev.end.unwrap_or(u64::MAX)
        );
    }
}
