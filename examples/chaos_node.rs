//! The chaos harness in action: four street cameras share one edge node
//! while a scripted [`ff_core::faults::FaultPlan`] throws everything the
//! field throws at a deployment — an uplink outage, a capacity dip with
//! packet loss, a stalled camera, and a crashing inference stage — and the
//! node survives all of it. Refused upload segments retry with seeded
//! exponential backoff, exhaust into the on-node archive spill bin, and
//! re-drain once the link heals; the watchdog quarantines the stalled
//! camera and readmits it; the panicked stage restarts under its circuit
//! breaker. Every fault and every recovery step lands in a bit-replayable
//! trace, printed at the end, and the segment ledger proves nothing was
//! silently lost.
//!
//! ```sh
//! cargo run --release --example chaos_node [-- --frames 64 --sharded]
//! ```

use std::time::Duration;

use ff_core::control::{ControlConfig, DegradePolicy, WatchdogPolicy};
use ff_core::faults::FaultPlan;
use ff_core::runtime::{EdgeNode, EdgeNodeConfig, GatherBatch, ObsConfig, ShardLayout};
use ff_core::{McSpec, PipelineConfig};
use ff_models::MobileNetConfig;
use ff_video::scene::SceneConfig;
use ff_video::{Resolution, SceneSource};

fn arg(name: &str, default: usize) -> usize {
    std::env::args()
        .skip_while(|a| a != name)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_frames = arg("--frames", 64) as u64;
    let sharded = std::env::args().any(|a| a == "--sharded");
    let budget = std::thread::available_parallelism().map_or(1, |n| n.get());
    let res = Resolution::new(120, 67);

    // The script: a third of the way in the uplink drops entirely for 16
    // rounds; later it limps at 40% capacity with 20% packet loss. Camera
    // 1 stalls for 24 polls. Stream 2's inference stage crashes twice —
    // one restart, and the second crash is absorbed too (budget is 2).
    let outage_at = n_frames / 3;
    let dip_at = 2 * n_frames / 3;
    let plan = FaultPlan::new()
        .uplink_outage(outage_at, 16)
        .capacity_dip(dip_at, 12, 0.4)
        .packet_loss(dip_at, 12, 0.2)
        .camera_stall(1, n_frames / 4, 24)
        .stage_panic(2, n_frames / 2)
        .stage_panic(2, n_frames / 2 + 7);

    let layout = if sharded {
        ShardLayout::even(budget.max(4), 4)
    } else {
        ShardLayout::single(budget)
    };
    let mut cfg = EdgeNodeConfig::new(layout)
        .with_faults(plan)
        .with_obs(ObsConfig::default());
    if !sharded {
        cfg.gather_batch = Some(GatherBatch {
            max_batch: 8,
            gather_wait: Duration::from_millis(1),
        });
    }
    cfg.uplink_capacity_bps = 120_000.0;
    let mut node = EdgeNode::new(cfg);

    for s in 0..4u64 {
        let scene = SceneConfig {
            resolution: res,
            seed: 90 + s,
            pedestrian_rate: 0.15,
            car_rate: 0.05,
            ..Default::default()
        };
        let mut pipeline = PipelineConfig::new(res, 15.0);
        pipeline.mobilenet = MobileNetConfig::with_width(0.5);
        pipeline.archive = None;
        let id = node.add_stream(Box::new(SceneSource::new(scene, n_frames)), pipeline);
        node.deploy(id, McSpec::full_frame(format!("cam{s}/activity"), 90 + s));
    }

    let report = node.run_controlled(ControlConfig {
        tick_frames: 8,
        arrival_alpha: 0.5,
        batch: None,
        rebalance: None,
        degrade: Some(DegradePolicy {
            saturate_ticks: 2,
            relax_ticks: 4,
            ..DegradePolicy::default()
        }),
        watchdog: Some(WatchdogPolicy::default()),
    });
    let faults = report.faults.as_ref().expect("a plan was scheduled");

    let style = if sharded {
        "per-stream shards"
    } else {
        "gather-batched"
    };
    println!("chaos node: 4 cameras, {style}, scripted outage + dip/loss + stall + panics");
    println!();
    println!("fault telemetry (one row per control tick):");
    println!("  tick  round  link  refused  retry-fail  late  spilled  dropped  quarantined");
    for t in &report.telemetry {
        println!(
            "  {:>4}  {:>5}  {}  {:>7}  {:>10}  {:>4}  {:>7}  {:>7}  {:>11}",
            t.tick,
            t.round,
            if t.faults.link_up { "  up" } else { "DOWN" },
            t.faults.refused_tick,
            t.faults.retry_failures_tick,
            t.faults.delivered_late_tick,
            t.faults.spilled_tick,
            t.faults.dropped_tick,
            t.faults.quarantined,
        );
    }
    println!();
    println!("fault/recovery trace (bit-replayable):");
    print!("{}", faults.trace);
    println!();
    println!("control decisions:");
    print!("{}", report.trace);
    println!();
    let l = faults.ledger;
    println!(
        "segment ledger: {} offered = {} delivered + {} late + {} dropped (conserves: {})",
        l.offered,
        l.delivered,
        l.delivered_late,
        l.dropped,
        l.conserves(),
    );
    println!(
        "spill bin: {} parked, {} overflow; stage restarts {:?}, frames lost {:?}",
        faults.spilled, faults.spill_overflow, faults.restarts, faults.frames_lost,
    );
    if let Some(rr) = faults.recovery_rounds {
        println!("recovery: backlog drained {rr} rounds after the link came back");
    }
    for sr in &report.streams {
        println!(
            "  stream {}: {} frames out, {} uploaded, {} bytes offered",
            sr.id.0, sr.stats.frames_out, sr.stats.frames_uploaded, sr.offered_bytes,
        );
    }
    assert!(l.conserves(), "every segment must be accounted");

    // The run's observability exports: a Perfetto-openable Chrome trace of
    // the span ring and the registry snapshot in both wire formats. All
    // three are byte-identical across repeat runs — the trace is keyed by
    // virtual rounds and the snapshot excludes wall-clock cells.
    let obs = report.obs.as_ref().expect("obs was enabled");
    std::fs::create_dir_all("target/obs").expect("create target/obs");
    std::fs::write("target/obs/chaos_trace.json", obs.chrome_trace()).expect("write trace");
    std::fs::write("target/obs/chaos_metrics.json", obs.metrics.to_json()).expect("write json");
    std::fs::write("target/obs/chaos_metrics.prom", obs.metrics.to_prometheus())
        .expect("write prom");
    println!();
    println!(
        "observability: {} spans emitted ({} evicted), {} metrics; exports in target/obs/",
        obs.emitted_spans,
        obs.dropped_spans,
        obs.metrics.entries.len(),
    );
    println!();
    println!("node survived the script; ledger conserves.");
}
