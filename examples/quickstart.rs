//! Quickstart: deploy one microclassifier on a synthetic camera stream and
//! watch FilterForward upload only the matching frames.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ff_core::pipeline::{FilterForward, PipelineConfig};
use ff_core::McSpec;
use ff_video::scene::{Scene, SceneConfig};
use ff_video::Resolution;

fn main() {
    // A small synthetic surveillance camera: 160×90 @ 15 fps with a busy
    // crosswalk.
    let scene_cfg = SceneConfig {
        resolution: Resolution::new(160, 90),
        seed: 7,
        pedestrian_rate: 0.05,
        crossing_fraction: 0.5,
        ..Default::default()
    };
    let mut scene = Scene::new(scene_cfg);

    // The edge pipeline: shared MobileNet feature extractor, re-encode
    // matched frames at 60 kb/s, archive everything locally.
    let mut cfg = PipelineConfig::new(scene_cfg.resolution, scene_cfg.fps);
    cfg.upload_bitrate_bps = 60_000.0;
    let mut ff = FilterForward::new(cfg);

    // Deploy an (untrained, threshold-0.5) microclassifier. Real
    // deployments train first — see the `pedestrian_monitor` example.
    let mc = ff.deploy(McSpec::localized("demo-filter", None, 42));
    println!("deployed MC {mc:?}: {}", ff.mc_count());

    // Stream 120 frames (8 seconds of video).
    let mut uploaded = 0u64;
    for _ in 0..120 {
        let (frame, _truth) = scene.step();
        for verdict in ff.process(&frame) {
            if verdict.matched() {
                uploaded += 1;
            }
        }
    }
    let (tail, stats, timers) = ff.finish();
    uploaded += tail.iter().filter(|v| v.matched()).count() as u64;

    println!("frames in:        {}", stats.frames_in);
    println!("frames uploaded:  {uploaded}");
    println!("bytes uploaded:   {}", stats.bytes_uploaded);
    println!("bytes archived:   {}", stats.bytes_archived);
    println!(
        "avg upload rate:  {:.1} kb/s",
        stats.upload_bps(scene_cfg.fps) / 1000.0
    );
    println!(
        "per-frame time:   {:.1} ms base DNN + {:.1} ms MCs",
        timers.base_per_frame() * 1e3,
        timers.mcs_per_frame() * 1e3
    );
}
