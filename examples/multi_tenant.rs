//! Scalable multi-tenancy (§2.2.3): dozens of applications install
//! microclassifiers on one edge node, all sharing a single base-DNN pass.
//! The stream runs through the [`EdgeNode`] runtime (pipelined decode →
//! extract → MC → uplink), and its cost growth is compared against running
//! one discrete classifier per application.
//!
//! ```sh
//! cargo run --release --example multi_tenant [-- --mcs 20]
//! ```

use std::time::Instant;

use ff_core::baselines::DcBank;
use ff_core::runtime::{EdgeNode, EdgeNodeConfig, ShardLayout};
use ff_core::{McKind, McSpec, PipelineConfig};
use ff_data::CropRect;
use ff_models::{DcConfig, MobileNetConfig};
use ff_video::scene::{Scene, SceneConfig};
use ff_video::{RecordedSource, Resolution};

fn main() {
    let n_mcs: usize = std::env::args()
        .skip_while(|a| a != "--mcs")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);

    let res = Resolution::new(160, 90);
    let scene_cfg = SceneConfig {
        resolution: res,
        seed: 3,
        pedestrian_rate: 0.03,
        car_rate: 0.02,
        ..Default::default()
    };
    let frames: Vec<_> = Scene::new(scene_cfg).take(40).map(|(f, _)| f).collect();

    // FilterForward under the runtime, with a diverse mix of tenants:
    // different architectures and different crops, all on one shared
    // extraction. The recorded clip replays through the node's pipelined
    // decode stage.
    let budget = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut node = EdgeNode::new(EdgeNodeConfig::new(ShardLayout::single(budget)));
    let mut cfg = PipelineConfig::new(res, scene_cfg.fps);
    cfg.mobilenet = MobileNetConfig::with_width(0.5);
    cfg.archive = None;
    let stream = node.add_stream(
        Box::new(RecordedSource::new(frames.clone(), scene_cfg.fps)),
        cfg,
    );
    for i in 0..n_mcs {
        let crop = match i % 3 {
            0 => None,
            1 => Some(CropRect {
                x0: 0.0,
                y0: 0.5,
                x1: 1.0,
                y1: 1.0,
            }),
            _ => Some(CropRect {
                x0: 0.3,
                y0: 0.3,
                x1: 0.8,
                y1: 0.9,
            }),
        };
        let spec = match i % 3 {
            0 => McSpec::full_frame(format!("app{i}"), i as u64),
            1 => McSpec::localized(format!("app{i}"), crop, i as u64),
            _ => McSpec::windowed(format!("app{i}"), crop, i as u64),
        };
        assert_eq!(
            spec.kind,
            [McKind::FullFrame, McKind::Localized, McKind::Windowed][i % 3]
        );
        node.deploy(stream, spec);
    }

    let report = node.run();
    let ff_time = report.node.wall.as_secs_f64();
    let timers = report.streams[0].timers;

    // Baseline: one NoScope-style discrete classifier per application.
    let mut bank = DcBank::new(DcConfig::representative(res.height, res.width, 5), n_mcs);
    let tensors: Vec<_> = frames.iter().map(|f| f.to_tensor()).collect();
    let t1 = Instant::now();
    for t in &tensors {
        let _ = bank.classify_all(t);
    }
    let dc_time = t1.elapsed().as_secs_f64();

    println!(
        "{n_mcs} concurrent applications on {} frames at {res}:",
        frames.len()
    );
    println!(
        "  FilterForward (EdgeNode runtime): {:.2} fps ({:.1} ms base DNN + {:.1} ms all MCs per frame)",
        report.node.aggregate_fps(),
        timers.base_per_frame() * 1e3,
        timers.mcs_per_frame() * 1e3
    );
    println!(
        "  {n_mcs} discrete classifiers: {:.2} fps",
        frames.len() as f64 / dc_time
    );
    println!(
        "  speedup: {:.1}x (the paper reports FF overtaking DCs beyond 3–4 tenants)",
        dc_time / ff_time
    );
}
