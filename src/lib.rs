//! # FilterForward (Rust reproduction)
//!
//! Umbrella crate re-exporting the whole workspace. See the `README.md` for
//! the architecture overview and `DESIGN.md` for the substitution notes and
//! per-experiment index.
//!
//! ```
//! use filterforward::prelude::*;
//! ```

#![warn(missing_docs)]

pub use ff_core as core;
pub use ff_data as data;
pub use ff_eval as eval;
pub use ff_models as models;
pub use ff_nn as nn;
pub use ff_tensor as tensor;
pub use ff_video as video;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use ff_core::{
        AdmissionPolicy, ControlConfig, EdgeNode, EdgeNodeConfig, FilterForward, GatherBatch,
        McSpec, PipelineConfig, ShardLayout,
    };
    pub use ff_tensor::Tensor;
    pub use ff_video::{Frame, FrameSource, Resolution};
}
